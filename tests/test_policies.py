"""Policy selection unit tests against hand-crafted cluster states."""

import numpy as np
import pytest

from conftest import make_state
from edm.config import SimConfig
from edm.policies import POLICIES, get_policy
from edm.policies.baseline import BaselinePolicy
from edm.policies.cmt import CmtPolicy


@pytest.fixture
def cfg():
    return SimConfig(num_osds=4, chunks_per_osd=4, policy="cmt")


def overloaded_state(cfg, heat_on_src, wear=None):
    """OSD 0 heavily overloaded, OSDs 1-3 idle; OSD 0's chunks get given heats."""
    heat = np.full(cfg.num_chunks, 0.01)
    heat[: cfg.chunks_per_osd] = heat_on_src
    load_ema = np.array([sum(heat_on_src), 0.5, 0.5, 0.5])
    return make_state(cfg, heat=heat, wear=wear, load_ema=load_ema)


def test_registry_has_the_full_zoo_plus_alias():
    # The registry holds canonical names only; aliases resolve through
    # resolve_policy (which get_policy routes through).
    assert set(POLICIES) == {"baseline", "cdf", "hdf", "cmt", "pswl", "consolidate"}
    assert isinstance(get_policy("edm"), CmtPolicy)
    with pytest.raises(ValueError):
        get_policy("nope")


def test_unknown_policy_error_lists_the_live_registry():
    # The error message enumerates whatever is registered *now*, so a future
    # zoo addition shows up in the complaint without anyone editing it.
    from edm.config import POLICIES as canonical_names, POLICY_ALIASES
    from edm.policies import resolve_policy

    with pytest.raises(ValueError) as err:
        resolve_policy("nope")
    assert str(sorted(POLICIES)) in str(err.value)
    assert str(sorted(POLICY_ALIASES)) in str(err.value)
    # And the registry itself matches config's hand-maintained tuple (the
    # import-time guard enforces this; assert it here so the contract is
    # visible in the test suite, not only as a RuntimeError at import).
    assert set(POLICIES) == set(canonical_names)
    # Every alias resolves to a registered canonical name.
    for alias, target in POLICY_ALIASES.items():
        assert resolve_policy(alias) == target
        assert target in POLICIES


def test_baseline_never_migrates(cfg):
    state = overloaded_state(cfg, [10.0, 9.0, 8.0, 7.0])
    moves = BaselinePolicy().select(state, cfg)
    assert moves.shape == (0, 2)


def test_hdf_picks_hottest_eligible_chunk(cfg):
    state = overloaded_state(cfg, [2.0, 9.0, 1.0, 3.0])
    moves = get_policy("hdf").select(state, cfg)
    assert len(moves) >= 1
    assert moves[0][0] == 1  # chunk 1 is the hottest on OSD 0


def test_hdf_skips_chunks_in_cooldown(cfg):
    state = overloaded_state(cfg, [2.0, 9.0, 1.0, 3.0])
    state.chunk_last_migrated[1] = state.epoch - 1  # hottest chunk just moved
    moves = get_policy("hdf").select(state, cfg)
    assert len(moves) >= 1
    assert moves[0][0] == 3  # next-hottest eligible

def test_cdf_picks_coldest_active_chunk(cfg):
    state = overloaded_state(cfg, [2.0, 9.0, 1.0, 3.0])
    moves = get_policy("cdf").select(state, cfg)
    assert len(moves) >= 1
    assert moves[0][0] == 2  # chunk 2 is the coldest with traffic


def test_cmt_prefers_low_wear_target(cfg):
    # OSDs 1-3 equally underloaded; OSD 2 is the least-worn SSD.
    wear = np.array([1000.0, 900.0, 100.0, 900.0])
    state = overloaded_state(cfg, [2.0, 9.0, 1.0, 3.0], wear=wear)
    moves = get_policy("cmt").select(state, cfg)
    assert len(moves) >= 1
    # The first (hottest-chunk) move must target the least-worn SSD.
    assert moves[0][1] == 2


def test_hdf_ignores_wear_cmt_does_not(cfg):
    # Make the least-loaded OSD also the most worn: HDF targets it, CMT avoids it.
    wear = np.array([0.0, 5000.0, 10.0, 10.0])
    heat = np.full(cfg.num_chunks, 0.01)
    heat[: cfg.chunks_per_osd] = [2.0, 9.0, 1.0, 3.0]
    load_ema = np.array([15.0, 0.1, 0.5, 0.5])
    state = make_state(cfg, heat=heat, wear=wear, load_ema=load_ema)
    hdf_dst = get_policy("hdf").select(state, cfg)[0][1]
    cmt_dst = get_policy("cmt").select(state, cfg)[0][1]
    assert hdf_dst == 1
    assert cmt_dst in (2, 3)


def test_no_migration_when_balanced(cfg):
    state = make_state(cfg, load_ema=np.ones(cfg.num_osds))
    for name in ("cdf", "hdf", "cmt"):
        assert len(get_policy(name).select(state, cfg)) == 0


def test_budget_respected(cfg):
    state = overloaded_state(cfg, [9.0, 8.0, 7.0, 6.0])
    for name in ("cdf", "hdf", "cmt"):
        moves = get_policy(name).select(state, cfg)
        assert len(moves) <= cfg.max_migrations_per_interval
