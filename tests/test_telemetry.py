"""Telemetry layer: hook ordering, no-op overhead, series shape, round-trips."""

import numpy as np
import pytest

from edm.engine.core import simulate
from edm.sweep import default_grid, series_path, sweep
from edm.telemetry import Recorder, TimeSeries, TimeSeriesRecorder


class EventLog(Recorder):
    """Records every hook invocation for ordering assertions."""

    def __init__(self):
        self.events = []

    def on_run_start(self, cfg, state):
        self.events.append(("start", state.epoch))

    def on_epoch(self, state, load, stats):
        self.events.append(("epoch", stats.epoch))

    def on_migration(self, state, applied, stats):
        self.events.append(("migration", stats.epoch, applied))

    def finalize(self, state, final_load):
        self.events.append(("finalize", state.epoch))
        return self.events


def test_hook_ordering(small_cfg):
    log = EventLog()
    simulate(small_cfg, recorders=(log,))
    events = log.events
    assert events[0] == ("start", 0)
    assert events[-1] == ("finalize", small_cfg.epochs - 1)

    epoch_events = [e for e in events if e[0] == "epoch"]
    assert [e[1] for e in epoch_events] == list(range(small_cfg.epochs))

    migration_events = [e for e in events if e[0] == "migration"]
    expected_epochs = [
        e for e in range(small_cfg.epochs) if (e + 1) % small_cfg.migrate_interval == 0
    ]
    assert [e[1] for e in migration_events] == expected_epochs

    # Each migration event lands after its epoch's epoch-event.
    for ev_epoch in expected_epochs:
        assert events.index(("epoch", ev_epoch)) < next(
            i for i, e in enumerate(events) if e[0] == "migration" and e[1] == ev_epoch
        )


def test_recorders_do_not_perturb_metrics(small_cfg):
    """A run with recorders attached is bit-for-bit the zero-recorder run."""
    bare = simulate(small_cfg)
    with_recorders = simulate(
        small_cfg, recorders=(TimeSeriesRecorder(), EventLog())
    )
    assert bare == with_recorders


@pytest.mark.parametrize("record_every,expected_epochs", [
    (1, list(range(32))),
    (4, [0, 4, 8, 12, 16, 20, 24, 28, 31]),
    (7, [0, 7, 14, 21, 28, 31]),
    (100, [0, 31]),
])
def test_downsampling_epochs(small_cfg, record_every, expected_epochs):
    rec = TimeSeriesRecorder(record_every=record_every)
    simulate(small_cfg, recorders=(rec,))
    assert rec.series.epoch.tolist() == expected_epochs


def test_series_shapes_and_consistency(small_cfg):
    rec = TimeSeriesRecorder(record_every=4)
    metrics = simulate(small_cfg, recorders=(rec,))
    s = rec.series
    t, n = s.num_samples, small_cfg.num_osds
    assert s.load.shape == s.wear.shape == (t, n)
    for name in ("load_cov", "load_peak_ratio", "wear_cov", "migrations"):
        assert getattr(s, name).shape == (t,)
    assert np.all(np.diff(s.epoch) > 0)
    # Wear is cumulative, final row is true end-of-run state.
    assert np.all(np.diff(s.wear, axis=0) >= 0)
    assert np.allclose(s.wear[-1], metrics["per_osd_wear"])
    assert int(s.migrations.sum()) == metrics["migrations_total"]
    assert s.meta["policy"] == small_cfg.policy
    assert s.meta["record_every"] == 4


def test_full_rate_series_matches_metrics_totals(small_cfg):
    """record_every=1: last interval's moves fold into the final row."""
    rec = TimeSeriesRecorder()
    metrics = simulate(small_cfg, recorders=(rec,))
    s = rec.series
    assert s.num_samples == small_cfg.epochs
    assert int(s.migrations.sum()) == metrics["migrations_total"]
    assert np.allclose(s.wear[-1], metrics["per_osd_wear"])


def test_recorder_reusable_across_runs(small_cfg):
    rec = TimeSeriesRecorder(record_every=2)
    simulate(small_cfg, recorders=(rec,))
    first = rec.series
    simulate(small_cfg, recorders=(rec,))
    assert np.array_equal(first.load, rec.series.load)
    assert first.meta == rec.series.meta


def test_record_every_validation():
    with pytest.raises(ValueError, match="record_every"):
        TimeSeriesRecorder(record_every=0)


def test_finalize_requires_run():
    with pytest.raises(RuntimeError, match="on_run_start"):
        TimeSeriesRecorder().finalize(None, None)


def test_npz_roundtrip(small_cfg, tmp_path):
    rec = TimeSeriesRecorder(record_every=3)
    simulate(small_cfg, recorders=(rec,))
    path = rec.series.save_npz(tmp_path / "series.npz")
    loaded = TimeSeries.load_npz(path)
    assert loaded.meta == rec.series.meta
    fields = (
        "epoch", "load", "load_cov", "load_peak_ratio", "wear", "wear_cov",
        "migrations", "alive", "replacements",
        "remaining_life_min", "remaining_life_mean",
    )
    for name in fields:
        assert np.array_equal(getattr(loaded, name), getattr(rec.series, name)), name


def test_csv_and_json_export(small_cfg, tmp_path):
    rec = TimeSeriesRecorder(record_every=8)
    simulate(small_cfg, recorders=(rec,))
    s = rec.series
    csv_path = s.save_csv(tmp_path / "series.csv")
    lines = csv_path.read_text().strip().splitlines()
    assert len(lines) == 1 + s.num_samples
    assert lines[0].startswith(
        "epoch,load_cov,load_peak_ratio,wear_cov,migrations,alive,replacements,"
        "remaining_life_min,remaining_life_mean,"
        "queue_depth_mean,queue_depth_cov,service_lat_mean,osds_total"
    )
    assert lines[0].count(",") == 12 + 2 * s.num_osds

    json_path = s.save_json(tmp_path / "series.json")
    import json

    payload = json.loads(json_path.read_text())
    assert payload["meta"] == s.meta
    assert payload["epoch"] == s.epoch.tolist()
    assert payload["wear"] == s.wear.tolist()


TINY = dict(epochs=16, requests_per_epoch=256, chunks_per_osd=8)


def test_sweep_timeseries_through_process_pool(tmp_path):
    """Workers serialize series to .npz; parent-side load matches inline run."""
    grid = default_grid(
        workloads=("deasna",), osds=(4,), policies=("baseline", "cmt"), seeds=(1,), **TINY
    )
    res = sweep(
        grid,
        cache_dir=tmp_path / "cache",
        workers=2,
        timeseries_dir=tmp_path / "ts",
        record_every=2,
    )
    assert res.simulated == len(grid)
    for cfg in grid:
        path = series_path(tmp_path / "ts", cfg)
        assert path.exists()
        loaded = TimeSeries.load_npz(path)
        rec = TimeSeriesRecorder(record_every=2)
        simulate(cfg, recorders=(rec,))
        assert loaded.meta == rec.series.meta
        assert np.array_equal(loaded.load, rec.series.load)
        assert np.array_equal(loaded.wear, rec.series.wear)


def test_sweep_timeseries_cache_semantics(tmp_path):
    """Warm sweep is a no-op; a deleted .npz forces just that config to rerun."""
    grid = default_grid(
        workloads=("deasna",), osds=(4,), policies=("baseline", "cmt"), seeds=(1,), **TINY
    )
    ts_dir = tmp_path / "ts"
    first = sweep(grid, cache_dir=tmp_path / "c", workers=1, timeseries_dir=ts_dir)
    warm = sweep(grid, cache_dir=tmp_path / "c", workers=1, timeseries_dir=ts_dir)
    assert warm.simulated == 0
    assert warm.results == first.results

    series_path(ts_dir, grid[0]).unlink()
    repaired = sweep(grid, cache_dir=tmp_path / "c", workers=1, timeseries_dir=ts_dir)
    assert repaired.simulated == 1
    assert series_path(ts_dir, grid[0]).exists()
    assert repaired.results == first.results
