"""Migration invariants: no chunk lost or duplicated, wear only grows."""

import numpy as np
import pytest

from conftest import make_state
from edm.engine.core import apply_migrations, simulate
from edm.engine.state import init_state


@pytest.mark.parametrize("policy", ["baseline", "cdf", "hdf", "cmt"])
def test_full_run_conserves_chunks(policy, make_cfg):
    cfg = make_cfg(policy=policy)
    metrics = simulate(cfg)
    # The owner map is total by construction; simulate() also runs
    # state.validate().  Check the run actually happened.
    assert metrics["epochs"] == cfg.epochs
    assert metrics["total_requests"] >= cfg.epochs * 1
    if policy == "baseline":
        assert metrics["migrations_total"] == 0
    assert metrics["migration_cost_mb"] == metrics["migrations_total"] * cfg.chunk_size_mb


def test_apply_migrations_dedups_and_validates(small_cfg):
    cfg = small_cfg
    state = make_state(cfg)
    owner_before = state.chunk_owner.copy()
    moves = np.array(
        [
            [0, 3],    # valid
            [0, 1],    # duplicate chunk -> dropped, first wins
            [5, 99],   # dst out of range -> dropped
            [-1, 2],   # chunk out of range -> dropped
            [9, 1],    # no-op: chunk 9 already on OSD 1
            [10, 2],   # valid
        ]
    )
    applied = apply_migrations(state, moves, cfg)
    assert applied == 2
    assert state.chunk_owner[0] == 3
    assert state.chunk_owner[10] == 2
    assert state.migrations_total == 2
    # Every chunk still owned exactly once, all owners valid.
    state.validate()
    assert np.bincount(state.chunk_owner, minlength=cfg.num_osds).sum() == cfg.num_chunks
    # Untouched chunks kept their owner.
    untouched = np.setdiff1d(np.arange(cfg.num_chunks), [0, 10])
    assert (state.chunk_owner[untouched] == owner_before[untouched]).all()


def test_apply_migrations_charges_destination_wear(small_cfg):
    cfg = small_cfg
    state = make_state(cfg)
    apply_migrations(state, np.array([[0, 3]]), cfg)
    assert state.osd_wear[3] == cfg.migration_write_cost * cfg.wear_per_write
    assert state.osd_wear[:3].sum() == 0


def test_apply_migrations_duplicate_destination_charges_per_move(small_cfg):
    """Two chunks landing on the same OSD charge migration wear twice, not once."""
    cfg = small_cfg
    state = make_state(cfg)
    applied = apply_migrations(state, np.array([[0, 3], [8, 3]]), cfg)
    assert applied == 2
    per_move = cfg.migration_write_cost * cfg.wear_per_write
    assert state.osd_wear[3] == pytest.approx(2 * per_move)
    assert state.osd_wear[:3].sum() == 0


def test_apply_migrations_dropped_moves_charge_no_wear(small_cfg):
    """Duplicates, out-of-range moves, and no-ops must not leave wear behind."""
    cfg = small_cfg
    state = make_state(cfg)
    moves = np.array(
        [
            [0, 3],    # valid -> charged
            [0, 2],    # duplicate chunk -> dropped, no charge on OSD 2
            [5, 99],   # dst out of range -> dropped
            [-1, 2],   # chunk out of range -> dropped
            [9, 1],    # no-op (already on OSD 1) -> dropped
        ]
    )
    applied = apply_migrations(state, moves, cfg)
    assert applied == 1
    per_move = cfg.migration_write_cost * cfg.wear_per_write
    assert state.osd_wear.sum() == pytest.approx(per_move)
    assert state.osd_wear[3] == pytest.approx(per_move)


def test_migrate_interval_longer_than_run(small_cfg, make_cfg):
    """An interval past the horizon means zero migrations, finite metrics."""
    cfg = make_cfg(migrate_interval=small_cfg.epochs * 4)
    metrics = simulate(cfg)
    assert metrics["epochs"] == cfg.epochs
    assert metrics["migrations_total"] == 0
    assert np.isfinite(metrics["load_cov_mean"])
    assert np.isfinite(metrics["wear_cov"])


def test_single_epoch_run(make_cfg):
    """epochs=1 is the smallest legal run and must finalize cleanly."""
    cfg = make_cfg(epochs=1)
    metrics = simulate(cfg)
    assert metrics["epochs"] == 1
    assert np.isfinite(metrics["load_cov_mean"])


def test_empty_moves_is_noop(small_cfg):
    state = make_state(small_cfg)
    assert apply_migrations(state, np.empty((0, 2)), small_cfg) == 0
    assert state.migrations_total == 0


def test_wear_monotone_and_positive(small_cfg):
    metrics = simulate(small_cfg)
    wear = np.array(metrics["per_osd_wear"])
    assert (wear >= 0).all()
    assert wear.sum() > 0
    assert metrics["wear_max"] >= metrics["wear_min"] >= 0


def test_init_state_round_robin_blocks(small_cfg):
    state = init_state(small_cfg)
    counts = np.bincount(state.chunk_owner, minlength=small_cfg.num_osds)
    assert (counts == small_cfg.chunks_per_osd).all()


def test_never_migrated_sentinel_clears_cooldown_at_epoch_zero(make_cfg):
    """The chunk_last_migrated sentinel is -(10**9) -- far enough in the
    past that every chunk is migration-eligible at epoch 0 under any sane
    cooldown, without the int64-overflow risk a -inf-style minimum would
    carry in the ``epoch - last_migrated`` subtraction."""
    cfg = make_cfg(migration_cooldown_epochs=10**6)
    state = init_state(cfg)
    assert (state.chunk_last_migrated == -(10**9)).all()
    assert state.epoch == 0
    assert state.eligible_mask(cfg).all()
    # The subtraction stays far from int64 limits even at the last epoch.
    ages = state.epoch + cfg.epochs - state.chunk_last_migrated
    assert (ages < np.iinfo(np.int64).max // 2).all()
