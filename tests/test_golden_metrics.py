"""Cross-policy determinism regression: golden metrics hashes.

Each case hashes the full metrics dict (canonical JSON) of one fixed small
config.  The hashes are pinned to ENGINE_VERSION: any change to routing,
policy scoring, wear accounting, fault handling, or metric computation --
intended or not -- flips a digest and fails here.

If a failure is *intentional* (you changed engine semantics on purpose):
  1. bump ENGINE_VERSION in src/edm/config.py and document what changed,
  2. re-generate the digests below (the failure message prints the new one),
  3. update GOLDEN in the same commit as the semantic change.
Never update a digest without a version bump: an unexplained flip means the
engine silently stopped reproducing published results.

One sanctioned exception to the full bump: a fix confined to *serviced*
metrics may instead bump the ``service_metrics_rev`` marker inside
``SimConfig.config_hash`` (see src/edm/config.py).  That invalidates cache
entries for serviced configs only -- unserviced sweep caches survive -- and
correspondingly only the serviced digests below may be re-pinned in that
commit; every unserviced digest passing unchanged is the proof the fix
stayed confined.  Used by rev 2: dead OSDs had been counted as permanent
zeros in the queue-depth mean/CoV, and the latency histogram's top bin
conflated finite latencies with overflow (only the degraded serviced case
actually drifted; re-pinned under the same ENGINE_VERSION).
"""

import hashlib
import json

import pytest

from conftest import cfg_factory
from edm.config import ENGINE_VERSION
from edm.engine.core import simulate

PINNED_ENGINE_VERSION = 5

# The first five digests predate the service model (ENGINE_VERSION 4) and
# were NOT re-generated for version 5: unserviced configs must keep
# computing bit-identical metrics, so these very digests passing is the
# proof the service threading left the existing engine untouched.
GOLDEN = {
    "baseline": "204bf55851419b3ce608213e5ebc7695fe4159753d878af9728027e93e8975cd",
    "cdf": "18eeff315672328aed5db035f3a97a062d95b5e847094106c564416f15da7a64",
    "hdf": "7587520683ebd85a86a34428ec624a27dfd5854c2042302c0ac41dc52ec49215",
    "cmt": "4cc68da3d89eeaec163922899a83ecbfa1aac9a038eb6f7d99284664736bac10",
    "cmt-degraded-rated": "b27d481f49c3ab7265d1b077a8c99668af5015eacd5e98bc96753e2a35179800",
    "cmt-serviced": "e2c6339a16260cac5c46c1a8d6fbedbab2b47e0cc01932b17adca3dd1ab5b088",
    "cmt-serviced-degraded": "ba70cb4afea6bf81e31a79c1baef871bfd2bb311e7dabb94f2d7c4e94500894a",
    # Policy-zoo + redundancy digests, pinned under the same ENGINE_VERSION 5:
    # new policies and the redundancy layer are gated on new config fields,
    # so every pre-existing digest above passing *unchanged* is the proof the
    # zoo and the grouping layer left redundancy-free configs bit-identical.
    "pswl": "85263f92242f360578b3fd3e60234d4eda749cde768e36ca01161980ecb51b48",
    "consolidate": "ec401fdb09f0219a1a7214d3534c67bdd2ff0414422d955db418d4176a8e2a7d",
    "cmt-ec-degraded": "0db5bb16757551b68fecc0c88c6293e7b2793d9bb736995a0fc084cff17b06bd",
}

CASES = {
    "baseline": dict(policy="baseline"),
    "cdf": dict(policy="cdf"),
    "hdf": dict(policy="hdf"),
    "cmt": dict(policy="cmt"),
    # Degraded + rated: exercises fault re-placement, wear-out failures, and
    # the endurance metrics block in one config.
    "cmt-degraded-rated": dict(policy="cmt", faults="fail:1@8", endurance="pe:900"),
    # Serviced: exercises the queue recursion, the latency histogram, and
    # migration work injection (ENGINE_VERSION 5).
    "cmt-serviced": dict(policy="cmt", service="rate:120;queue:256"),
    # Serviced + degraded: lost-work accounting and re-placement bursts
    # landing in the survivors' queues.  Re-pinned under service_metrics_rev
    # 2 (queue-depth aggregates alive-masked; the other six digests did not
    # move).
    "cmt-serviced-degraded": dict(
        policy="cmt", service="rate:60;rate:200@4-7;queue:64", faults="fail:1@8"
    ),
    # Policy zoo: the wear-probability-sensitive and consolidation policies
    # on the same plain config as the four paper policies.
    "pswl": dict(policy="pswl"),
    "consolidate": dict(policy="consolidate"),
    # Redundant + degraded: group-constrained re-placement and the
    # reconstruction traffic block (ec:4+2 groups, one scheduled failure).
    "cmt-ec-degraded": dict(policy="cmt", faults="fail:1@8", redundancy="ec:4+2"),
}


def metrics_digest(metrics: dict) -> str:
    blob = json.dumps(metrics, sort_keys=True, separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()


def test_goldens_match_engine_version():
    assert ENGINE_VERSION == PINNED_ENGINE_VERSION, (
        f"ENGINE_VERSION is now {ENGINE_VERSION} but the golden digests were "
        f"generated under {PINNED_ENGINE_VERSION}.  If the engine's semantics "
        f"changed intentionally, re-generate GOLDEN in test_golden_metrics.py "
        f"and bump PINNED_ENGINE_VERSION in the same commit."
    )


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_metrics_hash(name):
    cfg = cfg_factory(num_osds=8, seed=7, **CASES[name])
    digest = metrics_digest(simulate(cfg))
    assert digest == GOLDEN[name], (
        f"metrics for {name!r} drifted: got {digest}, pinned {GOLDEN[name]}.\n"
        f"The engine no longer reproduces this config bit-for-bit.  If that "
        f"is intentional, bump ENGINE_VERSION (cache invalidation), update "
        f"PINNED_ENGINE_VERSION and this digest in the same commit, and note "
        f"the semantic change in the ENGINE_VERSION comment; otherwise this "
        f"is a determinism regression -- find it before merging."
    )
