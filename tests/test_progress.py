"""Sweep progress line: ETA formatting, draw throttling, lifecycle edges."""

import io

import pytest

from edm.obs.progress import ProgressLine, _fmt_eta


# --- ETA formatting ----------------------------------------------------------


@pytest.mark.parametrize(
    "seconds,expected",
    [
        (0, "00:00"),
        (59, "00:59"),
        (61, "01:01"),
        (3599, "59:59"),
        (3600, "1:00:00"),
        (7322, "2:02:02"),
        (float("inf"), "--:--"),
        (float("nan"), "--:--"),
        (-5, "--:--"),
    ],
)
def test_fmt_eta(seconds, expected):
    assert _fmt_eta(seconds) == expected


# --- drawing -----------------------------------------------------------------


def test_draws_progress_and_rate():
    buf = io.StringIO()
    line = ProgressLine(total=2, stream=buf, min_interval=0.0)
    line.advance(requests=1000)
    line.advance(requests=1000)
    line.close()
    out = buf.getvalue()
    assert "[1/2]" in out and "[2/2]" in out
    assert "req/s" in out and "eta" in out
    assert out.startswith("\r")
    assert out.endswith("\n")  # close() terminates the live line


def test_final_advance_always_draws_despite_throttle():
    buf = io.StringIO()
    # A huge min_interval suppresses intermediate draws, but the last config
    # landing must still render (and close() must newline after it).
    line = ProgressLine(total=3, stream=buf, min_interval=3600.0)
    line.advance()
    line.advance()
    assert "[2/3]" not in buf.getvalue()
    line.advance()
    line.close()
    assert "[3/3]" in buf.getvalue()


def test_disabled_line_writes_nothing():
    buf = io.StringIO()
    line = ProgressLine(total=5, enabled=False, stream=buf)
    line.advance(requests=100)
    line.close()
    assert buf.getvalue() == ""


def test_zero_total_disables_itself():
    # A fully cache-hit sweep has nothing pending; the meter must be inert.
    buf = io.StringIO()
    line = ProgressLine(total=0, stream=buf)
    line.close()
    assert buf.getvalue() == ""
    assert line.enabled is False


def test_close_is_idempotent_after_interrupt():
    # The sweep closes the meter in a finally: block, so an error path can
    # close after a partial draw -- the terminating newline must appear
    # exactly once however many times close() runs.
    buf = io.StringIO()
    line = ProgressLine(total=4, stream=buf, min_interval=0.0)
    line.advance()
    line.close()
    line.close()
    assert buf.getvalue().count("\n") == 1


def test_close_before_any_advance_writes_nothing():
    buf = io.StringIO()
    line = ProgressLine(total=4, stream=buf)
    line.close()
    assert buf.getvalue() == ""


def test_counts_accumulate():
    line = ProgressLine(total=3, enabled=False)
    line.advance(requests=10)
    line.advance(requests=5)
    assert line.done == 2
    assert line.requests == 15
