"""Shared spec-grammar toolkit (edm.spec) and the porting contract.

The faults / endurance / service grammars all sit on top of edm.spec.  The
toolkit's own behaviors are unit-tested here; the round-trip pins assert the
**porting contract**: canonical spec strings, error messages, config hashes
and cache-key suffixes are byte-identical to what the pre-toolkit
hand-rolled parsers produced, so every previously written cache entry (and
every pinned golden digest) survives the port.
"""

import re

import numpy as np
import pytest

from conftest import cfg_factory
from edm.config import config_hash
from edm.endurance import EnduranceModel
from edm.faults import FaultPlan
from edm.redundancy import RedundancyScheme
from edm.service import ServiceModel
from edm.topology import TopologyPlan
from edm.spec import (
    ClauseRule,
    SpecError,
    SpecGrammar,
    format_fixed,
    format_g,
    render_range,
    span_fragment,
    validate_bands,
)

# --- number rendering --------------------------------------------------------


@pytest.mark.parametrize("x,expected", [
    (0.5, "0.5"),
    (1.0, "1"),
    (0.25, "0.25"),
    (1000000.0, "1e+06"),  # %g switches to scientific -- why bands use fixed
])
def test_format_g(x, expected):
    assert format_g(x) == expected


@pytest.mark.parametrize("x,expected", [
    (3000.0, "3000"),
    (1000000.0, "1000000"),  # never scientific: must re-parse under \d+(\.\d+)?
    (0.5, "0.5"),
    (812.25, "812.25"),
])
def test_format_fixed_round_trips(x, expected):
    assert format_fixed(x) == expected
    assert float(format_fixed(x)) == x


# --- range helpers -----------------------------------------------------------


def test_span_fragment_normalizes_single_osd_to_degenerate_range():
    assert span_fragment(None, None) is None
    assert span_fragment("3", None) == (3, 3)
    assert span_fragment("0", "7") == (0, 7)


def test_render_range_is_span_fragment_inverse():
    assert render_range(None, None) == ""
    assert render_range(3, 3) == "@3"
    assert render_range(0, 7) == "@0-7"


# --- SpecGrammar tokenization and matching -----------------------------------


TOY = SpecGrammar(
    name="toy",
    clause_noun="toy clause",
    expected="'a:N'",
    rules=(
        ClauseRule(name="a", regex=re.compile(r"^a:(\d+)$"), build=lambda m: int(m.group(1))),
    ),
)


@pytest.mark.parametrize("spec", ["", "   ", "none", None])
def test_split_empty_spellings_mean_no_clauses(spec):
    assert TOY.split(spec) == []
    assert TOY.parse(spec) == []


def test_split_strips_and_drops_blank_clauses():
    assert TOY.split(" a:1 ; ;a:2;") == ["a:1", "a:2"]
    assert TOY.parse("a:1; a:2") == [1, 2]


def test_parse_error_names_the_offending_clause():
    with pytest.raises(SpecError, match=r"bad toy clause 'b:9'; expected 'a:N'"):
        TOY.parse("a:1;b:9")


def test_spec_error_is_a_value_error():
    # Pre-toolkit call sites catch ValueError; the subclass keeps them working.
    assert issubclass(SpecError, ValueError)
    with pytest.raises(ValueError):
        TOY.parse("nope")


# --- validate_bands ----------------------------------------------------------


class Band:
    def __init__(self, value, lo=None, hi=None):
        self.value, self.lo, self.hi = value, lo, hi

    def render(self):
        return f"{format_fixed(self.value)}{render_range(self.lo, self.hi)}"


def check(bands, num_osds=8):
    validate_bands(
        bands,
        num_osds,
        spec="SPEC",
        spec_noun="toy spec",
        band_noun="toy band",
        value_noun="toy value",
        render=lambda b: b.render(),
    )


def test_validate_bands_accepts_default_plus_ranges():
    check([Band(5), Band(3, 0, 3), Band(9, 4, 4)])
    check([Band(3, 0, 3), Band(9, 4, 7)])  # no default, full coverage
    check([Band(5)], num_osds=None)  # unknown cluster size: no coverage check


@pytest.mark.parametrize("bands,message", [
    ([Band(1), Band(2)], r"at most one default \(range-free\) band"),
    ([Band(0, 0, 7)], r"toy band '0@0-7': toy value must be > 0"),
    ([Band(1), Band(2, 5, 3)], r"toy band '2@5-3': range is inverted"),
    ([Band(1), Band(2, 6, 9)], r"OSD 9 out of range for a 8-OSD cluster"),
    ([Band(1, 0, 4), Band(2, 3, 7)], r"toy band '2@3-7': OSD 3 is rated by more than one band"),
    ([Band(1, 0, 3)], r"toy spec 'SPEC': OSDs \[4, 5, 6, 7\] have no rating"),
])
def test_validate_bands_rejections(bands, message):
    with pytest.raises(SpecError, match=message):
        check(bands)


# --- porting contract: canonical strings are byte-identical ------------------
# These exact strings were produced by the pre-toolkit parsers; a flip here
# means config_hash values moved and every cached result silently went stale.

FAULT_PINS = [
    ("fail:3@100", "fail:3@100"),
    ("slow:5@050x0.50", "slow:5@50x0.5"),
    ("hiccup:2@60+10x0.25", "hiccup:2@60+10x0.25"),
    # Events sort by (epoch, kind, osd); numbers normalize through %g.
    ("fail:3@100;slow:5@50x0.5", "slow:5@50x0.5;fail:3@100"),
    ("slow:7@8x1.0;fail:6@8;hiccup:1@8+2x0.5", "fail:6@8;hiccup:1@8+2x0.5;slow:7@8x1"),
]

ENDURANCE_PINS = [
    ("pe:5000", "pe:5000"),
    ("pe:5000.0", "pe:5000"),
    # Default band first, ranged bands by first OSD; fixed-point rendering.
    ("pe:10000@4-7,3000@0-3", "pe:3000@0-3,10000@4-7"),
    ("pe:300@2,5000", "pe:5000,300@2"),
    ("pe:1000000", "pe:1000000"),  # format_fixed, never 1e+06
]

SERVICE_PINS = [
    ("rate:800", "rate:800"),
    ("rate:800.0;queue:64", "rate:800;queue:64"),
    # Default rate first, ranged rates by first OSD, queue clause last.
    ("queue:64;rate:400@4-7;rate:800", "rate:800;rate:400@4-7;queue:64"),
    ("rate:800@4-7;rate:400@0-3", "rate:400@0-3;rate:800@4-7"),
]


@pytest.mark.parametrize("spelled,canonical", FAULT_PINS)
def test_fault_plan_canonical_pins(spelled, canonical):
    plan = FaultPlan.parse(spelled, num_osds=8)
    assert plan.spec == canonical
    assert FaultPlan.parse(plan.spec, num_osds=8).spec == canonical  # round-trip


@pytest.mark.parametrize("spelled,canonical", ENDURANCE_PINS)
def test_endurance_model_canonical_pins(spelled, canonical):
    model = EnduranceModel.parse(spelled, num_osds=8)
    assert model.spec == canonical
    assert EnduranceModel.parse(model.spec, num_osds=8).spec == canonical


@pytest.mark.parametrize("spelled,canonical", SERVICE_PINS)
def test_service_model_canonical_pins(spelled, canonical):
    model = ServiceModel.parse(spelled, num_osds=8)
    assert model.spec == canonical
    assert ServiceModel.parse(model.spec, num_osds=8).spec == canonical


REDUNDANCY_PINS = [
    ("rep:3", "rep:3"),
    ("rep:03", "rep:3"),  # leading zeros normalize away
    ("ec:4+2", "ec:4+2"),
    ("ec:04+02", "ec:4+2"),
    (" rep:2 ", "rep:2"),
]


@pytest.mark.parametrize("spelled,canonical", REDUNDANCY_PINS)
def test_redundancy_scheme_canonical_pins(spelled, canonical):
    scheme = RedundancyScheme.parse(spelled, num_osds=8)
    assert scheme.spec == canonical
    assert RedundancyScheme.parse(scheme.spec, num_osds=8).spec == canonical


@pytest.mark.parametrize("spec", ["", "   ", "none"])
def test_redundancy_empty_spellings_mean_no_scheme(spec):
    scheme = RedundancyScheme.parse(spec, num_osds=8)
    assert not scheme
    assert scheme.spec == ""


# --- porting contract: grammar error messages --------------------------------


@pytest.mark.parametrize("factory,spec,message", [
    (FaultPlan, "explode:3@1", r"bad fault event 'explode:3@1'; expected 'fail:OSD@EPOCH'"),
    (EnduranceModel, "pe:abc", r"bad endurance band 'abc'; expected 'CYCLES'"),
    (EnduranceModel, "3000", r"bad endurance spec '3000'; expected 'pe:CYCLES'"),
    (ServiceModel, "rate:-5", r"bad service clause 'rate:-5'; expected 'rate:RATE'"),
    (ServiceModel, "queue:64", r"no rate clause; at least one 'rate:RATE' is required"),
    (RedundancyScheme, "par:3",
     r"bad redundancy scheme 'par:3'; expected 'rep:N' \(N-way replication\) "
     r"or 'ec:M\+K' \(M data \+ K parity\)"),
    (RedundancyScheme, "rep:1",
     r"redundancy scheme 'rep:1': replication needs at least 2 copies "
     r"\('none' = no redundancy\)"),
    (RedundancyScheme, "ec:0+1",
     r"redundancy scheme 'ec:0\+1': erasure coding needs at least 1 data "
     r"and 1 parity chunk"),
    (RedundancyScheme, "ec:4+0",
     r"redundancy scheme 'ec:4\+0': erasure coding needs at least 1 data "
     r"and 1 parity chunk"),
    (RedundancyScheme, "rep:2;rep:3",
     r"bad redundancy spec 'rep:2;rep:3': exactly one scheme is allowed, got 2"),
    (RedundancyScheme, "ec:7+3",
     r"redundancy scheme 'ec:7\+3' needs 10 distinct OSDs per group, "
     r"but the cluster has 8"),
])
def test_grammar_error_messages_unchanged(factory, spec, message):
    with pytest.raises(SpecError, match=message):
        factory.parse(spec, num_osds=8)


# --- fuzz: parse -> canonicalize -> parse is idempotent for every grammar ----
# Randomly assembled *well-formed* specs must canonicalize to a fixed point
# (parse(canonical).spec == canonical); randomly mutated garbage must fail
# with a deterministic SpecError, never an unrelated exception.  Seeded RNG,
# so any failure reproduces exactly.


def _fuzz_fragments(rng):
    """One random well-formed spec per grammar, drawn from clause templates."""
    e = lambda: int(rng.integers(1, 200))
    osd = lambda: int(rng.integers(0, 8))
    return {
        FaultPlan: ";".join(
            rng.permutation([
                f"fail:{osd()}@{e()}",
                f"slow:{osd()}@{e()}x0.{rng.integers(1, 9)}",
                f"hiccup:{osd()}@{e()}+{int(rng.integers(1, 9))}x0.{rng.integers(1, 9)}",
            ]).tolist()[: int(rng.integers(1, 4))]
        ),
        EnduranceModel: rng.choice([
            f"pe:{int(rng.integers(100, 99999))}",
            f"pe:{int(rng.integers(100, 9999))}@0-3,{int(rng.integers(100, 9999))}@4-7",
            f"pe:0{int(rng.integers(100, 9999))}.0",
        ]),
        ServiceModel: rng.choice([
            f"rate:{int(rng.integers(1, 2000))}",
            f"queue:{int(rng.integers(1, 256))};rate:{int(rng.integers(1, 2000))}",
            f"rate:{int(rng.integers(1, 2000))}@4-7;rate:{int(rng.integers(1, 2000))}@0-3",
        ]),
        TopologyPlan: rng.choice([
            f"add:{int(rng.integers(1, 4))}@{e()}",
            f"add:{int(rng.integers(1, 4))}@{e()}/cap:{int(rng.integers(1, 4))}",
            f"drain:{osd()}@{e()}",
        ]),
        RedundancyScheme: rng.choice([
            f"rep:{int(rng.integers(2, 9))}",
            f"ec:{int(rng.integers(1, 5))}+{int(rng.integers(1, 4))}",
            f"rep:0{int(rng.integers(2, 9))}",
        ]),
    }


def test_fuzz_canonicalization_is_idempotent():
    rng = np.random.default_rng(20260808)
    for _ in range(50):
        for factory, spec in _fuzz_fragments(rng).items():
            parsed = factory.parse(spec, num_osds=8)
            canonical = parsed.spec
            again = factory.parse(canonical, num_osds=8)
            assert again.spec == canonical, (
                f"{factory.__name__}: {spec!r} -> {canonical!r} is not a "
                f"canonical fixed point (re-parses to {again.spec!r})"
            )


def test_fuzz_garbage_fails_deterministically():
    rng = np.random.default_rng(20260808 + 1)
    alphabet = list("abcxyz:@+-.;,|0123456789 ")
    factories = (FaultPlan, EnduranceModel, ServiceModel, TopologyPlan, RedundancyScheme)
    rejected = 0
    for _ in range(100):
        garbage = "".join(rng.choice(alphabet, size=int(rng.integers(1, 24))))
        for factory in factories:
            try:
                first = factory.parse(garbage, num_osds=8)
            except SpecError as err:
                rejected += 1
                # The message is stable: the same input always produces the
                # byte-identical complaint (what the CLI surfaces to users).
                with pytest.raises(SpecError, match=re.escape(str(err))):
                    factory.parse(garbage, num_osds=8)
            else:
                # Rare accidental valid spec: must still be a fixed point.
                assert factory.parse(first.spec, num_osds=8).spec == first.spec
    assert rejected > 100, "fuzz draw stopped producing rejections"


# --- porting contract: config hashes and cache keys --------------------------


def test_equivalent_spellings_hash_identically():
    a = cfg_factory(
        faults="slow:2@4x0.50;fail:1@8",
        endurance="pe:100000@2-3,1200@0-1",
        service="queue:32;rate:200.0",
    )
    b = cfg_factory(
        faults="fail:1@8;slow:2@4x0.5",
        endurance="pe:1200@0-1,100000@2-3",
        service="rate:200;queue:32",
    )
    assert a == b
    assert config_hash(a) == config_hash(b)
    assert a.cache_name() == b.cache_name()


def test_cache_name_scenario_suffixes_compose_in_order():
    plain = cfg_factory()
    assert plain.cache_name() == "deasna-4osd-cmt-s0.02-r12345"
    serviced = cfg_factory(service="rate:200;queue:32")
    # -q + 8 hex chars of sha256(canonical service spec)
    assert serviced.cache_name().startswith(plain.cache_name() + "-q")
    assert len(serviced.cache_name()) == len(plain.cache_name()) + 10
    assert cfg_factory(service="rate:300").cache_name() != serviced.cache_name()

    everything = cfg_factory(
        faults="fail:1@8", endurance="pe:900", service="rate:200;queue:32"
    )
    name = everything.cache_name()
    assert re.fullmatch(
        re.escape(plain.cache_name())
        + r"-f[0-9a-f]{8}-e[0-9a-f]{8}-q[0-9a-f]{8}",
        name,
    )
