"""Request-level service model: spec semantics, queue recursion, latency
metrics, and the vectorized-vs-scalar bit-identity contract.

The service layer must never perturb what the engine computes without it:
shared metrics of a serviced run stay bit-identical to the unserviced run
(pinned here and by the untouched pre-service golden digests).  The fast
vectorized epoch step is pinned against the brute-force scalar reference
both on raw arrays and through entire simulate() runs via monkeypatch.
"""

import json

import numpy as np
import pytest

from conftest import cfg_factory
from edm.config import POLICIES
from edm.engine.core import simulate
from edm.service import (
    LATENCY_EDGES,
    ServiceModel,
    epoch_service_reference,
    epoch_service_vectorized,
    histogram_percentile,
)
from edm.service import runtime as service_runtime
from edm.spec import SpecError
from edm.telemetry import TimeSeriesRecorder

NUM_BINS = LATENCY_EDGES.size - 1


# --- spec semantics ----------------------------------------------------------


def test_empty_model_is_falsy_and_rates_inf():
    model = ServiceModel.parse("")
    assert not model
    assert model.spec == ""
    assert model.queue is None and np.isinf(model.queue_bound)
    assert np.isinf(model.rates(4)).all()


def test_rates_layering_default_plus_bands():
    model = ServiceModel.parse("rate:800;rate:400@0-3;queue:64", num_osds=8)
    assert model.default_rate == 800.0
    assert model.queue == 64 and model.queue_bound == 64.0
    assert model.rates(8).tolist() == [400.0] * 4 + [800.0] * 4


def test_rates_full_coverage_without_default():
    model = ServiceModel.parse("rate:400@0-3;rate:800@4-7", num_osds=8)
    assert model.default_rate is None
    assert model.rates(8).tolist() == [400.0] * 4 + [800.0] * 4


@pytest.mark.parametrize("spec,message", [
    ("rate:800;queue:8;queue:16", r"at most one queue clause is allowed"),
    ("rate:800;queue:0", r"service clause 'queue:0': queue depth must be >= 1"),
    ("rate:0", r"service clause 'rate:0': service rate must be > 0"),
    ("rate:800;rate:400", r"at most one default \(range-free\) band"),
    ("rate:400@0-3", r"OSDs \[4, 5, 6, 7\] have no service rate"),
    ("rate:400@0-3;rate:800@3-7", r"OSD 3 is rated by more than one band"),
])
def test_spec_rejections(spec, message):
    with pytest.raises(SpecError, match=message):
        ServiceModel.parse(spec, num_osds=8)


def test_config_canonicalizes_service_spec(make_cfg):
    cfg = make_cfg(service="queue:64;rate:200.0")
    assert cfg.service == "rate:200;queue:64"


# --- percentile guards -------------------------------------------------------


def test_percentile_empty_histogram_is_nan():
    # Explicit branch, not 0/0 -- must hold under -W error::RuntimeWarning.
    assert np.isnan(histogram_percentile(np.zeros(NUM_BINS, dtype=np.int64), 0.5))


def test_percentile_overflow_bin_is_inf():
    # The overflow slot sits *past* the last real bin (hist has NUM_BINS + 1
    # entries): only latencies beyond the last finite edge report inf.
    hist = np.zeros(NUM_BINS + 1, dtype=np.int64)
    hist[-1] = 10  # every request slower than the last finite edge
    assert np.isinf(histogram_percentile(hist, 0.5))


def test_percentile_top_real_bin_is_finite():
    # A latency inside the last log-spaced bin (just under the 1e4 edge) is
    # finite and must never be reported as inf -- the regression the
    # dedicated overflow slot exists to prevent.
    hist = np.zeros(NUM_BINS + 1, dtype=np.int64)
    hist[NUM_BINS - 1] = 10
    p = histogram_percentile(hist, 0.99)
    assert np.isfinite(p)
    assert p == LATENCY_EDGES[NUM_BINS - 1]


def test_percentile_reads_lower_bin_edge():
    hist = np.zeros(NUM_BINS, dtype=np.int64)
    hist[10] = 100
    for q in (0.5, 0.99, 0.999):
        assert histogram_percentile(hist, q) == LATENCY_EDGES[10]


def test_percentile_tail_crosses_bins():
    hist = np.zeros(NUM_BINS, dtype=np.int64)
    hist[5] = 99
    hist[200] = 1
    assert histogram_percentile(hist, 0.5) == LATENCY_EDGES[5]
    assert histogram_percentile(hist, 0.999) == LATENCY_EDGES[200]


# --- epoch step unit behaviors -----------------------------------------------


def arr(*xs):
    return np.asarray(xs, dtype=np.float64)


def test_zero_arrivals_zero_work():
    accepted, lat, depth = epoch_service_vectorized(
        np.array([0, 0]), arr(0, 0), arr(10, 10), np.inf
    )
    assert accepted.tolist() == [0, 0]
    assert lat.size == 0
    assert depth.tolist() == [0.0, 0.0]


def test_dead_osd_admits_nothing():
    accepted, lat, _ = epoch_service_vectorized(
        np.array([5, 5]), arr(0, 0), arr(0.0, 10.0), np.inf
    )
    assert accepted.tolist() == [0, 5]
    assert np.isfinite(lat).all()


def test_bounded_queue_drops_beyond_room():
    # rate 2, bound 3: room for floor(3 + 2 - 0) = 5 of the 10 arrivals.
    accepted, _, depth = epoch_service_vectorized(
        np.array([10]), arr(0), arr(2), 3.0
    )
    assert accepted.tolist() == [5]
    assert depth.tolist() == [3.0]  # 0 + 5 - 2, clamped at the bound


def test_fifo_latency_positions():
    # 3 requests on a backlog of 2 at rate 4: sojourns (3,4,5)/4.
    _, lat, depth = epoch_service_vectorized(np.array([3]), arr(2), arr(4), np.inf)
    assert lat.tolist() == [0.75, 1.0, 1.25]
    assert depth.tolist() == [1.0]  # 2 + 3 - 4


def test_unbounded_queue_never_drops():
    accepted, _, depth = epoch_service_vectorized(
        np.array([1000]), arr(500), arr(1), np.inf
    )
    assert accepted.tolist() == [1000]
    assert depth.tolist() == [1499.0]


# --- vectorized == scalar reference, bit for bit -----------------------------


def test_epoch_step_matches_reference_fuzz():
    rng = np.random.default_rng(20260808)
    for _ in range(50):
        n = int(rng.integers(1, 12))
        arrivals = rng.integers(0, 200, size=n)
        base = rng.uniform(0, 50, size=n)
        rate = rng.uniform(0, 40, size=n)
        rate[rng.random(n) < 0.2] = 0.0  # dead OSDs
        qbound = float(rng.choice([np.inf, 4.0, 32.0, 128.0]))
        fast = epoch_service_vectorized(arrivals, base, rate, qbound)
        slow = epoch_service_reference(arrivals, base, rate, qbound)
        for f, s in zip(fast, slow):
            assert np.array_equal(f, s), (arrivals, base, rate, qbound)


SCALAR_XCHECK_CASES = [
    dict(policy=policy, service="rate:120;queue:64") for policy in POLICIES
] + [
    dict(policy="cmt", service="rate:60;rate:200@2-3", faults="fail:1@8"),
    dict(policy="cmt", service="rate:120;queue:32", workload="lair62",
         faults="slow:2@4x0.5", endurance="pe:900"),
]


@pytest.mark.parametrize(
    "case", SCALAR_XCHECK_CASES, ids=lambda c: f"{c['policy']}-{c.get('faults') or 'healthy'}"
)
def test_whole_run_scalar_reference_bit_identical(case, monkeypatch):
    """Drive entire simulate() runs through the scalar path: zero metric diffs."""
    cfg = cfg_factory(epochs=24, requests_per_epoch=512, **case)
    fast = simulate(cfg)
    monkeypatch.setattr(service_runtime, "epoch_service", epoch_service_reference)
    slow = simulate(cfg)
    assert set(fast) == set(slow)
    for key in fast:
        f, s = fast[key], slow[key]
        if isinstance(f, float) and np.isnan(f):
            assert np.isnan(s), key
        else:
            assert f == s, key


# --- engine integration ------------------------------------------------------


def test_service_block_present_and_sane(make_cfg):
    metrics = simulate(make_cfg(service="rate:120;queue:64"))
    assert metrics["service"] == "rate:120;queue:64"
    p50, p99, p999 = (
        metrics["service_lat_p50"],
        metrics["service_lat_p99"],
        metrics["service_lat_p999"],
    )
    assert 0 <= p50 <= p99 <= p999
    assert metrics["service_requests_total"] == 32 * 512
    assert 0 <= metrics["service_dropped_total"] < metrics["service_requests_total"]
    assert metrics["queue_depth_max"] <= 64.0
    assert "migration_spike_ratio" in metrics and "migration_spike_lat_max" in metrics


def test_serviced_run_keeps_shared_metrics_bit_identical(make_cfg):
    """The service model observes the cluster; it must never steer it."""
    plain = simulate(make_cfg())
    serviced = simulate(make_cfg(service="rate:120;queue:64"))
    assert "service_lat_p50" not in plain
    for key, value in plain.items():
        assert serviced[key] == value, key


def test_unserviced_metrics_carry_no_service_keys(make_cfg):
    metrics = simulate(make_cfg())
    assert not [k for k in metrics if k.startswith(("service", "queue_depth"))]


def test_slower_cluster_has_higher_latency(make_cfg):
    fast = simulate(make_cfg(service="rate:400"))
    slow = simulate(make_cfg(service="rate:100"))
    assert slow["service_lat_mean"] > fast["service_lat_mean"]
    assert slow["service_lat_p99"] >= fast["service_lat_p99"]
    assert slow["queue_depth_mean"] >= fast["queue_depth_mean"]


def test_dead_osd_backlog_becomes_lost_work(make_cfg):
    degraded = simulate(make_cfg(service="rate:100", faults="fail:1@8"))
    assert degraded["service_lost_work"] > 0.0
    healthy = simulate(make_cfg(service="rate:100"))
    assert healthy["service_lost_work"] == 0.0


def test_queue_aggregates_exclude_dead_osds(make_cfg):
    """Depth mean/CoV are survivor-masked: a dead OSD's permanent zero must
    not dilute the mean or inflate the CoV for the rest of the run."""
    from conftest import make_state

    cfg = make_cfg(num_osds=4, service="rate:10;queue:64")
    model = ServiceModel.parse(cfg.service, num_osds=4)
    rt = service_runtime.ServiceRuntime(model, cfg)
    state = make_state(cfg)
    rt.attach(state)
    state.osd_alive[0] = False
    arrivals = np.array([0.0, 30.0, 40.0, 50.0])
    rt.step(state, arrivals)
    d = state.osd_queue_depth[1:]  # survivors
    assert rt._depth_mean_sum == pytest.approx(float(d.mean()))
    assert rt._depth_cov_sum == pytest.approx(float(d.std() / d.mean()))
    assert rt._depth_max == pytest.approx(float(d.max()))


def test_degraded_queue_metrics_match_survivor_stats(make_cfg):
    """End to end: after a fail, queue_depth_mean reflects live queues, so a
    degraded run's mean must exceed the same run diluted by corpse zeros
    (which is what the old unmasked aggregation reported)."""
    cfg = make_cfg(service="rate:100;queue:64", faults="fail:1@4")
    m = simulate(cfg)
    assert m["queue_depth_mean"] > 0.0
    assert np.isfinite(m["queue_depth_cov_mean"])


def test_migration_work_creates_latency_spikes(make_cfg):
    # Slow enough that queues form; migration bursts must then show up as a
    # distinct (and slower) latency population.
    metrics = simulate(make_cfg(service="rate:120;queue:256"))
    assert np.isfinite(metrics["migration_spike_ratio"])
    assert metrics["migration_spike_lat_max"] > 0.0


# --- telemetry ---------------------------------------------------------------


def test_timeseries_service_columns(make_cfg):
    rec = TimeSeriesRecorder(record_every=1)
    simulate(make_cfg(service="rate:120;queue:64"), recorders=(rec,))
    s = rec.series
    assert s.queue_depth_mean.shape == (s.num_samples,)
    assert (s.queue_depth_mean >= 0).all() and (s.queue_depth_cov >= 0).all()
    assert s.queue_depth_mean.max() > 0  # rate 120 < load: queues must form
    assert s.service_lat_mean.max() > 0
    assert s.meta["service"] == "rate:120;queue:64"


def test_timeseries_service_columns_zero_without_model(small_cfg):
    rec = TimeSeriesRecorder(record_every=1)
    simulate(small_cfg, recorders=(rec,))
    assert (rec.series.queue_depth_mean == 0).all()
    assert (rec.series.service_lat_mean == 0).all()
    assert rec.series.meta["service"] == ""


# --- CLI and run log ---------------------------------------------------------


def test_cli_run_service_reports_tail_latency(capsys):
    from edm.cli import main

    rc = main([
        "run", "--osds", "4", "--policy", "cmt", "--epochs", "16",
        "--requests", "512", "--service", "rate:120;queue:64",
    ])
    assert rc == 0
    metrics = json.loads(capsys.readouterr().out)
    for key in ("service_lat_p50", "service_lat_p99", "service_lat_p999",
                "migration_spike_ratio"):
        assert key in metrics
    assert metrics["service"] == "rate:120;queue:64"


def test_sweep_emits_service_run_log_records(tmp_path):
    from edm.obs import read_run_log
    from edm.sweep import default_grid, sweep

    grid = default_grid(
        workloads=("deasna",), osds=(4,), policies=("cmt",), seeds=(1,),
        service=("", "rate:120;queue:64"),
        epochs=16, requests_per_epoch=512, chunks_per_osd=8,
    )
    log_path = tmp_path / "runs.jsonl"
    sweep(grid, cache_dir=tmp_path / "cache", workers=1, run_log=log_path)
    records = read_run_log(log_path)  # strict: every record passes the schema
    service_records = [r for r in records if r["event"] == "service"]
    assert len(service_records) == 1  # one serviced config in the grid
    rec = service_records[0]
    assert rec["config"].startswith("deasna-4osd-cmt-s0.02-r1-q")
    assert rec["requests"] == 16 * 512
    assert rec["lat_p50"] <= rec["lat_p99"] <= rec["lat_p999"]
