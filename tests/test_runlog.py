"""Run-log JSONL: schema round-trip, worker emission, sweep-level records."""

import json
import os

import pytest

from edm.config import ENGINE_VERSION, config_hash
from edm.obs import RUNLOG_SCHEMA_VERSION, RunLogWriter, read_run_log, validate_record
from edm.sweep import default_grid, sweep

TINY = dict(epochs=16, requests_per_epoch=256, chunks_per_osd=8)


def tiny_grid(n_policies=2):
    return default_grid(
        workloads=("deasna",),
        osds=(4,),
        policies=("baseline", "cmt")[:n_policies],
        seeds=(1,),
        **TINY,
    )


def test_writer_round_trip(tmp_path):
    path = tmp_path / "log.jsonl"
    w = RunLogWriter(path, sweep_id="abc123")
    w.emit("sweep_start", configs=4, pending=2)
    w.emit(
        "run_start",
        run_id="r1",
        config="deasna-4osd-cmt-s0.02-r1",
        config_hash="h" * 64,
        engine_version=ENGINE_VERSION,
    )
    w.emit(
        "run_end",
        run_id="r1",
        config="deasna-4osd-cmt-s0.02-r1",
        config_hash="h" * 64,
        engine_version=ENGINE_VERSION,
        wall_s=0.5,
        total_requests=4096,
        requests_per_sec=8192.0,
        timings={"simulate.routing": {"count": 16, "total_s": 0.1, "mean_s": 0.00625}},
    )
    w.emit(
        "sweep_end",
        wall_s=1.0,
        cache_hits=2,
        cache_misses=2,
        cache_invalidated=0,
        simulated=2,
        timings={},
    )
    records = read_run_log(path)
    assert [r["event"] for r in records] == [
        "sweep_start", "run_start", "run_end", "sweep_end",
    ]
    assert all(r["sweep_id"] == "abc123" for r in records)
    assert all(r["pid"] == os.getpid() for r in records)
    assert all(validate_record(r) == [] for r in records)


def test_emit_rejects_unknown_event(tmp_path):
    w = RunLogWriter(tmp_path / "log.jsonl")
    with pytest.raises(ValueError, match="unknown run-log event"):
        w.emit("bogus_event")


def test_validate_record_flags_missing_fields():
    problems = validate_record({"event": "run_end", "ts": 1.0, "sweep_id": "s", "pid": 1})
    assert any("wall_s" in p for p in problems)
    assert any("timings" in p for p in problems)
    assert validate_record({"event": "nope"}) == ["unknown event 'nope'"]
    assert validate_record([1, 2]) == ["record is list, not dict"]


def test_every_record_is_schema_stamped(tmp_path):
    path = tmp_path / "log.jsonl"
    w = RunLogWriter(path, sweep_id="s")
    rec = w.emit("sweep_start", configs=1, pending=1)
    assert rec["schema"] == RUNLOG_SCHEMA_VERSION
    assert all(r["schema"] == RUNLOG_SCHEMA_VERSION for r in read_run_log(path))


def test_validate_rejects_missing_or_bad_schema():
    base = {"event": "sweep_start", "ts": 1.0, "sweep_id": "s", "pid": 1,
            "configs": 1, "pending": 1}
    assert any("schema" in p for p in validate_record(base))  # missing
    assert validate_record({**base, "schema": RUNLOG_SCHEMA_VERSION}) == []
    assert validate_record({**base, "schema": "2"}) == [
        "sweep_start: schema '2' is not an int"
    ]
    assert validate_record({**base, "schema": True}) == [
        "sweep_start: schema True is not an int"
    ]


def test_forward_compat_skips_newer_schema_records(tmp_path):
    """A reader older than the writer skips records it cannot understand
    instead of misparsing them -- and strict mode refuses them loudly."""
    path = tmp_path / "log.jsonl"
    w = RunLogWriter(path, sweep_id="s")
    w.emit("sweep_start", configs=1, pending=1)
    future = {**w.emit("sweep_start", configs=2, pending=2),
              "schema": RUNLOG_SCHEMA_VERSION + 1,
              "some_field_from_the_future": [1, 2, 3]}
    with open(path, "a") as f:
        f.write(json.dumps(future) + "\n")
    assert any(
        "newer than supported" in p for p in validate_record(future)
    )
    with pytest.raises(ValueError, match="newer than supported"):
        read_run_log(path)
    survivors = read_run_log(path, strict=False)
    assert [r["configs"] for r in survivors] == [1, 2]


def test_read_strict_raises_on_corrupt_line(tmp_path):
    path = tmp_path / "log.jsonl"
    RunLogWriter(path, sweep_id="s").emit("sweep_start", configs=1, pending=1)
    with open(path, "a") as f:
        f.write("{not json\n")
    with pytest.raises(ValueError, match="not JSON"):
        read_run_log(path)
    assert len(read_run_log(path, strict=False)) == 1


def test_sweep_emits_one_run_pair_per_simulated_config(tmp_path):
    grid = tiny_grid()
    path = tmp_path / "run.jsonl"
    sweep(grid, cache_dir=tmp_path / "c", workers=1, run_log=path)
    records = read_run_log(path)
    events = [r["event"] for r in records]
    assert events[0] == "sweep_start"
    assert events[-1] == "sweep_end"
    starts = [r for r in records if r["event"] == "run_start"]
    ends = [r for r in records if r["event"] == "run_end"]
    assert len(starts) == len(ends) == len(grid)
    # run_end records carry identity, throughput, and span timings.
    by_config = {r["config"]: r for r in ends}
    for cfg in grid:
        rec = by_config[cfg.cache_name()]
        assert rec["config_hash"] == config_hash(cfg)
        assert rec["engine_version"] == ENGINE_VERSION
        assert rec["wall_s"] > 0
        assert rec["total_requests"] == TINY["epochs"] * TINY["requests_per_epoch"]
        assert rec["requests_per_sec"] > 0
        assert "simulate.kernel" in rec["timings"]
    # run ids pair starts with ends one-to-one.
    assert {r["run_id"] for r in starts} == {r["run_id"] for r in ends}
    # sweep_end carries the cache counters and parent-side stage spans.
    end = records[-1]
    assert end["simulated"] == len(grid)
    assert end["cache_hits"] == 0
    assert "sweep.cache_probe" in end["timings"]


def test_sweep_run_log_records_come_from_worker_processes(tmp_path):
    grid = tiny_grid()
    path = tmp_path / "run.jsonl"
    sweep(grid, cache_dir=tmp_path / "c", workers=2, run_log=path)
    records = read_run_log(path)
    run_pids = {r["pid"] for r in records if r["event"].startswith("run_")}
    sweep_pids = {r["pid"] for r in records if r["event"].startswith("sweep_")}
    assert sweep_pids == {os.getpid()}
    assert run_pids and os.getpid() not in run_pids  # emitted inside workers
    # Every line parses as valid JSON on its own (concurrent appends intact).
    for line in path.read_text().splitlines():
        assert validate_record(json.loads(line)) == []


def test_warm_sweep_logs_no_run_records(tmp_path):
    grid = tiny_grid()
    sweep(grid, cache_dir=tmp_path / "c", workers=1)
    path = tmp_path / "warm.jsonl"
    res = sweep(grid, cache_dir=tmp_path / "c", workers=1, run_log=path)
    assert res.cache_hits == len(grid)
    events = [r["event"] for r in read_run_log(path)]
    assert events == ["sweep_start", "sweep_end"]


def test_cached_metrics_never_contain_timings(tmp_path):
    grid = tiny_grid(n_policies=1)
    traced = sweep(grid, cache_dir=tmp_path / "c", workers=1, run_log=tmp_path / "l.jsonl")
    warm = sweep(grid, cache_dir=tmp_path / "c", workers=1)
    assert "timings" not in traced.results[0]
    assert warm.results == traced.results
