"""CLI surface: run/sweep subcommands parse and produce output."""

import json

import pytest

from edm.cli import main


def test_run_prints_metrics(capsys):
    assert (
        main(
            [
                "run",
                "--workload", "deasna",
                "--osds", "4",
                "--policy", "edm",
                "--epochs", "8",
                "--requests", "128",
            ]
        )
        == 0
    )
    metrics = json.loads(capsys.readouterr().out)
    assert metrics["policy"] == "cmt"
    assert metrics["epochs"] == 8


def test_sweep_smoke(tmp_path, capsys):
    assert (
        main(
            [
                "sweep",
                "--workloads", "deasna",
                "--osds", "4",
                "--policies", "baseline,cmt",
                "--seeds", "1",
                "--epochs", "8",
                "--requests", "128",
                "--cache-dir", str(tmp_path),
                "--workers", "1",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "deasna-4osd-baseline" in out
    assert "2 configs: 2 simulated" in out


def test_unknown_policy_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--policy", "bogus"])


def test_run_with_explicit_numpy_kernel(capsys):
    assert (
        main(
            [
                "run",
                "--osds", "4",
                "--epochs", "8",
                "--requests", "128",
                "--kernel", "numpy",
            ]
        )
        == 0
    )
    assert json.loads(capsys.readouterr().out)["epochs"] == 8


def test_unknown_kernel_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--kernel", "fortran"])


def test_sweep_stream_flag(tmp_path, capsys):
    assert (
        main(
            [
                "sweep",
                "--workloads", "deasna",
                "--osds", "4",
                "--policies", "baseline,cmt",
                "--seeds", "1",
                "--epochs", "8",
                "--requests", "128",
                "--cache-dir", str(tmp_path),
                "--workers", "1",
                "--stream",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    # The per-config table renders from the slim summaries.
    assert "deasna-4osd-baseline" in out and "load_cov=" in out
    assert "2 configs: 2 simulated" in out


def test_sweep_stream_conflicts_with_no_cache(tmp_path):
    assert (
        main(
            [
                "sweep",
                "--cache-dir", str(tmp_path),
                "--stream",
                "--no-cache",
            ]
        )
        == 2
    )


def test_sweep_with_timeseries_flag(tmp_path, capsys):
    ts_dir = tmp_path / "ts"
    assert (
        main(
            [
                "sweep",
                "--workloads", "deasna",
                "--osds", "4",
                "--policies", "edm",
                "--seeds", "1",
                "--epochs", "8",
                "--requests", "128",
                "--cache-dir", str(tmp_path / "cache"),
                "--timeseries", str(ts_dir),
                "--record-every", "2",
                "--workers", "1",
                "-v",
            ]
        )
        == 0
    )
    # Diagnostics go through the package logger on stderr at -v.
    err = capsys.readouterr().err
    assert "per-epoch series in" in err
    # The edm alias lands on the canonical cmt cache key.
    assert (ts_dir / "deasna-4osd-cmt-s0.02-r1.npz").exists()


def test_stable_public_api():
    import edm

    for name in (
        "SimConfig", "SweepResult", "Recorder", "TimeSeries", "TimeSeriesRecorder",
        "config_hash", "default_grid", "resolve_policy", "simulate", "sweep",
    ):
        assert name in edm.__all__
        assert getattr(edm, name) is not None


def test_run_with_redundancy_flag(capsys):
    assert (
        main(
            [
                "run",
                "--osds", "8",
                "--policy", "pswl",
                "--epochs", "8",
                "--requests", "128",
                "--redundancy", "rep:3",
            ]
        )
        == 0
    )
    metrics = json.loads(capsys.readouterr().out)
    assert metrics["policy"] == "pswl"
    assert metrics["redundancy"] == "rep:3"
    assert metrics["reconstruction_chunks_total"] == 0  # healthy run


def test_sweep_redundancy_axis(tmp_path, capsys):
    assert (
        main(
            [
                "sweep",
                "--workloads", "deasna",
                "--osds", "8",
                "--policies", "cmt",
                "--seeds", "1",
                "--epochs", "8",
                "--requests", "128",
                "--redundancy", "none,rep:3",
                "--cache-dir", str(tmp_path),
                "--workers", "1",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "2 configs: 2 simulated" in out
    assert "-g" in out  # the redundant config's cache-name suffix
