"""CLI surface: run/sweep subcommands parse and produce output."""

import json

import pytest

from edm.cli import main


def test_run_prints_metrics(capsys):
    assert (
        main(
            [
                "run",
                "--workload", "deasna",
                "--osds", "4",
                "--policy", "edm",
                "--epochs", "8",
                "--requests", "128",
            ]
        )
        == 0
    )
    metrics = json.loads(capsys.readouterr().out)
    assert metrics["policy"] == "cmt"
    assert metrics["epochs"] == 8


def test_sweep_smoke(tmp_path, capsys):
    assert (
        main(
            [
                "sweep",
                "--workloads", "deasna",
                "--osds", "4",
                "--policies", "baseline,cmt",
                "--seeds", "1",
                "--epochs", "8",
                "--requests", "128",
                "--cache-dir", str(tmp_path),
                "--workers", "1",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "deasna-4osd-baseline" in out
    assert "2 configs: 2 simulated" in out


def test_unknown_policy_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--policy", "bogus"])
