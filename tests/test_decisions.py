"""Decision provenance: explained picks, recorder sinks, attribution, CLI."""

import json

import numpy as np
import pytest

from conftest import cfg_factory, make_state
from edm.cli import main
from edm.engine.core import simulate
from edm.obs.decisions import (
    DECISION_SCHEMA_VERSION,
    Decision,
    DecisionRecorder,
    attribution_summary,
    decisive_term,
    format_attribution,
    format_decision,
    query_decisions,
    read_decision_log,
    runner_up_index,
    validate_decision,
    winner_index,
)
from edm.policies import POLICIES, get_policy

FAULTED_ENDURED = dict(faults="fail:1@12", endurance="pe:2000")


def crafted_state(cfg, rng_seed=7):
    """A mid-run state with uneven heat/wear so picks are non-trivial."""
    rng = np.random.default_rng(rng_seed)
    n, c = cfg.num_osds, cfg.num_chunks
    state = make_state(
        cfg,
        heat=rng.uniform(0.1, 3.0, size=c),
        wear=rng.uniform(0.0, 500.0, size=n),
        load_ema=rng.uniform(0.5, 2.0, size=n),
    )
    if cfg.endurance:
        # Finite rated budgets + varied wear rates => finite, varied
        # wear-out risk, so the risk term actually participates in scoring.
        state.osd_rated_life[:] = 2000.0
        state.osd_wear_rate[:] = np.linspace(1.0, 5.0, n)
    return state


# --- explained pick == plain pick, by construction ---------------------------


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@pytest.mark.parametrize("endurance", ["", "pe:2000"])
def test_explain_destination_matches_pick(policy_name, endurance):
    cfg = cfg_factory(policy="cmt", endurance=endurance)
    state = crafted_state(cfg)
    policy = get_policy(policy_name)
    rng = np.random.default_rng(3)
    for trial in range(20):
        k = int(rng.integers(1, cfg.num_osds + 1))
        candidates = rng.choice(cfg.num_osds, size=k, replace=False)
        proj = rng.uniform(0.1, 4.0, size=cfg.num_osds)
        dst, terms, scores = policy.explain_destination(candidates, proj, state, cfg)
        assert dst == policy.pick_destination(candidates, proj, state, cfg)
        assert dst == int(candidates[np.argmin(scores)])
        # The folded terms ARE the scores (left-to-right addition order).
        folded = None
        for term in terms.values():
            folded = term if folded is None else folded + term
        np.testing.assert_array_equal(folded, scores)


def test_cmt_terms_include_wear_and_risk():
    cfg = cfg_factory(policy="cmt", endurance="pe:2000")
    state = crafted_state(cfg)
    policy = get_policy("cmt")
    candidates = np.arange(cfg.num_osds)
    _, terms, _ = policy.explain_destination(
        candidates, np.ones(cfg.num_osds), state, cfg
    )
    assert list(terms) == ["load", "wear", "wearout_risk"]


def test_unrated_cmt_has_no_risk_term():
    cfg = cfg_factory(policy="cmt")
    state = crafted_state(cfg)
    policy = get_policy("cmt")
    candidates = np.arange(cfg.num_osds)
    _, terms, _ = policy.explain_destination(
        candidates, np.ones(cfg.num_osds), state, cfg
    )
    assert list(terms) == ["load", "wear"]


# --- explained runs are bit-identical and capture every trigger --------------


def test_explained_run_metrics_bit_identical():
    cfg = cfg_factory(policy="cmt", **FAULTED_ENDURED)
    plain = simulate(cfg)
    rec = DecisionRecorder(capacity=100_000)
    explained = simulate(cfg, recorders=(rec,))
    assert explained == plain
    assert rec.total > 0


def test_explained_run_captures_all_triggers():
    cfg = cfg_factory(policy="cmt", num_osds=8, epochs=48, **FAULTED_ENDURED)
    rec = DecisionRecorder(capacity=100_000)
    simulate(cfg, recorders=(rec,))
    records = rec.records()
    triggers = {r["trigger"] for r in records}
    assert "threshold" in triggers
    assert triggers <= {"threshold", "fault", "wearout"}
    assert all(validate_decision(r) == [] for r in records)
    assert all(r["policy"] == "cmt" for r in records)
    # Every record's dst is the argmin of its scores over its candidates.
    for r in records:
        assert r["dst"] == r["candidates"][int(np.argmin(r["scores"]))]


def test_unexplained_run_never_calls_hook():
    calls = []

    class Spy(DecisionRecorder):
        def on_decision(self, state, decision):
            calls.append(decision)

    # A recorder that does NOT override on_decision leaves the engine on the
    # plain path even when other recorders are attached.
    from edm.telemetry import Recorder

    cfg = cfg_factory(policy="cmt", faults="fail:1@12")
    simulate(cfg, recorders=(Recorder(),))
    assert calls == []  # nothing overrode the hook
    simulate(cfg, recorders=(Spy(),))
    assert calls  # overriding is what opts in


def test_fault_replacement_decisions_name_dead_osd_as_src():
    cfg = cfg_factory(policy="cmt", num_osds=8, faults="fail:2@12")
    rec = DecisionRecorder(capacity=100_000)
    simulate(cfg, recorders=(rec,))
    fault_decisions = [r for r in rec.records() if r["trigger"] == "fault"]
    assert fault_decisions
    assert all(r["src"] == 2 for r in fault_decisions)
    assert all(r["epoch"] == 12 for r in fault_decisions)
    assert all(2 not in r["candidates"] for r in fault_decisions)


# --- recorder sinks ----------------------------------------------------------


def fake_decision(epoch=3, chunk=7, dst=1, scores=(0.5, 0.2, 0.9)):
    candidates = tuple(range(len(scores)))
    return Decision(
        epoch=epoch,
        trigger="threshold",
        policy="cmt",
        chunk=chunk,
        src=0,
        dst=dst,
        candidates=candidates,
        terms={"load": scores},
        scores=scores,
    )


def test_ring_buffer_bounds_memory():
    rec = DecisionRecorder(capacity=10)
    for i in range(25):
        rec.on_decision(None, fake_decision(epoch=i))
    assert rec.total == 25
    assert len(rec.decisions) == 10
    assert [d.epoch for d in rec.decisions] == list(range(15, 25))


def test_recorder_rejects_bad_capacity():
    with pytest.raises(ValueError, match="capacity"):
        DecisionRecorder(capacity=0)


def test_jsonl_sink_round_trip(tmp_path):
    path = tmp_path / "dec.jsonl"
    rec = DecisionRecorder(capacity=2, path=path)  # ring smaller than stream
    for i in range(5):
        rec.on_decision(None, fake_decision(epoch=i))
    records = read_decision_log(path)
    assert len(records) == 5  # the file keeps everything the ring evicted
    assert [r["epoch"] for r in records] == list(range(5))
    assert all(r["schema"] == DECISION_SCHEMA_VERSION for r in records)


def test_read_decision_log_strictness(tmp_path):
    path = tmp_path / "dec.jsonl"
    DecisionRecorder(path=path).on_decision(None, fake_decision())
    with open(path, "a") as f:
        f.write("{broken\n")
        newer = fake_decision().to_record()
        newer["schema"] = DECISION_SCHEMA_VERSION + 1
        f.write(json.dumps(newer) + "\n")
    with pytest.raises(ValueError, match="not JSON"):
        read_decision_log(path)
    # Forward compat: bad lines and newer-schema records skip, old ones load.
    assert len(read_decision_log(path, strict=False)) == 1


def test_validate_decision_flags_problems():
    good = fake_decision().to_record()
    assert validate_decision(good) == []
    assert validate_decision([]) == ["record is list, not dict"]
    missing = {k: v for k, v in good.items() if k != "trigger"}
    assert any("trigger" in p for p in validate_decision(missing))
    assert validate_decision({**good, "schema": "2"}) == ["schema is not an int"]
    assert any(
        "newer" in p
        for p in validate_decision({**good, "schema": DECISION_SCHEMA_VERSION + 1})
    )
    assert any("unknown trigger" in p for p in validate_decision({**good, "trigger": "x"}))
    assert any("length" in p for p in validate_decision({**good, "scores": [1.0]}))
    assert any("not among" in p for p in validate_decision({**good, "dst": 99}))


# --- query / attribution -----------------------------------------------------


def test_query_filters_and_osd_matches_src_or_dst():
    records = [fake_decision(epoch=e, chunk=c).to_record() for e, c in [(1, 5), (2, 6)]]
    assert len(query_decisions(records, epoch=1)) == 1
    assert len(query_decisions(records, chunk=6)) == 1
    assert len(query_decisions(records, osd=0)) == 2  # src of both
    assert len(query_decisions(records, osd=1)) == 2  # dst of both
    assert query_decisions(records, trigger="fault") == []
    assert len(query_decisions(records, policy="cmt")) == 2


def test_winner_runner_up_and_decisive_term():
    r = Decision(
        epoch=0, trigger="threshold", policy="cmt", chunk=0, src=3, dst=1,
        candidates=(0, 1, 2),
        terms={"load": (0.30, 0.25, 0.20), "wear": (0.10, 0.05, 0.30)},
        scores=(0.40, 0.30, 0.50),
    ).to_record()
    assert winner_index(r) == 1
    assert runner_up_index(r) == 0
    # Winner beat the runner-up on load by 0.05 and wear by 0.05... make wear
    # decisive by construction: advantage load=0.05, wear=0.05 -> first max
    # wins (load).  Flip the wear gap to be larger:
    r["terms"]["wear"] = [0.20, 0.05, 0.30]
    assert decisive_term(r) == "wear"
    forced = fake_decision(scores=(0.5,)).to_record()
    forced["dst"] = 0
    assert runner_up_index(forced) is None
    assert decisive_term(forced) is None


def test_attribution_summary_fractions():
    records = []
    # Two contested decisions decided by load, one forced.
    for scores in [(0.1, 0.9), (0.2, 0.8)]:
        records.append(fake_decision(dst=0, scores=scores).to_record())
    records.append(fake_decision(dst=0, scores=(0.5,)).to_record())
    summary = attribution_summary(records)
    assert summary["cmt"]["decisions"] == 3
    assert summary["cmt"]["forced"] == 1
    assert summary["cmt"]["decisive"] == {"load": 1.0}
    text = format_attribution(summary)
    assert "cmt: 3 decisions" in text and "load decisive 100.0%" in text
    assert format_attribution({}) == "  (no decisions)"


def test_format_decision_marks_winner_and_runner_up():
    text = format_decision(fake_decision().to_record())
    assert "chunk 7 osd 0 -> osd 1" in text
    assert "decisive term: load" in text
    lines = text.splitlines()
    assert any(line.startswith("  * 1") for line in lines)
    assert any(line.startswith("  ~ 0") for line in lines)


# --- CLI ---------------------------------------------------------------------


def run_args(**kw):
    args = [
        "run", "--workload", "deasna", "--osds", "8", "--policy", "cmt",
        "--epochs", "48", "--requests", "1024",
        "--faults", "fail:1@16", "--endurance", "pe:20000",
    ]
    for flag, val in kw.items():
        args.append(f"--{flag.replace('_', '-')}")
        if val is not True:
            args.append(str(val))
    return args


def test_run_explain_bare_prints_attribution(capsys):
    assert main(run_args() + ["--explain"]) == 0
    captured = capsys.readouterr()
    json.loads(captured.out)  # stdout stays pure metrics JSON
    assert "decision attribution" in captured.err
    assert "cmt:" in captured.err


def test_run_explain_path_then_explain_cli(tmp_path, capsys):
    """Acceptance: `edm explain --chunk C --epoch E log` prints the winning
    destination's per-term decomposition and the runner-up candidates."""
    log = tmp_path / "dec.jsonl"
    assert main(run_args(explain=log)) == 0
    capsys.readouterr()
    records = read_decision_log(log)
    fault = next(r for r in records if r["trigger"] == "fault" and len(r["candidates"]) > 1)
    assert (
        main(["explain", str(log), "--chunk", str(fault["chunk"]), "--epoch", str(fault["epoch"])])
        == 0
    )
    out = capsys.readouterr().out
    assert f"chunk {fault['chunk']} osd {fault['src']} -> osd {fault['dst']}" in out
    for term in fault["terms"]:
        assert term in out  # per-term decomposition columns
    assert "* winner, ~ runner-up" in out
    assert "decisions matched" in out


def test_explain_cli_summary_and_limit(tmp_path, capsys):
    log = tmp_path / "dec.jsonl"
    assert main(run_args(explain=log)) == 0
    capsys.readouterr()
    assert main(["explain", str(log), "--summary"]) == 0
    out = capsys.readouterr().out
    assert "epoch" not in out.splitlines()[0]  # no per-decision dumps
    assert main(["explain", str(log), "--limit", "1"]) == 0
    out = capsys.readouterr().out
    assert "more decisions (raise --limit)" in out


def test_explain_cli_empty_log_errors(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["explain", str(empty)]) == 1
