"""Topology plans: grammar round-trips, validation, cache naming, elastic
runtime behavior (scale-out growth, graceful drains), and the end-to-end
tension a scale-out creates (cold drives absorbing load)."""

import numpy as np
import pytest

from edm.config import config_hash
from edm.engine.core import simulate
from edm.spec import SpecError
from edm.topology import TopologyPlan, TopologyRuntime

# ---------------------------------------------------------------------------
# Grammar


def test_empty_and_none_are_static():
    assert not TopologyPlan.parse("")
    assert not TopologyPlan.parse("none")
    assert TopologyPlan.parse("").spec == ""


def test_simple_add_round_trips():
    plan = TopologyPlan.parse("add:4@128")
    assert plan.spec == "add:4@128"
    (ev,) = plan.events
    assert (ev.kind, ev.count, ev.epoch) == ("add", 4, 128)
    assert ev.cap == 1.0 and ev.rate is None and ev.pe is None


def test_add_with_device_class_round_trips():
    plan = TopologyPlan.parse("add:4@128/cap:2,rate:1600,pe:10000")
    assert plan.spec == "add:4@128/cap:2,rate:1600,pe:10000"
    (ev,) = plan.events
    assert ev.cap == 2.0 and ev.rate == 1600.0 and ev.pe == 10000.0


def test_canonicalization_is_spelling_invariant():
    # Attribute order, event order, and whitespace all normalize away.
    a = TopologyPlan.parse("drain:0@96; add:2@32/rate:1600,cap:2")
    b = TopologyPlan.parse("add:2@32/cap:2,rate:1600;drain:0@96")
    assert a.spec == b.spec == "add:2@32/cap:2,rate:1600;drain:0@96"


def test_add_sorts_before_same_epoch_drain():
    plan = TopologyPlan.parse("drain:1@64;add:2@64")
    assert [ev.kind for ev in plan.events] == ["add", "drain"]


def test_default_cap_not_rendered():
    assert TopologyPlan.parse("add:2@8/cap:1").spec == "add:2@8"


def test_max_and_final_osds():
    plan = TopologyPlan.parse("add:4@16;add:2@32;drain:0@48;drain:1@64")
    assert plan.max_osds(8) == 14
    assert plan.final_osds(8) == 12
    assert len(plan.adds) == 2 and len(plan.drains) == 2


@pytest.mark.parametrize(
    "spec",
    [
        "add:0@16",                 # count must be >= 1
        "add:2@16/cap:0",           # attributes must be > 0
        "add:2@16/cap:2,cap:3",     # duplicate attribute
        "add:2@16/speed:9",         # unknown attribute
        "drain:0@16;drain:0@32",    # same OSD drained twice
        "grow:2@16",                # unknown event kind
    ],
)
def test_bad_specs_rejected(spec):
    with pytest.raises(SpecError):
        TopologyPlan.parse(spec)


def test_drain_of_nonexistent_osd_rejected():
    with pytest.raises(SpecError, match="does not exist"):
        TopologyPlan.parse("drain:7@16", num_osds=4)
    # ...but an id inside a band added *by* the drain's epoch is fine.
    TopologyPlan.parse("add:4@8;drain:7@16", num_osds=4)


def test_drain_below_two_survivors_rejected():
    with pytest.raises(SpecError, match="below 2"):
        TopologyPlan.parse("drain:0@8;drain:1@16", num_osds=3)


# ---------------------------------------------------------------------------
# Config integration: canonicalization, cache naming, hashing


def test_config_canonicalizes_topology(make_cfg):
    cfg = make_cfg(topology="drain:0@24; add:2@8/rate:1600,cap:2")
    assert cfg.topology == "add:2@8/cap:2,rate:1600;drain:0@24"


def test_config_rejects_invalid_topology(make_cfg):
    with pytest.raises(SpecError):
        make_cfg(topology="drain:99@8")


def test_cache_name_topology_suffix(make_cfg):
    static = make_cfg()
    elastic = make_cfg(topology="add:2@8")
    assert "-t" not in static.cache_name()
    assert elastic.cache_name().startswith(static.cache_name() + "-t")
    # Two spellings of one plan share a cache entry; different plans don't.
    respelled = make_cfg(topology=" add:2@8 ")
    assert respelled.cache_name() == elastic.cache_name()
    other = make_cfg(topology="add:3@8")
    assert other.cache_name() != elastic.cache_name()


def test_empty_topology_hashes_like_pre_topology_config(make_cfg):
    # config_hash drops an empty topology from the payload, so static
    # configs keep their pre-topology content hash (cache entries survive).
    assert config_hash(make_cfg()) == config_hash(make_cfg(topology=""))
    assert config_hash(make_cfg()) != config_hash(make_cfg(topology="add:2@8"))


# ---------------------------------------------------------------------------
# Runtime behavior


def _grown_state(cfg, plan):
    from conftest import make_state

    state = make_state(cfg, epoch=0)
    runtime = TopologyRuntime(plan)
    return state, runtime


def test_scale_out_grows_every_array(make_cfg):
    cfg = make_cfg()
    plan = TopologyPlan.parse("add:3@5/cap:2,rate:1600,pe:9000", num_osds=cfg.num_osds)
    state, runtime = _grown_state(cfg, plan)
    n0 = state.num_osds
    assert runtime.step(state, epoch=4) == []
    fired = runtime.step(state, epoch=5)
    assert len(fired) == 1 and fired[0].kind == "add"
    assert state.num_osds == n0 + 3
    for name in (
        "osd_wear", "osd_load_ema", "osd_alive", "osd_capacity",
        "osd_rated_life", "osd_wear_rate", "osd_service_rate",
        "osd_queue_depth", "osd_mig_backlog", "osd_draining",
    ):
        assert getattr(state, name).shape == (n0 + 3,), name
    # New drives join cold, with the event's device class.
    assert (state.osd_wear[n0:] == 0).all()
    assert (state.osd_capacity[n0:] == 2.0).all()
    assert (state.osd_service_rate[n0:] == 1600.0).all()
    assert (state.osd_rated_life[n0:] == 9000.0).all()
    assert state.osd_alive[n0:].all()
    assert state.degraded  # off-nominal capacity => effective-load path
    state.validate()


def test_add_defaults_inherit_cluster_defaults(make_cfg):
    cfg = make_cfg()
    plan = TopologyPlan.parse("add:2@3", num_osds=cfg.num_osds)
    state, runtime = _grown_state(cfg, plan)
    runtime.step(state, epoch=3)
    assert (state.osd_capacity[-2:] == 1.0).all()
    assert np.isinf(state.osd_service_rate[-2:]).all()
    assert np.isinf(state.osd_rated_life[-2:]).all()
    assert not state.degraded  # nominal capacity keeps the healthy fast path


def test_drain_marks_then_retire_removes(make_cfg):
    cfg = make_cfg()
    plan = TopologyPlan.parse("drain:1@7", num_osds=cfg.num_osds)
    state, runtime = _grown_state(cfg, plan)
    state.osd_queue_depth[1] = 5.0
    (ev,) = runtime.step(state, epoch=7)
    assert ev.kind == "drain" and ev.osd == 1
    assert state.osd_draining[1] and state.osd_alive[1]  # still alive: graceful
    runtime.retire(state, 1)
    assert not state.osd_alive[1]
    assert state.osd_capacity[1] == 0.0
    assert state.osd_queue_depth[1] == 0.0  # no queue work counts as lost
    assert state.degraded


# ---------------------------------------------------------------------------
# End-to-end engine runs


ELASTIC = dict(epochs=48, requests_per_epoch=2048, chunks_per_osd=16)


def test_scale_out_end_to_end(make_cfg):
    cfg = make_cfg(topology="add:4@16/cap:2,rate:1600", service="rate:800;queue:64",
                   num_osds=8, **ELASTIC)
    m = simulate(cfg)
    assert m["topology"] == cfg.topology
    assert m["osds_total_final"] == 12
    assert m["osds_added_total"] == 4
    assert m["osds_drained_total"] == 0
    assert len(m["per_osd_wear"]) == 12
    # The cold band ends with real load: the policy moved work onto it.
    assert m["cold_load_share_final"] > 0.0
    assert m["cold_wear_max"] > 0.0


def test_drain_end_to_end(make_cfg):
    cfg = make_cfg(topology="add:2@8;drain:0@24", num_osds=8, **ELASTIC)
    m = simulate(cfg)
    assert m["osds_total_final"] == 10
    assert m["osds_alive_final"] == 9
    assert m["osds_drained_total"] == 1
    assert m["drain_moves_total"] > 0  # evacuation actually moved chunks
    # The drained OSD's wear froze once it retired; survivors kept wearing.
    assert m["per_osd_wear"][0] < max(m["per_osd_wear"])


def test_elastic_run_is_deterministic(make_cfg):
    cfg = make_cfg(topology="add:2@8/cap:2;drain:1@24", num_osds=8, **ELASTIC)
    assert simulate(cfg) == simulate(cfg)


def test_static_config_unchanged_by_topology_field(make_cfg):
    """topology='' must be bit-identical to a config that predates the field."""
    assert simulate(make_cfg()) == simulate(make_cfg(topology=""))
