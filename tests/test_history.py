"""Perf history append/read and the bench --compare regression gate."""

import json

import pytest

from edm import bench as bench_mod
from edm.obs import append_history, baseline_from_history, compare_reports, read_history
from edm.obs.history import Regression, load_report


def fake_report(
    cold_rps=1_000_000.0, single_rps=30_000_000.0, quick=False, kernel="numpy"
) -> dict:
    """Minimal report with everything bench.main prints and compare gates on."""
    return {
        "edm_version": "0.3.0",
        "quick": quick,
        "kernel": kernel,
        "sweep": {
            "configs": 64,
            "cold_seconds": 4.0,
            "warm_seconds": 0.01,
            "speedup_warm_over_cold": 400.0,
            "warm_cache_hits": 64,
            "total_requests_simulated": 4_000_000,
            "requests_per_sec_cold": cold_rps,
        },
        "single_config": {
            "config": "deasna-20osd-cmt-s0.02-r12345",
            "epochs": 245,
            "telemetry": False,
            "kernel": "numpy",
            "requests_simulated": 2_000_000,
            "seconds": 0.07,
            "requests_per_sec": single_rps,
        },
        "single_config_telemetry": {"requests_per_sec": single_rps * 0.9},
        "telemetry_overhead_frac": 0.1,
    }


def test_append_and_read_history(tmp_path):
    path = tmp_path / "BENCH_history.jsonl"
    entry1 = append_history(fake_report(), path=path, sha="aaa111")
    entry2 = append_history(fake_report(cold_rps=2e6), path=path, sha="bbb222")
    assert entry1["git_sha"] == "aaa111"
    entries = read_history(path)
    assert [e["git_sha"] for e in entries] == ["aaa111", "bbb222"]
    assert entries[1]["report"]["sweep"]["requests_per_sec_cold"] == 2e6
    assert entries[0]["ts"] <= entries[1]["ts"]
    # One JSON object per line.
    assert len(path.read_text().splitlines()) == 2


def test_compare_within_threshold_passes():
    base = fake_report()
    cur = fake_report(cold_rps=950_000.0, single_rps=29_000_000.0)  # ~5% down
    assert compare_reports(cur, base, max_regression=0.15) == []


def test_compare_flags_20pct_regression():
    base = fake_report()
    cur = fake_report(cold_rps=800_000.0)  # 20% down on cold sweep only
    regs = compare_reports(cur, base, max_regression=0.15)
    assert [r.metric for r in regs] == ["sweep.requests_per_sec_cold"]
    assert regs[0].change_frac == pytest.approx(-0.2)
    assert "cold-sweep" in regs[0].describe()


def test_compare_improvement_never_flags():
    base = fake_report()
    cur = fake_report(cold_rps=5e6, single_rps=9e7)
    assert compare_reports(cur, base, max_regression=0.0) == []


def test_compare_refuses_quick_vs_full():
    with pytest.raises(ValueError, match="quick"):
        compare_reports(fake_report(quick=True), fake_report(quick=False))


def test_compare_refuses_missing_metric():
    base = fake_report()
    del base["sweep"]["requests_per_sec_cold"]
    with pytest.raises(ValueError, match="baseline report is missing"):
        compare_reports(fake_report(), base)


def test_regression_dataclass_change_frac_zero_baseline():
    r = Regression(metric="m", label="l", baseline=0.0, current=1.0)
    assert r.change_frac == 0.0


@pytest.mark.parametrize("bad", [0, 0.0, -1.0, "fast", None, True])
def test_compare_refuses_non_positive_baseline_metric(bad):
    """A zero/garbage baseline throughput has no regression ratio: refuse loudly."""
    base = fake_report()
    base["sweep"]["requests_per_sec_cold"] = bad
    if bad is None:
        match = "missing metric"
    else:
        match = "not a positive number"
    with pytest.raises(ValueError, match=match):
        compare_reports(fake_report(), base)


def test_compare_refuses_non_numeric_current_metric():
    cur = fake_report()
    cur["single_config"]["requests_per_sec"] = "NaNish"
    with pytest.raises(ValueError, match="not a non-negative number"):
        compare_reports(cur, fake_report())


def test_load_report_rejects_non_object(tmp_path):
    p = tmp_path / "r.json"
    p.write_text("[1,2,3]")
    with pytest.raises(ValueError, match="not a bench report"):
        load_report(p)


# --- kernel-matched baseline selection from history -------------------------


def test_baseline_from_history_picks_newest_same_kernel(tmp_path):
    hist = tmp_path / "hist.jsonl"
    append_history(fake_report(cold_rps=1e6, kernel="numpy"), path=hist, sha="a")
    append_history(fake_report(cold_rps=9e6, kernel="numba"), path=hist, sha="b")
    append_history(fake_report(cold_rps=2e6, kernel="numpy"), path=hist, sha="c")
    base = baseline_from_history(hist, kernel="numpy")
    assert base["sweep"]["requests_per_sec_cold"] == 2e6  # newest numpy, not numba
    assert baseline_from_history(hist, kernel="numba")["kernel"] == "numba"


def test_baseline_from_history_filters_quick_mode(tmp_path):
    hist = tmp_path / "hist.jsonl"
    append_history(fake_report(cold_rps=1e6, quick=True), path=hist, sha="a")
    append_history(fake_report(cold_rps=2e6, quick=False), path=hist, sha="b")
    assert baseline_from_history(hist, kernel="numpy", quick=True)["quick"] is True
    assert baseline_from_history(hist, kernel="numpy", quick=False)["quick"] is False


def test_baseline_from_history_no_matching_kernel_lists_backends(tmp_path):
    hist = tmp_path / "hist.jsonl"
    append_history(fake_report(kernel="numpy"), path=hist, sha="a")
    with pytest.raises(ValueError, match=r"no entry for kernel 'numba'.*numpy"):
        baseline_from_history(hist, kernel="numba")


def test_baseline_from_history_empty_history(tmp_path):
    hist = tmp_path / "hist.jsonl"
    hist.write_text("")
    with pytest.raises(ValueError, match="empty"):
        baseline_from_history(hist, kernel="numpy")


# --- bench CLI wiring (run_bench monkeypatched: no real simulation) ---------


@pytest.fixture
def patched_bench(monkeypatch):
    """Capture run_bench calls and control the report it returns."""
    calls = {}

    def fake_run_bench(out_path, cache_dir, workers, quick, kernel="auto"):
        calls["out_path"] = out_path
        calls["quick"] = quick
        calls["kernel"] = kernel
        return fake_report(quick=quick)

    monkeypatch.setattr(bench_mod, "run_bench", fake_run_bench)
    return calls


def test_bench_compare_gate_exits_nonzero_on_synthetic_regression(
    tmp_path, patched_bench, monkeypatch
):
    # Baseline 25% faster than what the bench will report -> gate trips.
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(fake_report(cold_rps=1_333_334.0, single_rps=4e7)))
    rc = bench_mod.main(
        ["--compare", str(baseline), "--max-regression", "0.15", "--out", str(tmp_path / "o.json")]
    )
    assert rc == 1


def test_bench_compare_gate_passes_within_threshold(tmp_path, patched_bench, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(fake_report(cold_rps=1_050_000.0)))  # 5% faster
    rc = bench_mod.main(["--compare", str(baseline), "--out", str(tmp_path / "o.json")])
    assert rc == 0
    assert "OK: throughput within" in capsys.readouterr().out


def test_bench_compare_unreadable_baseline_exits_2(tmp_path, patched_bench):
    assert bench_mod.main(["--compare", str(tmp_path / "missing.json")]) == 2


def test_bench_compare_zero_baseline_exits_2(tmp_path, patched_bench, caplog):
    """Satellite fix: a baseline with 0 req/s used to produce a nonsense ratio
    (or a divide-by-zero); now it is a clear error and exit code 2."""
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(fake_report(cold_rps=0.0)))
    rc = bench_mod.main(["--compare", str(baseline), "--out", str(tmp_path / "o.json")])
    assert rc == 2


def test_bench_compare_against_history_picks_same_kernel_entry(
    tmp_path, patched_bench, capsys
):
    """Satellite: a .jsonl --compare matches by kernel backend, so the numba
    entry's 9x throughput never gates this numpy run."""
    hist = tmp_path / "hist.jsonl"
    append_history(fake_report(cold_rps=9e6, single_rps=3e8, kernel="numba"), path=hist)
    append_history(fake_report(cold_rps=1_050_000.0, kernel="numpy"), path=hist)
    rc = bench_mod.main(["--compare", str(hist), "--out", str(tmp_path / "o.json")])
    assert rc == 0
    assert "OK: throughput within" in capsys.readouterr().out


def test_bench_compare_against_history_no_same_kernel_exits_2(tmp_path, patched_bench):
    hist = tmp_path / "hist.jsonl"
    append_history(fake_report(kernel="numba"), path=hist)
    rc = bench_mod.main(["--compare", str(hist), "--out", str(tmp_path / "o.json")])
    assert rc == 2


def test_bench_compare_against_history_still_gates_regressions(
    tmp_path, patched_bench
):
    hist = tmp_path / "hist.jsonl"
    append_history(
        fake_report(cold_rps=1_333_334.0, single_rps=4e7, kernel="numpy"), path=hist
    )
    rc = bench_mod.main(
        ["--compare", str(hist), "--max-regression", "0.15", "--out", str(tmp_path / "o.json")]
    )
    assert rc == 1


def test_bench_quick_defaults_to_quick_out(patched_bench):
    # Satellite fix: --quick must not overwrite the real BENCH_sweep.json.
    assert bench_mod.main(["--quick"]) == 0
    assert patched_bench["out_path"] == bench_mod.QUICK_OUT
    assert patched_bench["quick"] is True


def test_bench_full_defaults_to_sweep_out(patched_bench):
    assert bench_mod.main([]) == 0
    assert patched_bench["out_path"] == bench_mod.DEFAULT_OUT


def test_bench_explicit_out_wins_even_with_quick(tmp_path, patched_bench):
    out = tmp_path / "custom.json"
    assert bench_mod.main(["--quick", "--out", str(out)]) == 0
    assert patched_bench["out_path"] == out


def test_bench_append_history(tmp_path, patched_bench):
    hist = tmp_path / "hist.jsonl"
    assert bench_mod.main(["--append-history", str(hist), "--out", str(tmp_path / "o.json")]) == 0
    entries = read_history(hist)
    assert len(entries) == 1
    assert entries[0]["report"]["sweep"]["configs"] == 64
    assert entries[0]["git_sha"]  # present even outside a git checkout ("unknown")
