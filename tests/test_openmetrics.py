"""OpenMetrics exposition: registry rendering, metric mapping, live snapshots."""

import json
import math

import pytest

from conftest import cfg_factory
from edm.cli import main
from edm.engine.core import simulate
from edm.telemetry import MetricsRegistry, MetricsSnapshotRecorder, registry_from_metrics
from edm.telemetry.openmetrics import format_value


# --- value / label formatting ------------------------------------------------


@pytest.mark.parametrize(
    "value,expected",
    [
        (3, "3"),
        (3.0, "3"),
        (0.25, "0.25"),
        (float("nan"), "NaN"),
        (float("inf"), "+Inf"),
        (float("-inf"), "-Inf"),
        (-1, "-1"),
    ],
)
def test_format_value(value, expected):
    assert format_value(value) == expected


def test_render_basic_families():
    reg = MetricsRegistry()
    reg.gauge("load_cov", "Load CoV.")
    reg.sample("load_cov", 0.25)
    reg.counter("requests", "Requests routed.")
    reg.sample("requests", 4096)
    text = reg.render()
    assert "# TYPE edm_load_cov gauge" in text
    assert "# HELP edm_load_cov Load CoV." in text
    assert "edm_load_cov 0.25" in text
    # Counter samples carry the _total suffix; the family name does not.
    assert "# TYPE edm_requests counter" in text
    assert "edm_requests_total 4096" in text
    assert text.endswith("# EOF\n")


def test_render_escapes_labels_and_help():
    reg = MetricsRegistry(prefix="")
    reg.gauge("g", 'help with "quotes"\nand newline')
    reg.sample("g", 1, {"k": 'va"l\\ue\n'})
    text = reg.render()
    assert '# HELP g help with \\"quotes\\"\\nand newline' in text
    assert 'g{k="va\\"l\\\\ue\\n"} 1' in text


def test_registry_rejects_type_conflicts_and_undeclared_samples():
    reg = MetricsRegistry()
    reg.gauge("x", "a gauge")
    with pytest.raises(ValueError, match="already declared"):
        reg.counter("x", "now a counter?")
    with pytest.raises(KeyError):
        reg.sample("never_declared", 1)


def test_set_replaces_matching_labels():
    reg = MetricsRegistry()
    reg.gauge("epoch", "h")
    reg.set("epoch", 1)
    reg.set("epoch", 2)
    assert reg.render().count("\nedm_epoch ") == 1  # one sample line
    assert "edm_epoch 2" in reg.render()


# --- mapping a run's metrics dict --------------------------------------------


def test_registry_from_metrics_healthy_run():
    metrics = simulate(cfg_factory())
    text = registry_from_metrics(metrics).render()
    assert 'edm_run_info{workload="deasna",policy="cmt"' in text
    assert f"edm_requests_total {metrics['total_requests']}" in text
    assert "edm_load_cov_mean " in text
    assert "edm_wear_spread " in text
    # One wear sample per OSD.
    assert text.count('edm_osd_wear{osd="') == metrics["num_osds"]
    # Healthy, unrated, unserviced runs expose none of the conditional blocks.
    assert "edm_fault_" not in text
    assert "edm_remaining_life" not in text
    assert "edm_service_" not in text
    assert text.endswith("# EOF\n")


def test_registry_from_metrics_faulted_endured_run():
    metrics = simulate(cfg_factory(faults="fail:1@12", endurance="pe:2000"))
    text = registry_from_metrics(metrics).render()
    assert "edm_fault_failures_total 1" in text
    assert "edm_replacement_moves_total " in text
    assert "edm_remaining_life_min " in text
    assert "edm_wearouts_total " in text
    assert "edm_osds_alive " in text


def test_registry_from_metrics_redundant_degraded_run():
    metrics = simulate(cfg_factory(num_osds=8, redundancy="ec:4+2", faults="fail:1@12"))
    text = registry_from_metrics(metrics).render()
    assert "edm_reconstruction_chunks_total " in text
    assert "edm_reconstruction_reads_total " in text
    assert "edm_reconstruction_read_megabytes " in text
    assert "edm_reconstruction_write_megabytes " in text
    assert "edm_data_loss_chunks_total 0" in text
    # A plain run exposes none of the redundancy block.
    plain = registry_from_metrics(simulate(cfg_factory())).render()
    assert "edm_reconstruction_" not in plain
    assert "edm_data_loss_" not in plain


def test_sentinel_and_partial_metrics_pass_through():
    # predicted_first_wearout_epoch uses -1 as its "none in sight" sentinel;
    # the gauge carries it through as a plain number, not Inf, and mapping a
    # partial dict only emits the families its keys cover.
    text = registry_from_metrics({"predicted_first_wearout_epoch": -1}).render()
    assert "edm_predicted_first_wearout_epoch -1" in text
    assert "edm_load_cov_mean" not in text


# --- live snapshot recorder --------------------------------------------------


def test_snapshot_recorder_writes_periodically(tmp_path):
    out = tmp_path / "live.prom"
    rec = MetricsSnapshotRecorder(out, every=8)
    cfg = cfg_factory(epochs=32)
    metrics = simulate(cfg, recorders=(rec,))
    # 32 epochs / every-8 = 4 periodic writes + 1 finalize write.
    assert rec.snapshots == 5
    text = out.read_text()
    assert f"edm_epoch {cfg.epochs - 1}" in text
    assert f"edm_requests_total {metrics['total_requests']}" in text
    assert "edm_osds_alive 4" in text
    assert text.endswith("# EOF\n")
    # Attaching the recorder never perturbs the run.
    assert metrics == simulate(cfg)


def test_snapshot_recorder_rejects_bad_every(tmp_path):
    with pytest.raises(ValueError, match="every"):
        MetricsSnapshotRecorder(tmp_path / "x.prom", every=0)


def test_write_final_replaces_live_snapshot(tmp_path):
    out = tmp_path / "final.prom"
    rec = MetricsSnapshotRecorder(out)
    metrics = simulate(cfg_factory(), recorders=(rec,))
    rec.write_final(metrics)
    text = out.read_text()
    assert "edm_run_info{" in text  # full end-of-run exposition
    assert "edm_wear_spread " in text


# --- CLI ---------------------------------------------------------------------


def test_cli_run_metrics_out(tmp_path, capsys):
    out = tmp_path / "metrics.prom"
    assert (
        main(
            [
                "run", "--workload", "deasna", "--osds", "4",
                "--epochs", "8", "--requests", "128",
                "--metrics-out", str(out),
            ]
        )
        == 0
    )
    metrics = json.loads(capsys.readouterr().out)
    text = out.read_text()
    # The snapshot agrees with the metrics JSON the run printed.
    assert f"edm_migrations_total {metrics['migrations_total']}" in text
    assert f"edm_requests_total {metrics['total_requests']}" in text
    for line in text.splitlines():
        assert line.startswith("#") or line.split()[-1] not in ("",)
    assert text.endswith("# EOF\n")


def test_exposition_parses_line_by_line():
    """Every non-comment line is `name{labels} value` with a finite-or-literal
    value -- the shape Prometheus' text parser expects."""
    metrics = simulate(cfg_factory(faults="fail:1@12", endurance="pe:2000"))
    text = registry_from_metrics(metrics).render()
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        name_part, value = line.rsplit(" ", 1)
        assert name_part
        if value not in ("NaN", "+Inf", "-Inf"):
            math.isfinite(float(value))
