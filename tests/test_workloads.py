"""Workload generators: shape, determinism, skew, and trace personality."""

import numpy as np
import pytest

from edm.config import SimConfig, rng_seed_sequence
from edm.workloads import TRACES, make_workload


def wl_for(name, skew=0.02, seed=7, **kw):
    cfg = SimConfig(workload=name, num_osds=8, skew=skew, seed=seed, **kw)
    return make_workload(cfg, np.random.default_rng(rng_seed_sequence(cfg))), cfg


def test_registry_names():
    assert set(TRACES) == {"deasna", "deasna2", "lair62", "lair62b"}


@pytest.mark.parametrize("name", sorted(TRACES))
def test_counts_shape_and_volume(name):
    wl, cfg = wl_for(name)
    counts, writes = wl.epoch_counts(0)
    assert counts.shape == (cfg.num_chunks,)
    assert writes.shape == (cfg.num_chunks,)
    assert (writes <= counts).all()
    if wl.burstiness == 0:
        assert counts.sum() == cfg.requests_per_epoch
    else:
        assert counts.sum() >= 1


@pytest.mark.parametrize("name", sorted(TRACES))
def test_deterministic_per_seed(name):
    a, _ = wl_for(name, seed=42)
    b, _ = wl_for(name, seed=42)
    for epoch in range(5):
        ca, wa = a.epoch_counts(epoch)
        cb, wb = b.epoch_counts(epoch)
        assert (ca == cb).all() and (wa == wb).all()


def test_different_traces_differ():
    a, _ = wl_for("deasna")
    b, _ = wl_for("lair62")
    assert not np.array_equal(a.epoch_counts(0)[0], b.epoch_counts(0)[0])


def test_higher_skew_concentrates_traffic():
    flat, _ = wl_for("lair62", skew=0.0)
    steep, _ = wl_for("lair62", skew=1.0)
    # Popularity mass on the single hottest chunk grows with the exponent.
    assert steep._base_probs.max() > flat._base_probs.max()
    assert np.isclose(steep._base_probs.sum(), 1.0)


def test_write_ratio_personality():
    # lair traces are read-heavy, deasna traces write-heavier.
    assert TRACES["lair62"].write_ratio < TRACES["deasna"].write_ratio
    assert TRACES["lair62b"].write_ratio < TRACES["deasna2"].write_ratio


def test_drift_rotates_hotspot():
    wl, cfg = wl_for("lair62b")
    p0 = wl.probs(0)
    p_shift = wl.probs(wl.drift_period)
    assert not np.array_equal(p0, p_shift)
    assert np.isclose(p_shift.sum(), 1.0)


def test_static_trace_has_fixed_hotspot():
    wl, _ = wl_for("lair62")
    assert np.array_equal(wl.probs(0), wl.probs(1000))
