import numpy as np
import pytest

from edm.config import SimConfig
from edm.engine.state import ClusterState

# Shared tiny sizing: fast enough that a module can run dozens of full
# simulations, big enough that migrations and wear actually happen.
SMALL_CFG_KW = dict(
    workload="deasna",
    num_osds=4,
    policy="cmt",
    epochs=32,
    requests_per_epoch=512,
    chunks_per_osd=8,
)


def cfg_factory(**overrides) -> SimConfig:
    """Tiny :class:`SimConfig` with per-test overrides.

    The one place test modules build configs from: importable directly for
    module-level helpers (``from conftest import cfg_factory``) and exposed
    as the ``make_cfg`` fixture, replacing the per-module
    ``SimConfig(**{**small_cfg.to_dict(), ...})`` boilerplate.
    """
    return SimConfig(**{**SMALL_CFG_KW, **overrides})


@pytest.fixture
def make_cfg():
    """Config factory fixture: ``make_cfg(policy="hdf", epochs=8)``."""
    return cfg_factory


@pytest.fixture
def small_cfg():
    """Tiny config for fast unit runs (the factory's defaults, unchanged)."""
    return cfg_factory()


def make_state(
    cfg: SimConfig,
    owner=None,
    heat=None,
    wear=None,
    load_ema=None,
    epoch: int = 100,
) -> ClusterState:
    """Hand-crafted cluster state for policy unit tests."""
    c, n = cfg.num_chunks, cfg.num_osds
    return ClusterState(
        num_osds=n,
        num_chunks=c,
        chunk_owner=np.asarray(
            owner if owner is not None else np.arange(c) // cfg.chunks_per_osd,
            dtype=np.int32,
        ),
        chunk_heat=np.asarray(heat if heat is not None else np.ones(c), dtype=np.float64),
        chunk_write_heat=np.zeros(c),
        chunk_last_migrated=np.full(c, -(10**9), dtype=np.int64),
        osd_wear=np.asarray(wear if wear is not None else np.zeros(n), dtype=np.float64),
        osd_load_ema=np.asarray(
            load_ema if load_ema is not None else np.ones(n), dtype=np.float64
        ),
        epoch=epoch,
    )
