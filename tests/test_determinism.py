"""Same config + seed => bit-identical metrics; different seed => different."""

import pytest

from edm.config import config_hash
from edm.engine.core import simulate


@pytest.mark.parametrize("policy", ["baseline", "hdf", "cmt"])
def test_repeat_run_identical(policy, make_cfg):
    cfg = make_cfg(policy=policy)
    assert simulate(cfg) == simulate(cfg)


def test_different_seed_differs(make_cfg):
    a = simulate(make_cfg())
    b = simulate(make_cfg(seed=999))
    assert a != b


def test_different_policy_same_seed_different_workload_stream_ok(small_cfg, make_cfg):
    # Policies see the same workload family but configs hash differently;
    # the run must still be internally deterministic.
    hdf = make_cfg(policy="hdf")
    assert simulate(hdf) == simulate(hdf)
    assert simulate(hdf) != simulate(small_cfg)


def test_config_hash_stability_and_sensitivity(small_cfg, make_cfg):
    assert config_hash(small_cfg) == config_hash(make_cfg())
    bumped = make_cfg(epochs=small_cfg.epochs + 1)
    assert config_hash(bumped) != config_hash(small_cfg)


def test_metrics_are_plain_python(small_cfg):
    m = simulate(small_cfg)
    assert all(isinstance(v, (int, float, str, list)) for v in m.values())
    assert all(isinstance(w, float) for w in m["per_osd_wear"])
