"""Fault injection: plan parsing, runtime semantics, degraded-mode engine
behavior, healthy-path bit-identity, and CLI/run-log integration."""

import json

import numpy as np
import pytest

from conftest import cfg_factory, make_state
from edm.cli import main as cli_main
from edm.config import rng_seed_sequence
from edm.engine.core import replace_dead_chunks, simulate
from edm.engine.state import init_state
from edm.faults import FaultEvent, FaultPlan, FaultRuntime, effective_load
from edm.obs import read_run_log
from edm.policies import get_policy
from edm.telemetry import Recorder, TimeSeriesRecorder


def cfg_with(faults="", policy="cmt", **kw):
    return cfg_factory(faults=faults, policy=policy, num_osds=8, seed=7, **kw)


# --- plan parsing / validation ----------------------------------------------


def test_parse_round_trips_canonical_spec():
    plan = FaultPlan.parse("hiccup:3@12+4x0.25 ; slow:2@4x0.50;fail:1@8", num_osds=8)
    assert plan.spec == "slow:2@4x0.5;fail:1@8;hiccup:3@12+4x0.25"
    assert FaultPlan.parse(plan.spec, num_osds=8) == plan
    assert plan.failures == (FaultEvent(kind="fail", osd=1, epoch=8),)


def test_empty_and_none_mean_healthy():
    for spec in ("", "   ", "none"):
        plan = FaultPlan.parse(spec)
        assert not plan
        assert plan.spec == ""


@pytest.mark.parametrize(
    "spec,message",
    [
        ("fail:1@2;fail:1@9", "more than once"),
        ("slow:0@4x0", "factor must be > 0"),
        ("hiccup:0@4+0x0.5", "duration must be >= 1"),
        ("fail:1@2;garbage", "bad fault event"),
        ("fail:1@2,fail:2@3", "bad fault event"),  # commas never join events
    ],
)
def test_invalid_specs_rejected(spec, message):
    with pytest.raises(ValueError, match=message):
        FaultPlan.parse(spec, num_osds=8)


def test_killing_every_osd_rejected():
    spec = ";".join(f"fail:{i}@{i + 1}" for i in range(4))
    with pytest.raises(ValueError, match="at least one must survive"):
        FaultPlan.parse(spec, num_osds=4)
    # The same plan is fine on a bigger cluster.
    assert len(FaultPlan.parse(spec, num_osds=8).failures) == 4


# --- runtime capacity semantics ---------------------------------------------


def test_effective_load_scales_and_masks():
    load = np.array([10.0, 10.0, 10.0])
    cap = np.array([1.0, 0.5, 0.0])
    alive = np.array([True, True, False])
    eff = effective_load(load, cap, alive)
    assert eff[0] == 10.0
    assert eff[1] == 20.0  # half-capacity disk is twice as loaded
    assert eff[2] == np.inf  # dead disk can never look underloaded


def test_slow_events_compound_and_hiccup_restores(small_cfg):
    plan = FaultPlan.parse("slow:0@1x0.5;slow:0@3x0.5;hiccup:1@2+2x0.25", num_osds=4)
    rt = FaultRuntime(plan)
    state = make_state(small_cfg)
    for epoch in range(6):
        rt.step(state, epoch)
        if epoch == 2:
            assert state.osd_capacity[0] == 0.5
            assert state.osd_capacity[1] == 0.25  # hiccup window open
        if epoch == 4:
            assert state.osd_capacity[0] == 0.25  # two slows compound
            assert state.osd_capacity[1] == 1.0  # window closed, restored
    assert state.degraded
    assert state.osd_alive.all()


def test_fail_pins_alive_and_capacity(small_cfg):
    rt = FaultRuntime(FaultPlan.parse("fail:2@5", num_osds=4))
    state = make_state(small_cfg)
    fired = []
    for epoch in range(8):
        fired += rt.step(state, epoch)
    assert [ev.render() for ev in fired] == ["fail:2@5"]
    assert not state.osd_alive[2]
    assert state.osd_capacity[2] == 0.0
    assert state.degraded


# --- failure re-placement ----------------------------------------------------


@pytest.mark.parametrize("policy_name", ["baseline", "cdf", "hdf", "cmt"])
def test_replace_dead_chunks_evacuates_via_policy(make_cfg, policy_name):
    cfg = make_cfg(policy=policy_name)
    state = init_state(cfg)
    state.osd_alive[1] = False
    state.osd_capacity[1] = 0.0
    state.degraded = True
    evacuated = int((state.chunk_owner == 1).sum())
    moved = replace_dead_chunks(state, 1, get_policy(policy_name), cfg)
    assert moved == evacuated == cfg.chunks_per_osd
    assert not (state.chunk_owner == 1).any()
    state.validate()  # dead-OSD-owns-no-chunks invariant holds
    # Re-placement is real migration traffic: wear charged on survivors only.
    per_move = cfg.migration_write_cost * cfg.wear_per_write
    assert state.osd_wear.sum() == pytest.approx(moved * per_move)
    assert state.osd_wear[1] == 0.0


def test_replace_dead_chunks_requires_survivors(small_cfg):
    state = init_state(small_cfg)
    state.osd_alive[:] = False
    with pytest.raises(RuntimeError, match="no OSD survives"):
        replace_dead_chunks(state, 0, get_policy("cmt"), small_cfg)


# --- engine integration ------------------------------------------------------


def test_faulted_run_is_deterministic():
    cfg = cfg_with(faults="fail:1@8;slow:2@4x0.5;hiccup:3@12+4x0.25")
    assert simulate(cfg) == simulate(cfg)


def test_fault_free_config_has_no_fault_keys():
    metrics = simulate(cfg_with())
    assert not any(k.startswith("fault") or "replac" in k for k in metrics)
    assert "osds_alive_final" not in metrics


def test_faults_excluded_from_seed_material():
    """Faulted runs replay the exact same traffic as their healthy twin."""
    healthy = cfg_with()
    faulted = cfg_with(faults="fail:1@8")
    assert rng_seed_sequence(healthy).entropy == rng_seed_sequence(faulted).entropy
    m_h, m_f = simulate(healthy), simulate(faulted)
    assert m_f["total_requests"] == m_h["total_requests"]


def test_failure_metrics_and_recovery(small_cfg):
    cfg = cfg_with(faults="fail:1@8")
    metrics = simulate(cfg)
    assert metrics["faults"] == "fail:1@8"
    assert metrics["fault_failures"] == 1
    assert metrics["osds_alive_final"] == cfg.num_osds - 1
    # The dead OSD evacuates whatever it held (pre-failure migrations may
    # have moved chunks on or off it) in a single burst.
    assert metrics["replacement_moves_total"] > 0
    assert metrics["replacement_burst_max"] == metrics["replacement_moves_total"]
    assert metrics["fault_recovery_epochs"] >= -1
    assert np.isfinite(metrics["load_cov_alive_mean"])
    assert np.isfinite(metrics["wear_cov_alive"])


def test_dead_osd_serves_no_load_after_failure():
    rec = TimeSeriesRecorder(record_every=1)
    cfg = cfg_with(faults="fail:1@8")
    simulate(cfg, recorders=(rec,))
    s = rec.series
    post = s.epoch >= 8
    assert (s.load[post, 1] == 0).all()
    assert (s.alive[post] == cfg.num_osds - 1).all()
    assert (s.alive[~post] == cfg.num_osds).all()
    # The whole replacement burst lands on the failure epoch's row.
    assert s.replacements.sum() > 0
    assert s.replacements[s.epoch == 8].sum() == s.replacements.sum()


def test_on_fault_hook_fires_in_schedule_order():
    seen = []

    class Spy(Recorder):
        def on_fault(self, state, event, replaced):
            seen.append((state.epoch, event.render(), replaced))

    cfg = cfg_with(faults="slow:2@4x0.5;fail:1@8")
    simulate(cfg, recorders=(Spy(),))
    assert [(e, r) for e, r, _ in seen] == [(4, "slow:2@4x0.5"), (8, "fail:1@8")]
    assert seen[0][2] == 0  # slow events re-place nothing
    assert seen[1][2] > 0  # the failure evacuated the dead OSD's chunks


def test_policies_never_target_dead_osds():
    """No post-failure migration may land a chunk on the dead OSD."""

    class OwnerSpy(Recorder):
        def __init__(self):
            self.owners_after = []

        def on_migration(self, state, applied, stats):
            self.owners_after.append((state.epoch, state.chunk_owner.copy()))

    for policy in ("cdf", "hdf", "cmt"):
        spy = OwnerSpy()
        simulate(cfg_with(faults="fail:1@4", policy=policy), recorders=(spy,))
        post = [owners for epoch, owners in spy.owners_after if epoch >= 4]
        assert post, policy
        for owners in post:
            assert not (owners == 1).any(), policy


def test_slow_disk_sheds_load():
    """A half-capacity OSD should end up with less raw load than its peers."""
    cfg = cfg_with(faults="slow:2@4x0.4", policy="cmt", epochs=64)
    rec = TimeSeriesRecorder(record_every=1)
    simulate(cfg, recorders=(rec,))
    tail = rec.series.load[-16:]
    others = [i for i in range(cfg.num_osds) if i != 2]
    assert tail[:, 2].mean() < tail[:, others].mean()


# --- CLI + run log -----------------------------------------------------------


def test_cli_run_with_faults(capsys):
    rc = cli_main(
        ["run", "--workload", "deasna", "--osds", "8", "--policy", "cmt",
         "--seed", "7", "--epochs", "16", "--requests", "256",
         "--faults", "fail:1@4"]
    )
    assert rc == 0
    metrics = json.loads(capsys.readouterr().out)
    assert metrics["fault_failures"] == 1
    assert metrics["osds_alive_final"] == 7


def test_cli_sweep_fault_axis_and_run_log(tmp_path, capsys):
    log_path = tmp_path / "runs.jsonl"
    rc = cli_main(
        ["sweep", "--workloads", "deasna", "--osds", "8",
         "--policies", "baseline,cmt", "--seeds", "7",
         "--faults", "none,fail:1@8;slow:2@4x0.5", "--quick",
         "--workers", "1", "--cache-dir", str(tmp_path / "cache"),
         "--run-log", str(log_path)]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "# 4 configs: 4 simulated" in out
    records = read_run_log(log_path)  # strict: every record schema-validates
    faults = [r for r in records if r["event"] == "fault"]
    # 2 faulted configs x 2 events each, tagged with kind/osd/epoch/replaced.
    assert len(faults) == 4
    assert {r["kind"] for r in faults} == {"fail", "slow"}
    fail_recs = [r for r in faults if r["kind"] == "fail"]
    assert all(r["epoch"] == 8 and r["osd"] == 1 and r["replaced"] > 0 for r in fail_recs)


def test_sweep_cache_distinguishes_fault_scenarios(tmp_path, capsys):
    """Same base config, different fault spec -> different cache entries."""
    common = ["sweep", "--workloads", "deasna", "--osds", "8", "--policies", "cmt",
              "--seeds", "7", "--quick", "--workers", "1",
              "--cache-dir", str(tmp_path / "cache")]
    assert cli_main([*common, "--faults", "none"]) == 0
    assert "1 simulated" in capsys.readouterr().out
    assert cli_main([*common, "--faults", "fail:1@8"]) == 0
    assert "1 simulated" in capsys.readouterr().out
    # Re-running the faulted sweep is a pure cache hit.
    assert cli_main([*common, "--faults", "fail:1@8"]) == 0
    assert "1 cache hits" in capsys.readouterr().out
