"""Report aggregation and the report/plot CLI subcommands."""

import json

import pytest

from edm import report
from edm.cli import main
from edm.sweep import default_grid, sweep
from edm.telemetry.plots import POLICY_COLORS, have_matplotlib, policy_color

TINY = dict(epochs=16, requests_per_epoch=256, chunks_per_osd=8)


@pytest.fixture
def swept_cache(tmp_path):
    grid = default_grid(
        workloads=("deasna", "lair62"),
        osds=(4,),
        policies=("baseline", "cmt"),
        seeds=(1, 2),
        **TINY,
    )
    sweep(grid, cache_dir=tmp_path / "cache", workers=1, timeseries_dir=tmp_path / "ts")
    return tmp_path


def test_load_and_aggregate(swept_cache):
    loaded = report.load_cached_metrics(swept_cache / "cache")
    assert loaded.stale == 0
    assert len(loaded.metrics) == 8
    cells = report.aggregate(loaded.metrics)
    assert [(c["workload"], c["policy"]) for c in cells] == [
        ("deasna", "baseline"),
        ("deasna", "cmt"),
        ("lair62", "baseline"),
        ("lair62", "cmt"),
    ]
    assert all(c["runs"] == 2 for c in cells)  # two seeds averaged per cell
    baseline = next(c for c in cells if c["policy"] == "baseline")
    assert baseline["migration_cost_mb"] == 0.0


def test_stale_entries_skipped(swept_cache):
    cache_dir = swept_cache / "cache"
    victim = sorted(cache_dir.glob("*.pkl"))[0]
    victim.write_bytes(b"not a pickle")
    loaded = report.load_cached_metrics(cache_dir)
    assert loaded.stale == 1
    assert len(loaded.metrics) == 7


def test_render_formats(swept_cache):
    cells = report.aggregate(report.load_cached_metrics(swept_cache / "cache").metrics)
    md = report.render(cells, fmt="markdown")
    assert md.splitlines()[0].startswith("| workload | policy | runs |")
    parsed = json.loads(report.render(cells, fmt="json"))
    assert len(parsed) == 4
    with pytest.raises(ValueError, match="unknown report format"):
        report.render(cells, fmt="yaml")


def test_service_columns_appear_only_with_a_service_scenario(tmp_path):
    grid = default_grid(
        workloads=("deasna",),
        osds=(4,),
        policies=("cmt",),
        seeds=(1,),
        service=("", "rate:120;queue:64"),
        **TINY,
    )
    sweep(grid, cache_dir=tmp_path / "cache", workers=1)
    cells = report.aggregate(report.load_cached_metrics(tmp_path / "cache").metrics)
    assert [c["service"] for c in cells] == ["", "rate:120;queue:64"]
    serviced = cells[1]
    assert serviced["service_lat_p50"] <= serviced["service_lat_p99"]
    assert "service_lat_p50" not in cells[0]

    md = report.render(cells, fmt="markdown")
    header = md.splitlines()[0]
    assert "| service |" in header
    assert header.endswith("| lat p50 | lat p99 | lat p999 | mig spike |")
    untimed_row = next(line for line in md.splitlines() if "untimed" in line)
    assert untimed_row.endswith("| - | - | - | - |")  # no latency numbers to show

    # A service-free cache keeps the historical table shape.
    plain = report.aggregate([m for m in report.load_cached_metrics(
        tmp_path / "cache").metrics if not m.get("service")])
    assert "service" not in report.render(plain, fmt="markdown").splitlines()[0]


def test_report_cli_markdown(swept_cache, capsys):
    assert main(["report", str(swept_cache / "cache")]) == 0
    out = capsys.readouterr().out
    assert "| workload | policy |" in out
    assert "cmt" in out


def test_report_cli_json_to_file(swept_cache, tmp_path):
    out_file = tmp_path / "report.json"
    assert main(["report", str(swept_cache / "cache"), "--format", "json", "--out", str(out_file)]) == 0
    assert len(json.loads(out_file.read_text())) == 4


def test_report_cli_empty_dir(tmp_path, capsys):
    assert main(["report", str(tmp_path)]) == 1
    assert "no usable sweep results" in capsys.readouterr().err


def test_policy_colors_are_fixed_slots():
    # Color follows the entity: a policy keeps its slot no matter the subset.
    assert list(POLICY_COLORS) == ["baseline", "cdf", "hdf", "cmt"]
    assert policy_color("cmt") == POLICY_COLORS["cmt"]
    assert policy_color("some-future-policy") not in POLICY_COLORS.values()


@pytest.mark.skipif(have_matplotlib(), reason="matplotlib installed; skip-path untestable")
def test_plot_cli_skips_without_matplotlib(swept_cache, capsys):
    assert main(["plot", str(swept_cache / "ts")]) == 0
    assert "matplotlib is not installed" in capsys.readouterr().err


def test_plot_cli_renders_figures(swept_cache, tmp_path):
    pytest.importorskip("matplotlib")
    out_dir = tmp_path / "figs"
    assert main(["plot", str(swept_cache / "ts"), "--out-dir", str(out_dir)]) == 0
    names = {p.name for p in out_dir.iterdir()}
    assert names == {
        "load_cov_deasna-4osd.png",
        "load_cov_lair62-4osd.png",
        "wear_final_deasna-4osd.png",
        "wear_final_lair62-4osd.png",
        "migration_cost_4osd.png",
    }
    assert all((out_dir / n).stat().st_size > 0 for n in names)


def test_plot_cli_empty_dir(tmp_path, capsys):
    pytest.importorskip("matplotlib")
    (tmp_path / "empty").mkdir()
    assert main(["plot", str(tmp_path / "empty")]) == 1
    assert "no .npz series" in capsys.readouterr().err
