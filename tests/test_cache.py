"""Cache layer: warm hits are exact, stale/corrupt pickles are invalidated."""

import pickle

import pytest

from edm.cache import ResultCache
from edm.config import SimConfig, config_hash
from edm.engine.core import simulate


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def test_miss_then_store_then_exact_hit(cache, small_cfg):
    assert cache.load(small_cfg) is None
    metrics = simulate(small_cfg)
    cache.store(small_cfg, metrics)
    assert cache.load(small_cfg) == metrics
    assert cache.hits == 1


def test_filename_matches_historical_key_format(cache):
    cfg = SimConfig(workload="lair62b", num_osds=20, policy="cmt", skew=0.02, seed=54321)
    assert cache.path_for(cfg).name == "lair62b-20osd-cmt-s0.02-r54321.pkl"


def test_config_hash_mismatch_invalidates_stale_pickle(cache, small_cfg, make_cfg):
    metrics = simulate(small_cfg)
    path = cache.store(small_cfg, metrics)
    # Same cache filename, different engine knobs -> same path, different hash.
    changed = make_cfg(heat_alpha=0.9)
    assert cache.path_for(changed) == path
    assert cache.load(changed) is None
    assert cache.invalidated == 1
    assert not path.exists()  # stale pickle removed, not silently returned


def test_corrupt_pickle_invalidated(cache, small_cfg):
    path = cache.store(small_cfg, {"x": 1})
    path.write_bytes(b"\x04garbage not a pickle")
    assert cache.load(small_cfg) is None
    assert cache.invalidated == 1
    assert not path.exists()


def test_foreign_payload_invalidated(cache, small_cfg):
    # A well-formed pickle that is not our payload schema (e.g. the truncated
    # artifacts the seed repo shipped with).
    path = cache.path_for(small_cfg)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(pickle.dumps({"workload": "deasna", "policy": "cmt"}))
    assert cache.load(small_cfg) is None
    assert not path.exists()


def test_store_is_atomic_no_tmp_left(cache, small_cfg):
    cache.store(small_cfg, {"x": 1})
    leftovers = list(cache.cache_dir.glob("*.tmp"))
    assert leftovers == []


def test_payload_records_hash_and_config(cache, small_cfg):
    path = cache.store(small_cfg, {"x": 1})
    payload = pickle.loads(path.read_bytes())
    assert payload["config_hash"] == config_hash(small_cfg)
    assert payload["config"] == small_cfg.to_dict()


# --- counter accounting across sweeps ---------------------------------------

from edm.sweep import default_grid, sweep  # noqa: E402

TINY = dict(epochs=8, requests_per_epoch=128, chunks_per_osd=8)


def counter_grid():
    return default_grid(
        workloads=("deasna",),
        osds=(4,),
        policies=("baseline", "cdf", "hdf", "cmt"),
        seeds=(1,),
        **TINY,
    )


def test_cold_sweep_counts_only_misses(tmp_path):
    res = sweep(counter_grid(), cache_dir=tmp_path, workers=1)
    assert (res.cache_hits, res.cache_misses, res.cache_invalidated) == (0, 4, 0)
    assert res.simulated == 4


def test_warm_sweep_counts_only_hits(tmp_path):
    grid = counter_grid()
    sweep(grid, cache_dir=tmp_path, workers=1)
    res = sweep(grid, cache_dir=tmp_path, workers=1)
    assert (res.cache_hits, res.cache_misses, res.cache_invalidated) == (4, 0, 0)
    assert res.simulated == 0


def test_mixed_sweep_counts_hits_and_misses(tmp_path):
    grid = counter_grid()
    sweep(grid[:2], cache_dir=tmp_path, workers=1)  # pre-warm half
    res = sweep(grid, cache_dir=tmp_path, workers=1)
    assert (res.cache_hits, res.cache_misses) == (2, 2)
    assert res.simulated == 2


def test_forced_sweep_probes_nothing(tmp_path):
    grid = counter_grid()
    sweep(grid, cache_dir=tmp_path, workers=1)
    res = sweep(grid, cache_dir=tmp_path, workers=1, force=True)
    # force skips the cache probe entirely: no hits, no misses, all simulated.
    assert (res.cache_hits, res.cache_misses, res.cache_invalidated) == (0, 0, 0)
    assert res.simulated == len(grid)


def test_no_cache_sweep_reports_pending_as_misses(tmp_path):
    grid = counter_grid()[:3]
    res = sweep(grid, cache_dir=tmp_path, workers=1, use_cache=False)
    assert (res.cache_hits, res.cache_misses, res.cache_invalidated) == (0, 3, 0)
    assert res.simulated == 3


def test_corrupt_entry_counts_invalidated_and_resimulates(tmp_path):
    grid = counter_grid()
    sweep(grid, cache_dir=tmp_path, workers=1)
    victim = ResultCache(tmp_path).path_for(grid[0])
    victim.write_bytes(b"\x00 not a pickle")
    res = sweep(grid, cache_dir=tmp_path, workers=1)
    assert (res.cache_hits, res.cache_misses, res.cache_invalidated) == (3, 1, 1)
    assert res.simulated == 1
    # The corrupt entry was rewritten with a good result.
    assert ResultCache(tmp_path).load(grid[0]) == res.results[0]
