"""Cache layer: warm hits are exact, stale/corrupt pickles are invalidated."""

import pickle

import pytest

from edm.cache import ResultCache
from edm.config import SimConfig, config_hash
from edm.engine.core import simulate


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def test_miss_then_store_then_exact_hit(cache, small_cfg):
    assert cache.load(small_cfg) is None
    metrics = simulate(small_cfg)
    cache.store(small_cfg, metrics)
    assert cache.load(small_cfg) == metrics
    assert cache.hits == 1


def test_filename_matches_historical_key_format(cache):
    cfg = SimConfig(workload="lair62b", num_osds=20, policy="cmt", skew=0.02, seed=54321)
    assert cache.path_for(cfg).name == "lair62b-20osd-cmt-s0.02-r54321.pkl"


def test_config_hash_mismatch_invalidates_stale_pickle(cache, small_cfg):
    metrics = simulate(small_cfg)
    path = cache.store(small_cfg, metrics)
    # Same cache filename, different engine knobs -> same path, different hash.
    changed = SimConfig(**{**small_cfg.to_dict(), "heat_alpha": 0.9})
    assert cache.path_for(changed) == path
    assert cache.load(changed) is None
    assert cache.invalidated == 1
    assert not path.exists()  # stale pickle removed, not silently returned


def test_corrupt_pickle_invalidated(cache, small_cfg):
    path = cache.store(small_cfg, {"x": 1})
    path.write_bytes(b"\x04garbage not a pickle")
    assert cache.load(small_cfg) is None
    assert cache.invalidated == 1
    assert not path.exists()


def test_foreign_payload_invalidated(cache, small_cfg):
    # A well-formed pickle that is not our payload schema (e.g. the truncated
    # artifacts the seed repo shipped with).
    path = cache.path_for(small_cfg)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(pickle.dumps({"workload": "deasna", "policy": "cmt"}))
    assert cache.load(small_cfg) is None
    assert not path.exists()


def test_store_is_atomic_no_tmp_left(cache, small_cfg):
    cache.store(small_cfg, {"x": 1})
    leftovers = list(cache.cache_dir.glob("*.tmp"))
    assert leftovers == []


def test_payload_records_hash_and_config(cache, small_cfg):
    path = cache.store(small_cfg, {"x": 1})
    payload = pickle.loads(path.read_bytes())
    assert payload["config_hash"] == config_hash(small_cfg)
    assert payload["config"] == small_cfg.to_dict()
