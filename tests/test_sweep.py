"""Sweep runner: grid construction, cache integration, worker-count invariance."""

import pytest

from edm.sweep import SweepResult, default_grid, sweep

TINY = dict(epochs=16, requests_per_epoch=256, chunks_per_osd=8)


def tiny_grid():
    return default_grid(
        workloads=("deasna", "lair62"),
        osds=(4,),
        policies=("baseline", "cmt"),
        seeds=(1,),
        **TINY,
    )


def test_default_grid_is_the_paper_grid():
    grid = default_grid()
    assert len(grid) == 64  # 4 workloads x 2 cluster sizes x 4 policies x 2 seeds
    names = {c.cache_name() for c in grid}
    assert "deasna-16osd-cmt-s0.02-r12345" in names
    assert "lair62b-20osd-baseline-s0.02-r54321" in names
    assert len(names) == 64


def test_cold_then_warm_identical_results(tmp_path):
    grid = tiny_grid()
    cold = sweep(grid, cache_dir=tmp_path, workers=1)
    assert cold.simulated == len(grid)
    assert cold.cache_hits == 0
    warm = sweep(grid, cache_dir=tmp_path, workers=1)
    assert warm.simulated == 0
    assert warm.cache_hits == len(grid)
    assert warm.results == cold.results


def test_force_resimulates(tmp_path):
    grid = tiny_grid()
    sweep(grid, cache_dir=tmp_path, workers=1)
    forced = sweep(grid, cache_dir=tmp_path, workers=1, force=True)
    assert forced.simulated == len(grid)
    assert forced.cache_hits == 0


def test_parallel_matches_inline(tmp_path):
    grid = tiny_grid()
    inline = sweep(grid, cache_dir=tmp_path / "a", workers=1)
    pooled = sweep(grid, cache_dir=tmp_path / "b", workers=2)
    assert inline.results == pooled.results


def test_no_cache_mode(tmp_path):
    grid = tiny_grid()[:2]
    res = sweep(grid, cache_dir=tmp_path, workers=1, use_cache=False)
    assert res.simulated == 2
    assert list(tmp_path.iterdir()) == []


def test_sweep_result_rejects_incomplete_results(tmp_path):
    grid = tiny_grid()[:1]
    ok = sweep(grid, cache_dir=tmp_path, workers=1)
    with pytest.raises(TypeError, match="non-dict entries at indices \\[1\\]"):
        SweepResult(
            results=[ok.results[0], None],
            cache_hits=0,
            cache_misses=2,
            cache_invalidated=0,
            simulated=2,
        )


def test_results_in_config_order(tmp_path):
    grid = tiny_grid()
    res = sweep(grid, cache_dir=tmp_path, workers=1)
    for cfg, metrics in zip(grid, res.results):
        assert metrics["workload"] == cfg.workload
        assert metrics["policy"] == cfg.policy
        assert metrics["num_osds"] == cfg.num_osds
