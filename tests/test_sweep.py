"""Sweep runner: grid construction, cache integration, worker-count invariance,
incremental cache population under failure, and the progress line."""

import io

import pytest

from edm.cache import ResultCache
from edm.config import SimConfig
from edm.obs import ProgressLine
from edm.sweep import SUMMARY_KEYS, SweepResult, default_grid, sweep

TINY = dict(epochs=16, requests_per_epoch=256, chunks_per_osd=8)


def tiny_grid():
    return default_grid(
        workloads=("deasna", "lair62"),
        osds=(4,),
        policies=("baseline", "cmt"),
        seeds=(1,),
        **TINY,
    )


def test_default_grid_covers_the_policy_zoo():
    grid = default_grid()
    assert len(grid) == 96  # 4 workloads x 2 cluster sizes x 6 policies x 2 seeds
    names = {c.cache_name() for c in grid}
    assert "deasna-16osd-cmt-s0.02-r12345" in names
    assert "lair62b-20osd-baseline-s0.02-r54321" in names
    assert "deasna-16osd-pswl-s0.02-r12345" in names
    assert "lair62b-20osd-consolidate-s0.02-r54321" in names
    assert len(names) == 96


def test_paper_grid_recoverable_by_policy_restriction():
    # edm.bench pins the grid to the paper's four policies; that restriction
    # must keep reproducing the paper's 64-config grid exactly.
    grid = default_grid(policies=("baseline", "cdf", "hdf", "cmt"))
    assert len(grid) == 64  # 4 workloads x 2 cluster sizes x 4 policies x 2 seeds


def test_cold_then_warm_identical_results(tmp_path):
    grid = tiny_grid()
    cold = sweep(grid, cache_dir=tmp_path, workers=1)
    assert cold.simulated == len(grid)
    assert cold.cache_hits == 0
    warm = sweep(grid, cache_dir=tmp_path, workers=1)
    assert warm.simulated == 0
    assert warm.cache_hits == len(grid)
    assert warm.results == cold.results


def test_force_resimulates(tmp_path):
    grid = tiny_grid()
    sweep(grid, cache_dir=tmp_path, workers=1)
    forced = sweep(grid, cache_dir=tmp_path, workers=1, force=True)
    assert forced.simulated == len(grid)
    assert forced.cache_hits == 0


def test_parallel_matches_inline(tmp_path):
    grid = tiny_grid()
    inline = sweep(grid, cache_dir=tmp_path / "a", workers=1)
    pooled = sweep(grid, cache_dir=tmp_path / "b", workers=2)
    assert inline.results == pooled.results


def test_no_cache_mode(tmp_path):
    grid = tiny_grid()[:2]
    res = sweep(grid, cache_dir=tmp_path, workers=1, use_cache=False)
    assert res.simulated == 2
    assert list(tmp_path.iterdir()) == []


def test_sweep_result_rejects_incomplete_results(tmp_path):
    grid = tiny_grid()[:1]
    ok = sweep(grid, cache_dir=tmp_path, workers=1)
    with pytest.raises(TypeError, match="non-dict entries at indices \\[1\\]"):
        SweepResult(
            records=[ok.records[0], None],
            cache_hits=0,
            cache_misses=2,
            cache_invalidated=0,
            simulated=2,
        )


def test_results_in_config_order(tmp_path):
    grid = tiny_grid()
    res = sweep(grid, cache_dir=tmp_path, workers=1)
    for cfg, metrics in zip(grid, res.results):
        assert metrics["workload"] == cfg.workload
        assert metrics["policy"] == cfg.policy
        assert metrics["num_osds"] == cfg.num_osds


def poisoned_config(seed=999) -> SimConfig:
    """A config that validates in the parent but blows up in the worker.

    Bypassing the frozen dataclass lets the bad workload name survive until
    ``SimConfig.from_dict`` re-validates it inside the worker process --
    simulating a config whose simulation dies mid-sweep.
    """
    cfg = SimConfig(
        workload="deasna", num_osds=4, policy="baseline", seed=seed, **TINY
    )
    object.__setattr__(cfg, "workload", "poisoned")
    return cfg


def test_interrupted_pool_sweep_keeps_completed_work(tmp_path):
    # Satellite fix: results are cached AS THEY LAND, so a poisoned config
    # does not throw away the completed configs' work.
    good = tiny_grid()
    grid = [*good, poisoned_config()]
    with pytest.raises(ValueError, match="unknown workload 'poisoned'"):
        sweep(grid, cache_dir=tmp_path, workers=2)
    # Every good config's result survived into the cache...
    probe = ResultCache(tmp_path)
    assert all(probe.load(cfg) is not None for cfg in good)
    # ...so re-running the good grid is a pure warm read.
    warm = sweep(good, cache_dir=tmp_path, workers=2)
    assert warm.simulated == 0
    assert warm.cache_hits == len(good)


def test_interrupted_inline_sweep_keeps_earlier_work(tmp_path):
    first, last = tiny_grid()[:2]
    grid = [first, poisoned_config(), last]
    with pytest.raises(ValueError, match="unknown workload 'poisoned'"):
        sweep(grid, cache_dir=tmp_path, workers=1)
    probe = ResultCache(tmp_path)
    assert probe.load(first) is not None  # completed before the poison
    assert probe.load(last) is None       # never reached (inline raises at once)


def test_progress_line_renders_and_closes():
    stream = io.StringIO()
    meter = ProgressLine(total=2, enabled=True, stream=stream, min_interval=0.0)
    meter.advance(1000)
    meter.advance(1000)
    meter.close()
    out = stream.getvalue()
    assert "[1/2]" in out and "[2/2]" in out
    assert "req/s" in out and "eta" in out
    assert out.endswith("\n")


def test_progress_line_disabled_writes_nothing():
    stream = io.StringIO()
    meter = ProgressLine(total=5, enabled=False, stream=stream)
    meter.advance(100)
    meter.close()
    assert stream.getvalue() == ""


def test_sweep_progress_smoke(tmp_path, capsys):
    grid = tiny_grid()[:2]
    res = sweep(grid, cache_dir=tmp_path, workers=1, progress=True)
    assert res.simulated == 2
    err = capsys.readouterr().err
    assert f"[{len(grid)}/{len(grid)}]" in err


# ---------------------------------------------------------------------------
# Streaming transport: workers spill to cache, parent holds slim summaries


def test_stream_requires_cache(tmp_path):
    with pytest.raises(ValueError, match="use_cache"):
        sweep(tiny_grid()[:1], cache_dir=tmp_path, workers=1, use_cache=False, stream=True)


def test_stream_summaries_match_eager_results(tmp_path):
    grid = tiny_grid()
    eager = sweep(grid, cache_dir=tmp_path / "a", workers=1)
    streamed = sweep(grid, cache_dir=tmp_path / "b", workers=1, stream=True)
    assert streamed.streamed and streamed.simulated == len(grid)
    # The legacy accessor refuses to hand out summaries as if they were
    # full metrics; .records is the honest surface for what crossed the pool.
    with pytest.raises(RuntimeError, match="streamed sweep.*iter_results"):
        streamed.results
    for cfg, slim, full in zip(grid, streamed.records, eager.results):
        assert slim["streamed"] is True
        assert slim["config"] == cfg.cache_name()
        for key in SUMMARY_KEYS:
            assert slim[key] == full[key]
        assert "per_osd_wear" not in slim  # heavy payload never crosses the pool
    # Lazy reloads return the full metrics, in input order, bit-equal to the
    # eager run (both caches were populated by identical simulations).
    assert list(streamed.iter_results()) == eager.results
    assert streamed.total_requests == eager.total_requests


def test_stream_warm_probe_summarizes_cache_hits(tmp_path):
    grid = tiny_grid()
    sweep(grid, cache_dir=tmp_path, workers=1)  # populate eagerly
    warm = sweep(grid, cache_dir=tmp_path, workers=1, stream=True)
    assert warm.cache_hits == len(grid) and warm.simulated == 0
    assert all(r.get("streamed") for r in warm.records)


def test_stream_interrupted_sweep_resumes_from_worker_spills(tmp_path):
    # Workers store metrics themselves, so a poisoned config mid-pool loses
    # nothing and the re-run is a pure warm probe.
    good = tiny_grid()
    grid = [*good, poisoned_config()]
    with pytest.raises(ValueError, match="unknown workload 'poisoned'"):
        sweep(grid, cache_dir=tmp_path, workers=2, stream=True)
    probe = ResultCache(tmp_path)
    assert all(probe.load(cfg) is not None for cfg in good)
    resumed = sweep(good, cache_dir=tmp_path, workers=2, stream=True)
    assert resumed.simulated == 0 and resumed.cache_hits == len(good)


def test_stream_matches_eager_across_pool_boundary(tmp_path):
    grid = tiny_grid()
    pooled = sweep(grid, cache_dir=tmp_path / "a", workers=2, stream=True)
    inline = sweep(grid, cache_dir=tmp_path / "b", workers=1)
    assert list(pooled.iter_results()) == inline.results


def test_stream_iter_results_raises_when_cache_evicted(tmp_path):
    grid = tiny_grid()[:1]
    res = sweep(grid, cache_dir=tmp_path, workers=1, stream=True)
    for p in tmp_path.rglob("*"):
        if p.is_file():
            p.unlink()
    with pytest.raises(RuntimeError, match="missing from"):
        list(res.iter_results())


def test_stream_smoke_large_grid_parent_holds_only_summaries(tmp_path):
    # The 512-config memory-bound smoke: every parent-side record is a slim
    # summary (a handful of scalars), so the parent's footprint scales with
    # the grid count alone, never with per-config metrics size.
    grid = default_grid(
        workloads=("deasna",),
        osds=(4,),
        policies=("baseline",),
        seeds=range(512),
        epochs=2,
        requests_per_epoch=64,
        chunks_per_osd=4,
    )
    assert len(grid) == 512
    res = sweep(grid, cache_dir=tmp_path, workers=1, stream=True)
    assert res.simulated == 512
    slim_keys = {"config", "config_hash", "streamed", *SUMMARY_KEYS}
    assert all(set(r) == slim_keys for r in res.records)
    # Spot-check one lazy reload round-trips to full metrics.
    full = next(res.iter_results())
    assert "per_osd_wear" in full and full["total_requests"] == 2 * 64


def test_sweep_timings_attached_when_traced(tmp_path):
    from edm.obs import Tracer

    grid = tiny_grid()[:2]
    untraced = sweep(grid, cache_dir=tmp_path / "a", workers=1)
    assert untraced.timings is None
    traced = sweep(grid, cache_dir=tmp_path / "b", workers=1, tracer=Tracer())
    assert traced.timings is not None
    assert "sweep.cache_probe" in traced.timings


def test_worker_processes_inherit_parent_log_level(tmp_path, capfd):
    """Satellite fix: -v/--log-level must reach the worker processes.  Each
    worker reconfigures logging from the level the parent captured at task
    build time, so DEBUG shows per-config worker lines and WARNING stays
    silent -- under spawn as well as fork."""
    import logging

    from edm.obs import configure_logging

    grid = tiny_grid()[:2]
    try:
        configure_logging(logging.DEBUG)
        sweep(grid, cache_dir=tmp_path / "dbg", workers=2)
        assert "worker pid" in capfd.readouterr().err
        configure_logging(logging.WARNING)
        sweep(grid, cache_dir=tmp_path / "quiet", workers=2)
        assert "worker pid" not in capfd.readouterr().err
    finally:
        configure_logging(logging.WARNING)
