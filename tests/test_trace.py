"""Span tracer: aggregation, nesting, decorator, null overhead, engine coverage."""

import time

import pytest

from conftest import cfg_factory
from edm.engine.core import simulate
from edm.obs import NULL_TRACER, NullTracer, Tracer


def test_span_aggregates_count_and_total():
    tr = Tracer()
    for _ in range(3):
        with tr.span("work"):
            pass
    summary = tr.summary()
    assert summary["work"]["count"] == 3
    assert summary["work"]["total_s"] >= 0.0
    assert summary["work"]["mean_s"] == pytest.approx(summary["work"]["total_s"] / 3)


def test_nested_spans_get_dotted_paths():
    tr = Tracer()
    with tr.span("outer"):
        with tr.span("inner"):
            pass
        with tr.span("inner"):
            pass
    summary = tr.summary()
    assert set(summary) == {"outer", "outer.inner"}
    assert summary["outer.inner"]["count"] == 2
    # The parent's total covers its children (monotonic clock, same stack).
    assert summary["outer"]["total_s"] >= summary["outer.inner"]["total_s"]


def test_span_times_with_monotonic_clock():
    tr = Tracer()
    with tr.span("sleep"):
        time.sleep(0.01)
    assert tr.summary()["sleep"]["total_s"] >= 0.009


def test_decorator_wraps_and_times():
    tr = Tracer()

    @tr.wrap("compute")
    def f(x):
        return x + 1

    assert f(1) == 2
    assert f(2) == 3
    assert tr.summary()["compute"]["count"] == 2


def test_decorator_default_name_is_qualname():
    tr = Tracer()

    @tr.wrap()
    def helper():
        return 42

    helper()
    assert any("helper" in k for k in tr.summary())


def test_total_seconds_sums_only_top_level():
    tr = Tracer()
    with tr.span("a"):
        with tr.span("b"):
            pass
    with tr.span("c"):
        pass
    total = tr.total_seconds()
    assert total == pytest.approx(
        tr.summary()["a"]["total_s"] + tr.summary()["c"]["total_s"]
    )


def test_reset_clears_aggregation():
    tr = Tracer()
    with tr.span("x"):
        pass
    tr.reset()
    assert tr.summary() == {}


def test_null_tracer_is_disabled_and_empty():
    assert NULL_TRACER.enabled is False
    with NULL_TRACER.span("anything"):
        pass
    assert NULL_TRACER.summary() == {}

    @NULL_TRACER.wrap("noop")
    def f():
        return 7

    assert f() == 7
    assert NULL_TRACER.summary() == {}
    assert isinstance(NULL_TRACER, NullTracer)


def test_exception_inside_span_still_recorded():
    tr = Tracer()
    with pytest.raises(RuntimeError):
        with tr.span("boom"):
            raise RuntimeError("x")
    assert tr.summary()["boom"]["count"] == 1
    assert tr._stack == []  # stack unwound cleanly


def test_untraced_simulate_has_no_timings_key(small_cfg):
    assert "timings" not in simulate(small_cfg)


def test_traced_simulate_metrics_identical_minus_timings(small_cfg):
    plain = simulate(small_cfg)
    traced = simulate(small_cfg, tracer=Tracer())
    timings = traced.pop("timings")
    assert traced == plain
    assert set(timings) == {
        "simulate.setup",
        "simulate.workload_gen",
        "simulate.kernel",
        "simulate.observers",
        "simulate.migration",
        "simulate.finalize",
    }
    assert timings["simulate.workload_gen"]["count"] == small_cfg.epochs
    assert timings["simulate.kernel"]["count"] == small_cfg.epochs
    assert (
        timings["simulate.migration"]["count"]
        == small_cfg.epochs // small_cfg.migrate_interval
    )


def test_spans_cover_at_least_80pct_of_simulate_wall_time():
    # Acceptance gate: with tracing on, the phase spans account for >= 80%
    # of simulate()'s wall time (nothing significant runs untimed).
    cfg = cfg_factory(num_osds=8, epochs=128, requests_per_epoch=4096, chunks_per_osd=16)
    tr = Tracer()
    t0 = time.perf_counter()
    metrics = simulate(cfg, tracer=tr)
    wall = time.perf_counter() - t0
    span_total = sum(v["total_s"] for v in metrics["timings"].values())
    assert span_total >= 0.8 * wall
    assert span_total <= wall * 1.05  # sanity: spans can't exceed the wall
