"""SimConfig validation and policy alias resolution."""

import pytest

from edm.config import SimConfig, config_hash
from edm.policies import get_policy, resolve_policy
from edm.policies.cmt import CmtPolicy


def test_edm_alias_canonicalized_everywhere():
    cfg = SimConfig(policy="edm")
    assert cfg.policy == "cmt"
    assert config_hash(cfg) == config_hash(SimConfig(policy="cmt"))
    assert cfg.cache_name() == SimConfig(policy="cmt").cache_name()
    assert resolve_policy("edm") == "cmt"
    assert resolve_policy("cmt") == "cmt"
    assert isinstance(get_policy("edm"), CmtPolicy)


def test_unknown_policy_rejected_by_resolver_and_config():
    with pytest.raises(ValueError, match="unknown policy 'bogus'"):
        resolve_policy("bogus")
    with pytest.raises(ValueError, match="unknown policy"):
        SimConfig(policy="bogus")


@pytest.mark.parametrize(
    "field,value,message",
    [
        ("heat_alpha", 0.0, "heat_alpha must be in \\(0, 1\\]"),
        ("heat_alpha", 1.5, "heat_alpha must be in \\(0, 1\\]"),
        ("load_alpha", -0.1, "load_alpha must be in \\(0, 1\\]"),
        ("load_alpha", 2.0, "load_alpha must be in \\(0, 1\\]"),
        ("skew", -0.5, "skew must be >= 0"),
        ("migrate_interval", 0, "migrate_interval must be >= 1"),
        ("max_migrations_per_interval", 0, "max_migrations_per_interval must be >= 1"),
        ("max_migrations_per_interval", -3, "max_migrations_per_interval must be >= 1"),
    ],
)
def test_validation_gaps_rejected(field, value, message):
    with pytest.raises(ValueError, match=message):
        SimConfig(**{field: value})


def test_boundary_values_accepted():
    cfg = SimConfig(heat_alpha=1.0, load_alpha=1.0, skew=0.0, migrate_interval=1,
                    max_migrations_per_interval=1)
    assert cfg.heat_alpha == 1.0 and cfg.skew == 0.0
