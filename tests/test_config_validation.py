"""SimConfig validation and policy alias resolution."""

import pytest

from edm.config import SimConfig, config_hash
from edm.policies import get_policy, resolve_policy
from edm.policies.cmt import CmtPolicy


def test_edm_alias_canonicalized_everywhere():
    cfg = SimConfig(policy="edm")
    assert cfg.policy == "cmt"
    assert config_hash(cfg) == config_hash(SimConfig(policy="cmt"))
    assert cfg.cache_name() == SimConfig(policy="cmt").cache_name()
    assert resolve_policy("edm") == "cmt"
    assert resolve_policy("cmt") == "cmt"
    assert isinstance(get_policy("edm"), CmtPolicy)


def test_unknown_policy_rejected_by_resolver_and_config():
    with pytest.raises(ValueError, match="unknown policy 'bogus'"):
        resolve_policy("bogus")
    with pytest.raises(ValueError, match="unknown policy"):
        SimConfig(policy="bogus")


@pytest.mark.parametrize(
    "field,value,message",
    [
        ("heat_alpha", 0.0, "heat_alpha must be in \\(0, 1\\]"),
        ("heat_alpha", 1.5, "heat_alpha must be in \\(0, 1\\]"),
        ("load_alpha", -0.1, "load_alpha must be in \\(0, 1\\]"),
        ("load_alpha", 2.0, "load_alpha must be in \\(0, 1\\]"),
        ("skew", -0.5, "skew must be >= 0"),
        ("migrate_interval", 0, "migrate_interval must be >= 1"),
        ("max_migrations_per_interval", 0, "max_migrations_per_interval must be >= 1"),
        ("max_migrations_per_interval", -3, "max_migrations_per_interval must be >= 1"),
    ],
)
def test_validation_gaps_rejected(field, value, message):
    with pytest.raises(ValueError, match=message):
        SimConfig(**{field: value})


def test_boundary_values_accepted():
    cfg = SimConfig(heat_alpha=1.0, load_alpha=1.0, skew=0.0, migrate_interval=1,
                    max_migrations_per_interval=1)
    assert cfg.heat_alpha == 1.0 and cfg.skew == 0.0


@pytest.mark.parametrize("epochs", [0, -1])
def test_zero_epoch_run_rejected_with_explanation(epochs):
    """Satellite fix: epochs=0 used to slip through to a run with no load
    vector to finalize; now it is rejected up front with a reason."""
    with pytest.raises(ValueError, match="epochs must be >= 1.*no load vector"):
        SimConfig(epochs=epochs)


def test_faults_spec_canonicalized_on_config():
    cfg = SimConfig(num_osds=8, faults="slow:2@4x0.50;fail:1@2")
    # Canonical order is (epoch, kind, osd); factors render minimally.
    assert cfg.faults == "fail:1@2;slow:2@4x0.5"
    same = SimConfig(num_osds=8, faults="fail:1@2;slow:2@4x0.5")
    assert config_hash(cfg) == config_hash(same)
    assert cfg.cache_name() == same.cache_name()


def test_faults_do_not_change_healthy_cache_name():
    healthy = SimConfig(num_osds=8)
    faulted = SimConfig(num_osds=8, faults="fail:1@2")
    assert healthy.faults == ""
    assert "-f" not in healthy.cache_name().split("-r")[1]
    assert faulted.cache_name() != healthy.cache_name()
    assert faulted.cache_name().startswith(healthy.cache_name())


def test_bad_fault_specs_rejected():
    with pytest.raises(ValueError, match="bad fault event"):
        SimConfig(num_osds=8, faults="explode:1@2")
    with pytest.raises(ValueError, match="OSD 9 out of range"):
        SimConfig(num_osds=8, faults="fail:9@2")
