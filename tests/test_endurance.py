"""Endurance model: spec parsing, lifetime tracking, CMT steering, wear-out
failures through the faults runtime, and config/CLI/cache integration."""

import json

import numpy as np
import pytest

from conftest import cfg_factory, make_state
from edm.cli import main as cli_main
from edm.config import config_hash, rng_seed_sequence
from edm.endurance import EnduranceModel, EnduranceTracker, wearout_risk
from edm.engine.core import simulate
from edm.faults import FaultEvent
from edm.obs import read_run_log
from edm.policies import get_policy
from edm.telemetry import TimeSeriesRecorder

# --- spec parsing / canonicalization -----------------------------------------


def test_parse_uniform_spec():
    model = EnduranceModel.parse("pe:5000", num_osds=4)
    assert model
    assert model.spec == "pe:5000"
    assert model.ratings(4).tolist() == [5000.0] * 4


def test_parse_canonicalizes_band_order():
    model = EnduranceModel.parse("pe:10000@4-7,3000@0-3", num_osds=8)
    assert model.spec == "pe:3000@0-3,10000@4-7"
    assert EnduranceModel.parse(model.spec, num_osds=8) == model
    assert model.ratings(8).tolist() == [3000.0] * 4 + [10000.0] * 4


def test_parse_default_band_sorts_first_and_single_osd_band_renders():
    model = EnduranceModel.parse("pe:300@2,5000", num_osds=4)
    assert model.spec == "pe:5000,300@2"
    assert model.ratings(4).tolist() == [5000.0, 5000.0, 300.0, 5000.0]


def test_empty_and_none_mean_unrated():
    for spec in ("", "   ", "none"):
        model = EnduranceModel.parse(spec)
        assert not model
        assert model.spec == ""
    assert np.isinf(EnduranceModel.parse("").ratings(4)).all()


@pytest.mark.parametrize(
    "spec,message",
    [
        ("5000", "bad endurance spec"),  # missing pe: prefix
        ("pe:", "no rating bands"),
        ("pe:abc", "bad endurance band"),
        ("pe:5000@1-2-3", "bad endurance band"),
        ("pe:0", "cycles must be > 0"),
        ("pe:5000,6000", "at most one default"),
        ("pe:5000@3-1", "range is inverted"),
        ("pe:3000@0-2,4000@2-3", "more than one band"),
    ],
)
def test_invalid_specs_rejected(spec, message):
    with pytest.raises(ValueError, match=message):
        EnduranceModel.parse(spec, num_osds=4)


def test_out_of_range_and_coverage_need_num_osds():
    with pytest.raises(ValueError, match="out of range"):
        EnduranceModel.parse("pe:5000@0-7", num_osds=4)
    with pytest.raises(ValueError, match="have no\\s+rating"):
        EnduranceModel.parse("pe:5000@0-1", num_osds=4)
    # A default band covers the gap; so does a full ranged cover.
    assert EnduranceModel.parse("pe:9000,5000@0-1", num_osds=4)
    assert EnduranceModel.parse("pe:5000@0-1,7000@2-3", num_osds=4)


# --- config integration -------------------------------------------------------


def test_config_canonicalizes_endurance_spec(make_cfg):
    cfg = make_cfg(num_osds=8, endurance="pe:10000@4-7,3000@0-3")
    assert cfg.endurance == "pe:3000@0-3,10000@4-7"
    respelled = make_cfg(num_osds=8, endurance="pe:3000@0-3,10000@4-7")
    assert config_hash(cfg) == config_hash(respelled)


def test_config_rejects_bad_endurance_knobs(make_cfg):
    with pytest.raises(ValueError, match="wear_rate_alpha"):
        make_cfg(wear_rate_alpha=0.0)
    with pytest.raises(ValueError, match="endurance_weight"):
        make_cfg(endurance_weight=-1.0)
    with pytest.raises(ValueError, match="out of range"):
        make_cfg(endurance="pe:5000@0-99")


def test_cache_name_endurance_suffix(make_cfg):
    plain = make_cfg()
    rated = make_cfg(endurance="pe:5000")
    assert plain.cache_name() == "deasna-4osd-cmt-s0.02-r12345"
    assert rated.cache_name().startswith(plain.cache_name() + "-e")
    assert len(rated.cache_name()) == len(plain.cache_name()) + 10
    # Different models get different suffixes; faults suffix comes first.
    other = make_cfg(endurance="pe:9000")
    assert other.cache_name() != rated.cache_name()
    both = make_cfg(num_osds=8, faults="fail:1@8", endurance="pe:5000")
    stem = "deasna-8osd-cmt-s0.02-r12345"
    assert both.cache_name().startswith(stem + "-f")
    assert both.cache_name().count("-e") == 1


def test_endurance_excluded_from_seed_material(make_cfg):
    """Rated runs replay the exact same traffic as their unrated twin."""
    unrated = make_cfg(num_osds=8, seed=7)
    rated = make_cfg(num_osds=8, seed=7, endurance="pe:900",
                     wear_rate_alpha=0.5, endurance_weight=2.0)
    assert rng_seed_sequence(unrated).entropy == rng_seed_sequence(rated).entropy
    m_u, m_r = simulate(unrated), simulate(rated)
    assert m_r["total_requests"] == m_u["total_requests"]


# --- state lifetime math ------------------------------------------------------


def test_remaining_life_and_prediction(small_cfg):
    state = make_state(small_cfg, wear=[100.0, 500.0, 600.0, 0.0])
    state.osd_rated_life = np.array([500.0, 500.0, 500.0, np.inf])
    state.osd_wear_rate = np.array([50.0, 0.0, 50.0, 50.0])
    rem = state.remaining_life()
    assert rem.tolist() == [400.0, 0.0, 0.0, np.inf]  # clamped at zero
    pred = state.predicted_wearout_epochs()
    assert pred[0] == pytest.approx(8.0)
    assert np.isinf(pred[1])  # no measured write rate -> never
    assert pred[2] == 0.0
    assert np.isinf(pred[3])  # unrated -> never
    risk = wearout_risk(state)
    assert risk[0] == pytest.approx(1.0 / 9.0)
    assert risk[1] == 0.0
    assert risk[2] == 1.0
    assert (risk >= 0).all() and (risk <= 1).all()


def test_tracker_attach_and_rate_ewma(small_cfg):
    cfg = cfg_factory(endurance="pe:5000", wear_rate_alpha=0.5)
    state = make_state(cfg)
    tracker = EnduranceTracker(EnduranceModel.parse(cfg.endurance, 4), cfg)
    tracker.attach(state)
    assert state.osd_rated_life.tolist() == [5000.0] * 4
    state.osd_wear += np.array([10.0, 0.0, 20.0, 0.0])
    tracker.update_rate(state)
    assert state.osd_wear_rate.tolist() == [5.0, 0.0, 10.0, 0.0]
    state.osd_wear += 10.0
    tracker.update_rate(state)
    assert state.osd_wear_rate.tolist() == [7.5, 5.0, 10.0, 5.0]


def test_tracker_fails_worn_osds_in_id_order(small_cfg):
    cfg = cfg_factory(endurance="pe:1000,500@1,200@3")
    state = make_state(cfg, wear=[100.0, 600.0, 100.0, 300.0])
    tracker = EnduranceTracker(EnduranceModel.parse(cfg.endurance, 4), cfg)
    tracker.attach(state)
    events = tracker.step(state, epoch=9)
    assert [ev.render() for ev in events] == ["wearout:1@9", "wearout:3@9"]
    assert state.osd_alive.tolist() == [True, False, True, False]
    assert state.osd_capacity[1] == state.osd_capacity[3] == 0.0
    assert state.degraded
    # Dead OSDs are never re-failed on later steps.
    assert tracker.step(state, epoch=10) == []


def test_last_survivor_guard_keeps_most_headroom(small_cfg):
    cfg = cfg_factory(endurance="pe:100")
    # Everyone past the rating at once: the least-overdrawn OSD (2) survives.
    state = make_state(cfg, wear=[250.0, 300.0, 120.0, 180.0])
    tracker = EnduranceTracker(EnduranceModel.parse(cfg.endurance, 4), cfg)
    tracker.attach(state)
    events = tracker.step(state, epoch=3)
    assert sorted(ev.osd for ev in events) == [0, 1, 3]
    assert state.osd_alive.tolist() == [False, False, True, False]


def test_wearout_event_renders_like_fail():
    assert FaultEvent(kind="wearout", osd=2, epoch=5).render() == "wearout:2@5"


# --- CMT steering (acceptance: the wear-out term changes the destination) -----


def test_cmt_steers_away_from_near_death_osd():
    """Equal wear, OSD 0 slightly less loaded but about to die: the unrated
    score picks 0, the endurance-aware score picks the healthy OSD 1."""
    unrated = cfg_factory()
    rated = cfg_factory(endurance="pe:5000")
    policy = get_policy("cmt")
    candidates = np.array([0, 1])
    proj_load = np.array([10.0, 10.5, 12.0, 12.0])

    def fresh_state(cfg):
        state = make_state(cfg, wear=[500.0] * 4)
        state.osd_rated_life = np.array([600.0, 1e9, 1e9, 1e9])
        state.osd_wear_rate = np.full(4, 50.0)  # OSD 0 dies in ~2 epochs
        return state

    assert policy.pick_destination(candidates, proj_load, fresh_state(unrated), unrated) == 0
    assert policy.pick_destination(candidates, proj_load, fresh_state(rated), rated) == 1
    # endurance_weight=0 disables the term even on a rated config.
    muted = cfg_factory(endurance="pe:5000", endurance_weight=0.0)
    assert policy.pick_destination(candidates, proj_load, fresh_state(muted), muted) == 0


# --- engine integration -------------------------------------------------------


def rated_cfg(**kw):
    return cfg_factory(num_osds=8, seed=7, **{"endurance": "pe:900", **kw})


def test_rated_run_is_deterministic():
    cfg = rated_cfg()
    assert simulate(cfg) == simulate(cfg)


def test_unrated_config_has_no_endurance_keys(small_cfg):
    metrics = simulate(small_cfg)
    assert not any("wearout" in k or "remaining_life" in k for k in metrics)
    assert "endurance" not in metrics


def test_wearout_fails_and_replaces_through_faults_runtime():
    """Acceptance: a rated OSD reaches its budget, fails at the epoch
    boundary, and its chunks are re-placed by the active policy."""
    cfg = rated_cfg()
    metrics = simulate(cfg)
    assert metrics["endurance"] == "pe:900"
    assert metrics["wearouts_total"] > 0
    assert 0 <= metrics["first_wearout_epoch"] < cfg.epochs
    assert metrics["wearout_replacements_total"] > 0
    assert 1 <= metrics["osds_alive_final"] < cfg.num_osds  # guard held
    assert metrics["osds_alive_final"] == cfg.num_osds - metrics["wearouts_total"]
    assert metrics["remaining_life_min"] >= 0.0
    assert metrics["remaining_life_mean"] >= metrics["remaining_life_min"]
    assert metrics["remaining_life_cov"] >= 0.0


def test_generous_rating_never_wears_out():
    metrics = simulate(rated_cfg(endurance="pe:1000000"))
    assert metrics["wearouts_total"] == 0
    assert metrics["first_wearout_epoch"] == -1
    assert metrics["osds_alive_final"] == 8
    # The prediction still extrapolates a (far-future) first wear-out.
    assert metrics["predicted_first_wearout_epoch"] > metrics["epochs"]


def test_timeseries_lifetime_columns(make_cfg):
    rec = TimeSeriesRecorder(record_every=1)
    cfg = rated_cfg()
    metrics = simulate(cfg, recorders=(rec,))
    s = rec.series
    assert s.meta["endurance"] == "pe:900"
    assert s.remaining_life_min.shape == s.remaining_life_mean.shape == (cfg.epochs,)
    assert np.isfinite(s.remaining_life_min).all()
    assert (s.remaining_life_mean >= s.remaining_life_min).all()
    assert s.remaining_life_min[-1] == pytest.approx(metrics["remaining_life_min"])
    assert s.remaining_life_mean[-1] == pytest.approx(metrics["remaining_life_mean"])
    # Alive column tracks the wear-out cascade.
    assert s.alive[-1] == metrics["osds_alive_final"]
    # Unrated runs record infinite lifetime.
    rec2 = TimeSeriesRecorder(record_every=8)
    simulate(make_cfg(), recorders=(rec2,))
    assert np.isinf(rec2.series.remaining_life_min).all()


# --- CLI + sweep + run log ----------------------------------------------------


def test_cli_run_with_endurance(capsys):
    rc = cli_main(
        ["run", "--workload", "deasna", "--osds", "8", "--policy", "cmt",
         "--seed", "7", "--epochs", "32", "--requests", "512",
         "--endurance", "pe:900"]
    )
    assert rc == 0
    metrics = json.loads(capsys.readouterr().out)
    assert metrics["endurance"] == "pe:900"
    assert metrics["wearouts_total"] > 0


def test_cli_sweep_endurance_axis_and_run_log(tmp_path, capsys):
    log_path = tmp_path / "runs.jsonl"
    rc = cli_main(
        ["sweep", "--workloads", "deasna", "--osds", "8",
         "--policies", "cmt", "--seeds", "7",
         "--endurance", "none;pe:900", "--quick",
         "--workers", "1", "--cache-dir", str(tmp_path / "cache"),
         "--run-log", str(log_path)]
    )
    assert rc == 0
    assert "# 2 configs: 2 simulated" in capsys.readouterr().out
    records = read_run_log(log_path)  # strict: every record schema-validates
    wearouts = [r for r in records if r["event"] == "fault" and r["kind"] == "wearout"]
    assert wearouts
    assert all(r["replaced"] > 0 for r in wearouts)


def test_sweep_cache_distinguishes_endurance_scenarios(tmp_path, capsys):
    common = ["sweep", "--workloads", "deasna", "--osds", "8", "--policies", "cmt",
              "--seeds", "7", "--quick", "--workers", "1",
              "--cache-dir", str(tmp_path / "cache")]
    assert cli_main([*common, "--endurance", "none"]) == 0
    assert "1 simulated" in capsys.readouterr().out
    assert cli_main([*common, "--endurance", "pe:900"]) == 0
    assert "1 simulated" in capsys.readouterr().out
    # Re-running the rated sweep is a pure cache hit.
    assert cli_main([*common, "--endurance", "pe:900"]) == 0
    assert "1 cache hits" in capsys.readouterr().out
