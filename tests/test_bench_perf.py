"""Benchmark-marked perf assertions (skipped in CI via ``-m "not bench"``)."""

import json

import pytest

from edm.bench import bench_single_config, run_bench


def test_bench_kernel_compare_mode(capsys):
    # `edm bench --kernel` (bare) micro-benches every importable backend and
    # cross-checks their metrics; with only numpy present it says so.
    from edm.bench import main as bench_main
    from edm.engine.kernels import numba_available

    assert bench_main(["--quick", "--kernel"]) == 0
    out = capsys.readouterr().out
    assert "kernel numpy" in out
    if numba_available():
        assert "kernel numba" in out and "bit-identical" in out
    else:
        assert "only one backend importable" in out


def test_bench_single_config_reports_backend():
    result = bench_single_config(requests_target=50_000, kernel="numpy")
    assert result["kernel"] == "numpy"
    assert result["requests_simulated"] >= 50_000


@pytest.mark.bench
def test_single_config_throughput_floor():
    result = bench_single_config(requests_target=1_000_000)
    assert result["requests_simulated"] >= 1_000_000
    assert result["requests_per_sec"] >= 100_000


@pytest.mark.bench
def test_full_sweep_cold_under_60s_and_warm_10x(tmp_path):
    report = run_bench(
        out_path=tmp_path / "BENCH_sweep.json", cache_dir=tmp_path / "cache"
    )
    s = report["sweep"]
    assert s["configs"] == 64
    assert s["cold_seconds"] < 60
    assert s["speedup_warm_over_cold"] >= 10
    assert s["warm_cache_hits"] == 64
    written = json.loads((tmp_path / "BENCH_sweep.json").read_text())
    assert written["sweep"]["configs"] == 64
