"""Benchmark-marked perf assertions (skipped in CI via ``-m "not bench"``)."""

import json

import pytest

from edm.bench import bench_single_config, run_bench


@pytest.mark.bench
def test_single_config_throughput_floor():
    result = bench_single_config(requests_target=1_000_000)
    assert result["requests_simulated"] >= 1_000_000
    assert result["requests_per_sec"] >= 100_000


@pytest.mark.bench
def test_full_sweep_cold_under_60s_and_warm_10x(tmp_path):
    report = run_bench(
        out_path=tmp_path / "BENCH_sweep.json", cache_dir=tmp_path / "cache"
    )
    s = report["sweep"]
    assert s["configs"] == 64
    assert s["cold_seconds"] < 60
    assert s["speedup_warm_over_cold"] >= 10
    assert s["warm_cache_hits"] == 64
    written = json.loads((tmp_path / "BENCH_sweep.json").read_text())
    assert written["sweep"]["configs"] == 64
