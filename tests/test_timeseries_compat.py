"""TimeSeries format compatibility: v2 ``.npz`` files (written before the
endurance lifetime columns existed), v3 files (written before the service
columns existed), and v4 files (written before the elastic-topology
``osds_total`` column existed) must still load, backfilled with the values
an engine of that vintage would have recorded, and round-trip through
save -> load as current-format files.  Files missing a *core* column still
fail loudly."""

import json

import numpy as np
import pytest

from edm.engine.core import simulate
from edm.telemetry import TimeSeries, TimeSeriesRecorder
from edm.telemetry.timeseries import (
    _V2_COMPAT_FILLS,
    _V3_COMPAT_FILLS,
    SERIES_FORMAT_VERSION,
)

V2_FIELDS = (
    "epoch", "load", "load_cov", "load_peak_ratio", "wear", "wear_cov",
    "migrations", "alive", "replacements",
)
V3_FIELDS = (*V2_FIELDS, "remaining_life_min", "remaining_life_mean")
V4_FIELDS = (
    *V3_FIELDS, "queue_depth_mean", "queue_depth_cov", "service_lat_mean",
)


def write_v2_npz(path, series, drop=()):
    """Write an ``.npz`` shaped exactly like a v2-era file: v2 meta, no
    lifetime columns (optionally dropping core columns to simulate damage)."""
    meta = {**series.meta, "format_version": 2}
    meta.pop("endurance", None)  # v2 meta predates the endurance field
    meta.pop("service", None)    # ...and the service field
    meta.pop("topology", None)   # ...and the topology field
    arrays = {k: getattr(series, k) for k in V2_FIELDS if k not in drop}
    with open(path, "wb") as f:
        np.savez_compressed(f, meta=np.asarray(json.dumps(meta)), **arrays)
    return path


def write_v3_npz(path, series):
    """Write an ``.npz`` shaped exactly like a v3-era file: lifetime columns
    present, service columns absent."""
    meta = {**series.meta, "format_version": 3}
    meta.pop("service", None)   # v3 meta predates the service field
    meta.pop("topology", None)  # ...and the topology field
    arrays = {k: getattr(series, k) for k in V3_FIELDS}
    with open(path, "wb") as f:
        np.savez_compressed(f, meta=np.asarray(json.dumps(meta)), **arrays)
    return path


def write_v4_npz(path, series):
    """Write an ``.npz`` shaped exactly like a v4-era file: service columns
    present, ``osds_total`` absent."""
    meta = {**series.meta, "format_version": 4}
    meta.pop("topology", None)  # v4 meta predates the topology field
    arrays = {k: getattr(series, k) for k in V4_FIELDS}
    with open(path, "wb") as f:
        np.savez_compressed(f, meta=np.asarray(json.dumps(meta)), **arrays)
    return path


@pytest.fixture
def live_series(small_cfg):
    """A series written by the *current* engine (format v5)."""
    rec = TimeSeriesRecorder(record_every=4)
    simulate(small_cfg, recorders=(rec,))
    return rec.series


def test_v2_file_loads_with_backfilled_lifetime(tmp_path, live_series):
    path = write_v2_npz(tmp_path / "v2.npz", live_series)
    loaded = TimeSeries.load_npz(path)
    assert loaded.meta["format_version"] == 2
    # Core columns survive untouched ...
    for name in V2_FIELDS:
        assert np.array_equal(getattr(loaded, name), getattr(live_series, name)), name
    # ... and the lifetime columns are backfilled with the pre-endurance
    # values (infinite remaining rated life), one entry per sample.
    for name, fill in _V2_COMPAT_FILLS.items():
        col = getattr(loaded, name)
        assert col.shape == (live_series.num_samples,)
        assert (col == fill).all(), name


def test_v2_file_round_trips_to_v3(tmp_path, live_series):
    old = TimeSeries.load_npz(write_v2_npz(tmp_path / "v2.npz", live_series))
    resaved = TimeSeries.load_npz(old.save_npz(tmp_path / "resaved.npz"))
    assert resaved.meta == old.meta
    for name in V2_FIELDS:
        assert np.array_equal(getattr(resaved, name), getattr(old, name)), name
    assert np.isinf(resaved.remaining_life_min).all()
    assert np.isinf(resaved.remaining_life_mean).all()


def test_v3_file_loads_with_backfilled_service_columns(tmp_path, live_series):
    path = write_v3_npz(tmp_path / "v3.npz", live_series)
    loaded = TimeSeries.load_npz(path)
    assert loaded.meta["format_version"] == 3
    # Lifetime columns survive untouched (a v3 writer recorded them) ...
    for name in V3_FIELDS:
        assert np.array_equal(getattr(loaded, name), getattr(live_series, name)), name
    # ... and the service columns backfill with what a pre-service engine
    # would have recorded: no queues, zero latency.
    for name, fill in _V3_COMPAT_FILLS.items():
        col = getattr(loaded, name)
        assert col.shape == (live_series.num_samples,)
        assert (col == fill).all(), name


def test_v3_file_round_trips_to_v4(tmp_path, live_series):
    old = TimeSeries.load_npz(write_v3_npz(tmp_path / "v3.npz", live_series))
    resaved = TimeSeries.load_npz(old.save_npz(tmp_path / "resaved.npz"))
    assert resaved.meta == old.meta
    for name in V3_FIELDS:
        assert np.array_equal(getattr(resaved, name), getattr(old, name)), name
    assert (resaved.queue_depth_mean == 0).all()
    assert (resaved.service_lat_mean == 0).all()


def test_v4_file_loads_with_backfilled_osds_total(tmp_path, live_series):
    path = write_v4_npz(tmp_path / "v4.npz", live_series)
    loaded = TimeSeries.load_npz(path)
    assert loaded.meta["format_version"] == 4
    # Service columns survive untouched (a v4 writer recorded them) ...
    for name in V4_FIELDS:
        assert np.array_equal(getattr(loaded, name), getattr(live_series, name)), name
    # ... and osds_total backfills from meta["num_osds"]: exact, since a
    # pre-v5 engine's cluster size never moved.
    assert loaded.osds_total.shape == (live_series.num_samples,)
    assert (loaded.osds_total == live_series.meta["num_osds"]).all()


def test_v4_file_round_trips_to_v5(tmp_path, live_series):
    old = TimeSeries.load_npz(write_v4_npz(tmp_path / "v4.npz", live_series))
    resaved = TimeSeries.load_npz(old.save_npz(tmp_path / "resaved.npz"))
    assert resaved.meta == old.meta
    for name in V4_FIELDS:
        assert np.array_equal(getattr(resaved, name), getattr(old, name)), name
    assert (resaved.osds_total == old.meta["num_osds"]).all()


def test_current_format_file_round_trips_exactly(tmp_path, live_series):
    assert live_series.meta["format_version"] == SERIES_FORMAT_VERSION
    loaded = TimeSeries.load_npz(live_series.save_npz(tmp_path / "v5.npz"))
    assert loaded.meta == live_series.meta
    for name in (*V2_FIELDS, *_V2_COMPAT_FILLS, *_V3_COMPAT_FILLS, "osds_total"):
        assert np.array_equal(getattr(loaded, name), getattr(live_series, name)), name


@pytest.mark.parametrize("core", ["alive", "wear", "epoch"])
def test_missing_core_column_still_rejected(tmp_path, live_series, core):
    path = write_v2_npz(tmp_path / "damaged.npz", live_series, drop=(core,))
    with pytest.raises(ValueError, match=core):
        TimeSeries.load_npz(path)
