"""Redundancy layer unit tests: scheme arithmetic, config integration,
group layout, reconstruction charging, and report wiring.

End-to-end redundancy behavior (spread invariant under disruptions, wear
identity, golden digests) lives in test_invariants_property.py /
test_golden_metrics.py; this module pins the pieces in isolation.
"""

import numpy as np
import pytest

from conftest import cfg_factory
from edm import report as report_mod
from edm.config import SEED_EXCLUDED_FIELDS, config_hash
from edm.engine.core import simulate
from edm.engine.state import init_state
from edm.redundancy import RedundancyRuntime, RedundancyScheme, group_members
from edm.spec import SpecError

# --- scheme arithmetic -------------------------------------------------------


@pytest.mark.parametrize("spec,width,reads,tolerated", [
    ("rep:2", 2, 1, 1),
    ("rep:3", 3, 1, 2),
    ("ec:4+2", 6, 4, 2),
    ("ec:2+1", 3, 2, 1),
    ("", 0, 0, 0),
])
def test_scheme_arithmetic(spec, width, reads, tolerated):
    scheme = RedundancyScheme.parse(spec, num_osds=16)
    assert scheme.group_width == width
    assert scheme.reads_per_loss == reads
    assert scheme.tolerated_losses == tolerated
    assert bool(scheme) == bool(spec)


# --- config integration ------------------------------------------------------


def test_config_canonicalizes_and_suffixes_cache_name():
    plain = cfg_factory()
    cfg = cfg_factory(redundancy="rep:03")
    assert cfg.redundancy == "rep:3"  # canonical form stored on the config
    # -g + 8 hex chars of sha256(canonical spec), after every other suffix.
    assert cfg.cache_name().startswith(plain.cache_name() + "-g")
    assert len(cfg.cache_name()) == len(plain.cache_name()) + 10
    assert cfg.cache_name() == cfg_factory(redundancy="rep:3").cache_name()
    assert cfg.cache_name() != cfg_factory(redundancy="ec:2+1").cache_name()


def test_empty_redundancy_leaves_hash_and_name_untouched():
    # Forward-compatibility contract: a redundancy-free config hashes (and
    # cache-keys) exactly as it did before the field existed, so no cached
    # result or pinned golden went stale when the field was added.
    plain = cfg_factory()
    assert "redundancy" not in plain.to_dict() or not plain.to_dict()["redundancy"]
    assert config_hash(plain) == config_hash(cfg_factory(redundancy=""))
    assert "-g" not in plain.cache_name()


def test_redundancy_is_seed_excluded():
    # Same derived RNG streams with and without a scheme: the workload replay
    # is identical, only placement and accounting differ.
    assert "redundancy" in SEED_EXCLUDED_FIELDS


def test_config_rejects_width_wider_than_cluster():
    with pytest.raises(SpecError, match="needs 6 distinct OSDs per group"):
        cfg_factory(num_osds=4, redundancy="ec:4+2")


def test_config_rejects_fault_plan_that_breaks_feasibility():
    with pytest.raises(SpecError, match="leaves only 3 of 4 alive"):
        cfg_factory(num_osds=4, redundancy="ec:2+2", faults="fail:1@8")


def test_config_rejects_topology_plan_that_drains_too_deep():
    with pytest.raises(SpecError, match="drains the cluster down to 3"):
        cfg_factory(num_osds=4, redundancy="rep:4", topology="drain:0@8")


# --- group layout ------------------------------------------------------------


def test_init_state_lays_out_round_robin_groups():
    cfg = cfg_factory(num_osds=8, redundancy="ec:4+2")
    state = init_state(cfg)
    assert state.group_width == 6
    # Consecutive-id windows of `width` chunks share a group...
    assert np.array_equal(state.chunk_group, np.arange(cfg.num_chunks) // 6)
    # ...and the round-robin owners give every full group distinct OSDs.
    assert np.array_equal(
        state.chunk_owner, (np.arange(cfg.num_chunks) % 8).astype(np.int32)
    )
    state.validate()  # group-uniqueness holds at epoch 0


def test_group_members_window_and_trailing_partial():
    cfg = cfg_factory(num_osds=8, redundancy="ec:4+2")  # 64 chunks, width 6
    state = init_state(cfg)
    assert group_members(state, 7).tolist() == [6, 7, 8, 9, 10, 11]
    # 64 = 10 full groups of 6 + a trailing partial group of 4.
    assert group_members(state, 63).tolist() == [60, 61, 62, 63]


def test_plain_config_has_no_grouping():
    state = init_state(cfg_factory())
    assert state.chunk_group is None
    assert state.group_width == 0


# --- reconstruction charging -------------------------------------------------


def test_reconstruction_counts_reads_and_charges_queues():
    cfg = cfg_factory(num_osds=8, redundancy="ec:2+1", service="rate:100")
    state = init_state(cfg)
    rt = RedundancyRuntime(RedundancyScheme.parse(cfg.redundancy), cfg)
    # Kill OSD 1: it owns chunks 1, 9, 17, ... (round-robin layout).
    state.osd_alive[1] = False
    lost = np.flatnonzero(state.chunk_owner == 1)[:2]
    rt.on_reconstruction(state, lost)
    # ec:2+1 reads 2 survivors per lost chunk.
    assert rt.reconstruction_chunks == 2
    assert rt.reconstruction_reads == 4
    assert rt.data_loss_chunks == 0
    # The reads landed in the surviving sources' queues, not the dead OSD's.
    assert state.osd_mig_backlog[1] == 0
    assert state.osd_mig_backlog.sum() == pytest.approx(
        4 * cfg.service_migration_cost
    )


def test_reconstruction_without_service_model_charges_no_queues():
    cfg = cfg_factory(num_osds=8, redundancy="rep:3")
    state = init_state(cfg)
    rt = RedundancyRuntime(RedundancyScheme.parse(cfg.redundancy), cfg)
    state.osd_alive[0] = False
    rt.on_reconstruction(state, np.flatnonzero(state.chunk_owner == 0)[:3])
    assert rt.reconstruction_reads == 3  # rep reads one survivor per loss
    assert (state.osd_mig_backlog == 0).all()


def test_too_few_survivors_counts_data_loss():
    cfg = cfg_factory(num_osds=8, redundancy="ec:4+2")
    state = init_state(cfg)
    rt = RedundancyRuntime(RedundancyScheme.parse(cfg.redundancy), cfg)
    # Chunk 0's group is chunks 0-5 on OSDs 0-5; kill 0 and three peers so
    # only 2 of the 4 needed read sources survive.
    state.osd_alive[[0, 1, 2, 3]] = False
    rt.on_reconstruction(state, np.array([0]))
    assert rt.data_loss_chunks == 1
    assert rt.reconstruction_reads == 2  # charges whatever reads remain


def test_metrics_block_shape():
    cfg = cfg_factory(num_osds=8, redundancy="rep:3")
    block = RedundancyRuntime(RedundancyScheme.parse(cfg.redundancy), cfg).metrics_block()
    assert block["redundancy"] == "rep:3"
    assert block["redundancy_group_width"] == 3
    for key in (
        "reconstruction_chunks_total",
        "reconstruction_reads_total",
        "reconstruction_read_mb",
        "reconstruction_write_mb",
        "data_loss_chunks_total",
    ):
        assert block[key] == 0


# --- end-to-end metrics + report wiring --------------------------------------


def test_redundant_run_surfaces_reconstruction_metrics():
    cfg = cfg_factory(num_osds=8, seed=7, redundancy="ec:4+2", faults="fail:1@8")
    metrics = simulate(cfg)
    assert metrics["redundancy"] == "ec:4+2"
    assert metrics["reconstruction_chunks_total"] == metrics["replacement_moves_total"]
    assert metrics["reconstruction_read_mb"] == pytest.approx(
        metrics["reconstruction_reads_total"] * cfg.chunk_size_mb
    )
    assert metrics["data_loss_chunks_total"] == 0


def test_plain_run_has_no_reconstruction_keys():
    metrics = simulate(cfg_factory())
    assert not any(k.startswith("reconstruction") for k in metrics)
    assert "redundancy" not in metrics


def test_report_shows_redundancy_column_only_when_present():
    cfg = cfg_factory(num_osds=8, seed=7, redundancy="ec:4+2", faults="fail:1@8")
    redundant = simulate(cfg)
    plain = simulate(cfg_factory(policy="hdf"))
    cells = report_mod.aggregate([redundant, plain])
    table = report_mod.render_markdown(cells)
    assert "redundancy" in table and "recon reads" in table
    assert "| ec:4+2 |" in table
    assert "| plain |" in table  # the redundancy-free row's placeholder
    # A purely plain cache keeps its historical column set.
    plain_table = report_mod.render_markdown(report_mod.aggregate([plain]))
    assert "redundancy" not in plain_table and "recon reads" not in plain_table
