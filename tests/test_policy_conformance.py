"""Differential policy-conformance harness over the whole registry.

Every registered policy must honor the full :class:`MigrationPolicy`
surface contract, not just the paper's four:

  * ``pick_destination_batch`` is **bit-identical** to a scalar
    ``pick_destination`` loop over the same rows -- the engine's batched
    failure re-placement silently replays the scalar greedy through the
    batch path, so any drift is a correctness bug, not a style issue;
  * ``destination_terms`` *defines* the scoring: the argmin of its
    left-to-right fold (``sum_terms``) is exactly the destination
    ``pick_destination`` returns, and ``explain_destination`` reports that
    same winner -- an explained pick is always the pick;
  * selection never lands a chunk on a dead or draining OSD, and
    ``select_explained`` returns the same moves as ``select``.

The checks run against *live* engine states sampled mid-run (via a
Recorder) across a seeded draw of the fault x endurance x service x
topology scenario grid, so every policy is exercised healthy, degraded,
rated, serviced, and mid-drain -- the states where the contracts are
easiest to break.
"""

import numpy as np
import pytest

from conftest import cfg_factory
from edm.config import POLICIES, WORKLOADS
from edm.engine.core import simulate
from edm.policies import get_policy
from edm.policies.base import sum_terms
from edm.telemetry import Recorder

SIZING = dict(num_osds=8, epochs=16, requests_per_epoch=512, chunks_per_osd=8)

# One healthy pin plus a seeded draw over the scenario axes (below).
FAULT_SCENARIOS = ("", "fail:1@4", "slow:2@3x0.5;fail:1@6")
ENDURANCE_MODELS = ("", "pe:1200@0-1,100000@2-7")
SERVICE_MODELS = ("", "rate:80;queue:32")
TOPOLOGY_PLANS = ("", "add:2@6/cap:1;drain:0@10")


def sample_cases():
    """Seeded scenario draw; every policy gets the healthy pin + two draws."""
    rng = np.random.default_rng(20260808)
    cases = []
    for policy in POLICIES:
        for pinned in (True, False, False):
            cases.append(
                cfg_factory(
                    policy=policy,
                    workload=WORKLOADS[int(rng.integers(len(WORKLOADS)))],
                    faults="" if pinned else FAULT_SCENARIOS[int(rng.integers(len(FAULT_SCENARIOS)))],
                    endurance="" if pinned else ENDURANCE_MODELS[int(rng.integers(len(ENDURANCE_MODELS)))],
                    service="" if pinned else SERVICE_MODELS[int(rng.integers(len(SERVICE_MODELS)))],
                    topology="" if pinned else TOPOLOGY_PLANS[int(rng.integers(len(TOPOLOGY_PLANS)))],
                    seed=int(rng.integers(1, 10_000)),
                    **SIZING,
                )
            )
    return cases


class ConformanceChecker(Recorder):
    """Runs the surface-contract checks against the live state every epoch."""

    def __init__(self, cfg):
        self.cfg = cfg
        self.policy = get_policy(cfg.policy)
        self.rng = np.random.default_rng(cfg.seed + 1)
        self.states_checked = 0
        self.moves_checked = 0

    def on_epoch(self, state, load, stats):
        cfg, policy = self.cfg, self.policy
        candidates = np.flatnonzero(state.osd_alive & ~state.osd_draining)
        if candidates.size < 2:
            return
        self.states_checked += 1

        # A handful of projected-load rows: the real smoothed load plus
        # perturbations (re-placement projects load forward chunk by chunk,
        # so the batch path must agree on *any* non-negative vector).
        base = state.osd_load_ema
        rows = np.vstack([
            base,
            *(base * self.rng.uniform(0.25, 2.0, size=base.shape) for _ in range(3)),
        ])

        batch = policy.pick_destination_batch(candidates, rows, state, cfg)
        for i, row in enumerate(rows):
            scalar = policy.pick_destination(candidates, row, state, cfg)
            assert int(batch[i]) == scalar, (
                f"{policy.name}: batch pick {int(batch[i])} != scalar pick "
                f"{scalar} on row {i}"
            )
            # The term decomposition folds to the very pick.
            terms = policy.destination_terms(candidates, row, state, cfg)
            folded = sum_terms(terms)
            assert folded.shape == candidates.shape
            assert int(candidates[np.argmin(folded)]) == scalar, (
                f"{policy.name}: destination_terms fold disagrees with "
                f"pick_destination"
            )
            dst, e_terms, e_scores = policy.explain_destination(
                candidates, row, state, cfg
            )
            assert dst == scalar
            assert set(e_terms) == set(terms)
            assert np.array_equal(e_scores, folded)

        # Selection: explained == plain, and no move lands on a dead or
        # draining OSD.  (select never mutates state, so calling it here
        # does not perturb the run.)
        picks = []
        moves = policy.select_explained(
            state, cfg, lambda c, s, d, cand, t, sc: picks.append((c, d))
        )
        plain = policy.select(state, cfg)
        assert np.array_equal(moves, plain), (
            f"{policy.name}: select_explained diverged from select"
        )
        for chunk, dst in np.asarray(moves).reshape(-1, 2):
            assert state.osd_alive[dst], f"{policy.name} picked a dead OSD"
            assert not state.osd_draining[dst], (
                f"{policy.name} picked a draining OSD"
            )
            self.moves_checked += 1
        assert [(c, d) for c, d in np.asarray(moves).reshape(-1, 2)] == [
            (int(c), int(d)) for c, d in picks
        ] or picks == []  # baseline never emits

    def finalize(self, state, final_load):
        return None


@pytest.mark.parametrize("cfg", sample_cases(), ids=lambda c: c.cache_name())
def test_policy_surface_contracts(cfg):
    checker = ConformanceChecker(cfg)
    simulate(cfg, recorders=(checker,))
    assert checker.states_checked > 0


def test_sample_covers_every_policy_and_scenario_kind():
    cases = sample_cases()
    assert {c.policy for c in cases} == set(POLICIES)
    assert any(c.faults for c in cases), "no faulted config sampled"
    assert any(c.endurance for c in cases), "no rated config sampled"
    assert any(c.service for c in cases), "no serviced config sampled"
    assert any(c.topology for c in cases), "no elastic config sampled"
    # Reproducibility: the same seeded draw yields the same sample.
    assert [c.cache_name() for c in sample_cases()] == [c.cache_name() for c in cases]


def test_redundant_selection_respects_group_constraints():
    """Under rep:3 every policy's selected moves keep groups spread."""
    for policy_name in POLICIES:
        cfg = cfg_factory(policy=policy_name, redundancy="rep:3", **SIZING)
        metrics = simulate(cfg)  # state.validate-style invariant lives in
        assert metrics["redundancy"] == "rep:3"  # test_invariants_property
