"""Epoch-kernel backends and batched re-placement: bit-identity guarantees.

The fused kernel (src/edm/engine/kernels.py) and the vectorized failure
re-placement (engine/core.py) both promise *byte-equal* metrics against
their reference implementations.  This module pins those promises:

  * numpy vs numba backends produce identical metrics dicts (and therefore
    identical golden hashes) across policy x workload x faults x endurance
    samples -- numba cases skip cleanly when the optional extra is absent;
  * the batched greedy destination assignment replays the sequential
    per-chunk loop bit-for-bit, and policies that override only the scalar
    ``pick_destination`` fall back to the exact loop;
  * migration wear accrual via bincount matches the per-element scatter it
    replaced, duplicates included.
"""

import json
import hashlib

import numpy as np
import pytest

from conftest import cfg_factory, make_state
from edm.config import config_hash, rng_seed_sequence
from edm.engine import core as core_mod
from edm.engine.core import (
    _assign_replacements_batched,
    _assign_replacements_loop,
    _supports_batch_destinations,
    apply_migrations,
    simulate,
)
from edm.engine.kernels import (
    NumpyKernel,
    available_kernels,
    make_kernel,
    numba_available,
    resolve_kernel,
)
from edm.policies import get_policy
from edm.policies.base import MigrationPolicy, ThresholdPolicy

# Samples chosen to exercise every engine path that the kernel and the
# batched re-placement touch: all four policies, a drifting and a bursty
# workload, a mid-run failure burst, and a rated cluster that wears out.
SAMPLES = {
    "baseline-deasna": dict(policy="baseline"),
    "cdf-deasna2": dict(policy="cdf", workload="deasna2"),
    "hdf-lair62": dict(policy="hdf", workload="lair62"),
    "cmt-lair62b": dict(policy="cmt", workload="lair62b"),
    "cmt-faulted": dict(policy="cmt", faults="fail:1@8;slow:2@4x0.5"),
    "hdf-faulted": dict(policy="hdf", faults="fail:3@10", num_osds=8),
    "cmt-rated": dict(policy="cmt", endurance="pe:900"),
    "cmt-degraded-rated": dict(policy="cmt", faults="fail:1@8", endurance="pe:900"),
}


def digest(metrics: dict) -> str:
    blob = json.dumps(metrics, sort_keys=True, separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()


# ---------------------------------------------------------------------------
# Backend selection / config surface


def test_resolve_kernel_names():
    assert resolve_kernel("numpy") == "numpy"
    expected_auto = "numba" if numba_available() else "numpy"
    assert resolve_kernel("auto") == expected_auto
    assert set(available_kernels()) == (
        {"numpy", "numba"} if numba_available() else {"numpy"}
    )


def test_explicit_numba_without_install_raises():
    if numba_available():
        pytest.skip("numba installed; the error path is unreachable")
    with pytest.raises(RuntimeError, match="numba"):
        resolve_kernel("numba")
    with pytest.raises(RuntimeError, match="numba"):
        make_kernel(cfg_factory(kernel="numba"))


def test_unknown_kernel_rejected():
    with pytest.raises(ValueError, match="kernel"):
        cfg_factory(kernel="fortran")
    with pytest.raises(ValueError, match="unknown kernel"):
        resolve_kernel("fortran")


def test_kernel_field_never_feeds_hash_or_seed():
    # Both backends must share cache entries and RNG streams: the kernel
    # field is presentation, not semantics.
    a = cfg_factory(kernel="numpy")
    b = cfg_factory(kernel="auto")
    assert config_hash(a) == config_hash(b)
    assert rng_seed_sequence(a).entropy == rng_seed_sequence(b).entropy
    assert a.cache_name() == b.cache_name()


def test_make_kernel_default_is_numpy_when_no_numba():
    k = make_kernel(cfg_factory())
    if not numba_available():
        assert isinstance(k, NumpyKernel)


# ---------------------------------------------------------------------------
# numpy vs numba bit-identity (skips without the [jit] extra)


@pytest.mark.parametrize("name", sorted(SAMPLES))
def test_numba_kernel_bit_identical(name):
    pytest.importorskip("numba")
    kw = {"num_osds": 8, "seed": 7, **SAMPLES[name]}
    cfg_np = cfg_factory(kernel="numpy", **kw)
    cfg_nb = cfg_factory(kernel="numba", **kw)
    m_np = simulate(cfg_np)
    m_nb = simulate(cfg_nb)
    assert m_np == m_nb
    assert digest(m_np) == digest(m_nb)


def test_numba_reproduces_pinned_golden_hash():
    # The numba backend must land on the exact digest pinned for the numpy
    # engine -- same claim as test_golden_metrics, through the JIT path.
    pytest.importorskip("numba")
    from test_golden_metrics import CASES, GOLDEN

    for name, kw in CASES.items():
        cfg = cfg_factory(num_osds=8, seed=7, kernel="numba", **kw)
        assert digest(simulate(cfg)) == GOLDEN[name], f"numba drifted on {name!r}"


# ---------------------------------------------------------------------------
# Batched re-placement vs the sequential reference loop


@pytest.mark.parametrize(
    "name", [n for n in sorted(SAMPLES) if "faulted" in n or "rated" in n]
)
def test_batched_replacement_matches_loop(name, monkeypatch):
    cfg = cfg_factory(**{"num_osds": 8, "seed": 7, **SAMPLES[name]})
    fast = simulate(cfg)
    monkeypatch.setattr(core_mod, "_supports_batch_destinations", lambda policy: False)
    slow = simulate(cfg)
    assert fast == slow
    assert digest(fast) == digest(slow)


@pytest.mark.parametrize("policy", ("baseline", "cdf", "hdf", "cmt"))
def test_assign_replacements_paths_agree_directly(policy):
    # Unit-level: same inputs through both assignment paths, byte-equal
    # destinations and identical projected-load evolution.
    cfg = cfg_factory(num_osds=8, policy=policy, endurance="pe:5000")
    rng = np.random.default_rng(3)
    state = make_state(
        cfg,
        heat=rng.uniform(0.1, 5.0, cfg.num_chunks),
        wear=rng.uniform(0.0, 50.0, cfg.num_osds),
        load_ema=rng.uniform(0.5, 2.0, cfg.num_osds),
    )
    state.osd_alive[2] = False  # the "dead" source
    pol = get_policy(policy)
    order = np.flatnonzero(state.chunk_owner == 2)
    order = order[np.argsort(-state.chunk_heat[order], kind="stable")]
    alive_ids = np.flatnonzero(state.osd_alive)
    proj_a = state.osd_load_ema.copy()
    proj_b = state.osd_load_ema.copy()
    dsts_loop = _assign_replacements_loop(order, proj_a, alive_ids, pol, state, cfg)
    dsts_batch = _assign_replacements_batched(order, proj_b, alive_ids, pol, state, cfg)
    np.testing.assert_array_equal(dsts_loop, dsts_batch)
    assert proj_a.tobytes() == proj_b.tobytes()  # bit-equal, not approx


def test_scalar_only_policy_override_falls_back_to_loop():
    class ScalarOnly(ThresholdPolicy):
        name = "scalar-only"

        def chunk_order(self, chunk_ids, state):
            return chunk_ids

        def pick_destination(self, candidates, proj_load, state, cfg):
            return int(candidates[np.argmax(proj_load[candidates])])  # worst-fit

    class BothOverridden(ScalarOnly):
        def pick_destination_batch(self, candidates, proj_rows, state, cfg):
            return candidates[np.argmax(proj_rows[:, candidates], axis=1)]

    assert not _supports_batch_destinations(ScalarOnly())
    assert _supports_batch_destinations(BothOverridden())
    # Built-ins all pair their overrides.
    for name in ("baseline", "cdf", "hdf", "cmt"):
        assert _supports_batch_destinations(get_policy(name))


def test_inherited_base_pair_counts_as_supported():
    class PlainSelect(MigrationPolicy):
        name = "plain"

        def select(self, state, cfg):
            return np.empty((0, 2), dtype=np.int64)

    # Neither method overridden: the base-class pair is consistent.
    assert _supports_batch_destinations(PlainSelect())


# ---------------------------------------------------------------------------
# Migration wear accrual: bincount vs per-element scatter


def test_apply_migrations_duplicate_destination_wear(small_cfg):
    cfg = small_cfg
    state = make_state(cfg)
    # Pile many chunks onto one destination plus a couple elsewhere --
    # the exact shape np.add.at handled element-by-element.
    # Owners: chunks 0-7 on OSD 0, 8-15 on OSD 1 (make_state layout); every
    # move below is real, with four piling onto OSD 3.
    moves = np.array([[0, 3], [1, 3], [2, 3], [8, 2], [9, 3], [10, 2]])
    before = state.osd_wear.copy()
    ref = before.copy()
    np.add.at(ref, moves[:, 1], cfg.migration_write_cost * cfg.wear_per_write)
    applied = apply_migrations(state, moves, cfg)
    assert applied == len(moves)
    np.testing.assert_array_equal(state.osd_wear, ref)
    assert state.osd_wear[3] == before[3] + 4 * cfg.migration_write_cost * cfg.wear_per_write


def test_apply_migrations_wear_skips_dropped_moves(small_cfg):
    state = make_state(small_cfg)
    owner0 = int(state.chunk_owner[0])
    moves = np.array([
        [0, (owner0 + 1) % small_cfg.num_osds],  # real move
        [0, (owner0 + 2) % small_cfg.num_osds],  # duplicate chunk: dropped
        [1, int(state.chunk_owner[1])],          # no-op: dropped
        [2, small_cfg.num_osds + 5],             # out of range: dropped
    ])
    applied = apply_migrations(state, moves, small_cfg)
    assert applied == 1
    per_move = small_cfg.migration_write_cost * small_cfg.wear_per_write
    assert state.osd_wear.sum() == pytest.approx(per_move)


# ---------------------------------------------------------------------------
# Workload float64 emission (the kernel consumes weights without casts)


def test_epoch_counts_emits_reused_float64_buffers(small_cfg):
    from edm.workloads import make_workload

    wl = make_workload(small_cfg, np.random.default_rng(1))
    c0, w0 = wl.epoch_counts(0)
    assert c0.dtype == np.float64 and w0.dtype == np.float64
    assert np.array_equal(c0, np.round(c0))  # integer-valued
    assert np.array_equal(w0, np.round(w0))
    assert c0.sum() == small_cfg.requests_per_epoch
    assert (w0 <= c0).all()
    c1, w1 = wl.epoch_counts(1)
    assert c1 is c0 and w1 is w0  # per-instance buffers, rewritten in place


def test_kernel_epoch_update_matches_unfused_reference(small_cfg):
    # The fused numpy kernel vs a straightforward transcription of the
    # pre-fusion engine math, same state, byte-equal everywhere.
    cfg = small_cfg
    rng = np.random.default_rng(5)
    state = make_state(cfg, heat=rng.uniform(0, 2, cfg.num_chunks))
    ref = make_state(cfg, heat=state.chunk_heat.copy())
    ref.osd_load_ema[:] = state.osd_load_ema
    counts = rng.integers(0, 50, cfg.num_chunks).astype(np.float64)
    writes = np.minimum(counts, rng.integers(0, 20, cfg.num_chunks)).astype(np.float64)

    load = make_kernel(cfg).epoch_update(state, counts, writes)

    ref_load = np.bincount(ref.chunk_owner, weights=counts, minlength=cfg.num_osds)
    ref.osd_wear += (
        np.bincount(ref.chunk_owner, weights=writes, minlength=cfg.num_osds)
        * cfg.wear_per_write
    )
    a = cfg.heat_alpha
    ref.chunk_heat = (1.0 - a) * ref.chunk_heat + a * counts
    ref.chunk_write_heat = (1.0 - a) * ref.chunk_write_heat + a * writes
    la = cfg.load_alpha
    ref.osd_load_ema = (1.0 - la) * ref.osd_load_ema + la * ref_load

    assert load.tobytes() == ref_load.tobytes()
    assert state.osd_wear.tobytes() == ref.osd_wear.tobytes()
    assert state.chunk_heat.tobytes() == ref.chunk_heat.tobytes()
    assert state.chunk_write_heat.tobytes() == ref.chunk_write_heat.tobytes()
    assert state.osd_load_ema.tobytes() == ref.osd_load_ema.tobytes()
