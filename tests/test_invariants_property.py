"""Property-style invariant suite: randomized-but-seeded configurations over
policy x workload x faults x endurance x service, each run checked
epoch-by-epoch.

Invariants (must hold for every policy, healthy or degraded, rated or not,
serviced or not):

  * wear conservation -- total wear equals routed writes plus migration
    rewrites, to float precision
  * per-OSD wear is monotone non-decreasing, wear rates never negative
  * remaining rated lifetime is never negative (clamped at zero)
  * dead OSDs own no chunks and serve zero load; chunks are conserved
  * queue depths and pending migration work are finite and never negative;
    dead OSDs carry no backlog; unserviced runs never grow a queue
  * the alive count never increases, and state / metrics / TimeSeries agree
    on it at every recorded epoch

The sample is drawn from a fixed-seed RNG so failures reproduce exactly;
every policy appears in the sample by construction.
"""

import numpy as np
import pytest

from conftest import cfg_factory
from edm.config import POLICIES, WORKLOADS
from edm.engine.core import simulate
from edm.telemetry import Recorder, TimeSeriesRecorder

SIZING = dict(num_osds=8, epochs=24, requests_per_epoch=512, chunks_per_osd=8)

FAULT_SCENARIOS = ("", "fail:1@8", "slow:2@4x0.5;fail:1@8", "hiccup:3@6+4x0.25")
ENDURANCE_MODELS = ("", "pe:900", "pe:1200@0-1,100000@2-7")
SERVICE_MODELS = ("", "rate:100", "rate:80;queue:32", "rate:60;rate:200@4-7;queue:64")


def sample_configs():
    """Seeded random draw; every policy covered, scenario axes shuffled.

    The first case per policy is pinned healthy + unrated so the baseline
    path always stays in the sample; the rest draw from the scenario axes.
    """
    rng = np.random.default_rng(20260806)
    cases = []
    for policy in POLICIES:
        for pinned in (True, False, False):
            cases.append(
                cfg_factory(
                    policy=policy,
                    workload=WORKLOADS[int(rng.integers(len(WORKLOADS)))],
                    faults="" if pinned else FAULT_SCENARIOS[int(rng.integers(len(FAULT_SCENARIOS)))],
                    endurance="" if pinned else ENDURANCE_MODELS[int(rng.integers(len(ENDURANCE_MODELS)))],
                    service="" if pinned else SERVICE_MODELS[int(rng.integers(len(SERVICE_MODELS)))],
                    seed=int(rng.integers(1, 10_000)),
                    **SIZING,
                )
            )
    return cases


class InvariantRecorder(Recorder):
    """Checks per-epoch invariants in-line; accumulates the alive trajectory."""

    def on_run_start(self, cfg, state):
        self.cfg = cfg
        self._prev_wear = None
        self.alive_per_epoch = []

    def on_epoch(self, state, load, stats):
        alive = state.osd_alive
        # Wear only ever grows, rates are EWMAs of non-negative deltas.
        if self._prev_wear is not None:
            assert (state.osd_wear >= self._prev_wear - 1e-9).all(), "wear decreased"
        self._prev_wear = state.osd_wear.copy()
        assert (state.osd_wear_rate >= 0).all(), "negative wear rate"
        # Remaining rated lifetime is clamped, never negative.
        assert (state.remaining_life() >= 0).all(), "negative remaining life"
        # Dead OSDs serve nothing and own nothing; chunks are conserved.
        owned = np.bincount(state.chunk_owner, minlength=state.num_osds)
        assert owned.sum() == state.num_chunks, "chunk lost or duplicated"
        assert (load[~alive] == 0).all(), "dead OSD served load"
        assert (owned[~alive] == 0).all(), "dead OSD owns chunks"
        assert (state.osd_capacity[~alive] == 0).all(), "dead OSD has capacity"
        # Queues: finite, never negative; corpse queues are swept before
        # observers run; without a service model no queue ever forms.
        for name in ("osd_queue_depth", "osd_mig_backlog"):
            q = getattr(state, name)
            assert np.isfinite(q).all(), f"non-finite {name}"
            assert (q >= 0).all(), f"negative {name}"
            assert (q[~alive] == 0).all(), f"dead OSD carries {name}"
            if not self.cfg.service:
                assert (q == 0).all(), f"unserviced run grew {name}"
        # Nobody comes back from the dead.
        n_alive = int(alive.sum())
        if self.alive_per_epoch:
            assert n_alive <= self.alive_per_epoch[-1], "OSD resurrected"
        assert n_alive >= 1, "whole cluster died"
        self.alive_per_epoch.append(n_alive)

    def finalize(self, state, final_load):
        return None


@pytest.mark.parametrize("cfg", sample_configs(), ids=lambda c: c.cache_name())
def test_invariants_hold_across_scenarios(cfg):
    inv = InvariantRecorder()
    ts = TimeSeriesRecorder(record_every=1)
    metrics = simulate(cfg, recorders=(inv, ts))

    # Wear conservation: every unit of wear is a routed write or a migration
    # rewrite (replacement bursts are charged as ordinary migrations).
    expected = (
        metrics["total_writes"] * cfg.wear_per_write
        + metrics["migrations_total"] * cfg.migration_write_cost * cfg.wear_per_write
    )
    assert sum(metrics["per_osd_wear"]) == pytest.approx(expected, rel=1e-9)
    assert metrics["wear_min"] >= 0

    # state / metrics / TimeSeries agree on the alive trajectory.
    assert len(inv.alive_per_epoch) == cfg.epochs
    assert ts.series.alive.tolist() == inv.alive_per_epoch
    final_alive = inv.alive_per_epoch[-1]
    if "osds_alive_final" in metrics:
        assert metrics["osds_alive_final"] == final_alive
    else:
        assert final_alive == cfg.num_osds  # healthy unrated run: no deaths
    deaths = metrics.get("fault_failures", 0) + metrics.get("wearouts_total", 0)
    assert final_alive == cfg.num_osds - deaths

    # Series wear matches the final per-OSD wear bit-for-bit.
    assert np.allclose(ts.series.wear[-1], metrics["per_osd_wear"])


def test_sample_covers_every_policy_and_scenario_kind():
    """Guard the sampler itself: if the draw ever collapses (RNG change,
    axis edit), the suite would silently stop exercising whole subsystems."""
    cases = sample_configs()
    assert {c.policy for c in cases} == set(POLICIES)
    assert any(c.faults for c in cases), "no faulted config sampled"
    assert any(c.endurance for c in cases), "no rated config sampled"
    assert any(c.service for c in cases), "no serviced config sampled"
    assert any(not c.faults and not c.endurance and not c.service for c in cases)
    # Reproducibility: the same seeded draw yields the same sample.
    assert [c.cache_name() for c in sample_configs()] == [c.cache_name() for c in cases]
