"""Property-style invariant suite: randomized-but-seeded configurations over
policy x workload x faults x endurance x service, each run checked
epoch-by-epoch.

Invariants (must hold for every policy, healthy or degraded, rated or not,
serviced or not):

  * wear conservation -- total wear equals routed writes plus migration
    rewrites, to float precision
  * per-OSD wear is monotone non-decreasing, wear rates never negative
  * remaining rated lifetime is never negative (clamped at zero)
  * dead OSDs own no chunks and serve zero load; chunks are conserved
  * queue depths and pending migration work are finite and never negative;
    dead OSDs carry no backlog; unserviced runs never grow a queue
  * the alive count never increases, and state / metrics / TimeSeries agree
    on it at every recorded epoch

The sample is drawn from a fixed-seed RNG so failures reproduce exactly;
every policy appears in the sample by construction.
"""

import numpy as np
import pytest

from conftest import cfg_factory
from edm.config import POLICIES, WORKLOADS
from edm.engine.core import simulate
from edm.telemetry import Recorder, TimeSeriesRecorder

SIZING = dict(num_osds=8, epochs=24, requests_per_epoch=512, chunks_per_osd=8)

FAULT_SCENARIOS = ("", "fail:1@8", "slow:2@4x0.5;fail:1@8", "hiccup:3@6+4x0.25")
ENDURANCE_MODELS = ("", "pe:900", "pe:1200@0-1,100000@2-7")
SERVICE_MODELS = ("", "rate:100", "rate:80;queue:32", "rate:60;rate:200@4-7;queue:64")


def sample_configs():
    """Seeded random draw; every policy covered, scenario axes shuffled.

    The first case per policy is pinned healthy + unrated so the baseline
    path always stays in the sample; the rest draw from the scenario axes.
    """
    rng = np.random.default_rng(20260806)
    cases = []
    for policy in POLICIES:
        for pinned in (True, False, False):
            cases.append(
                cfg_factory(
                    policy=policy,
                    workload=WORKLOADS[int(rng.integers(len(WORKLOADS)))],
                    faults="" if pinned else FAULT_SCENARIOS[int(rng.integers(len(FAULT_SCENARIOS)))],
                    endurance="" if pinned else ENDURANCE_MODELS[int(rng.integers(len(ENDURANCE_MODELS)))],
                    service="" if pinned else SERVICE_MODELS[int(rng.integers(len(SERVICE_MODELS)))],
                    seed=int(rng.integers(1, 10_000)),
                    **SIZING,
                )
            )
    return cases


class InvariantRecorder(Recorder):
    """Checks per-epoch invariants in-line; accumulates the alive trajectory."""

    def on_run_start(self, cfg, state):
        self.cfg = cfg
        self._prev_wear = None
        self.alive_per_epoch = []

    def on_epoch(self, state, load, stats):
        alive = state.osd_alive
        # Wear only ever grows, rates are EWMAs of non-negative deltas.
        if self._prev_wear is not None:
            assert (state.osd_wear >= self._prev_wear - 1e-9).all(), "wear decreased"
        self._prev_wear = state.osd_wear.copy()
        assert (state.osd_wear_rate >= 0).all(), "negative wear rate"
        # Remaining rated lifetime is clamped, never negative.
        assert (state.remaining_life() >= 0).all(), "negative remaining life"
        # Dead OSDs serve nothing and own nothing; chunks are conserved.
        owned = np.bincount(state.chunk_owner, minlength=state.num_osds)
        assert owned.sum() == state.num_chunks, "chunk lost or duplicated"
        assert (load[~alive] == 0).all(), "dead OSD served load"
        assert (owned[~alive] == 0).all(), "dead OSD owns chunks"
        assert (state.osd_capacity[~alive] == 0).all(), "dead OSD has capacity"
        # Queues: finite, never negative; corpse queues are swept before
        # observers run; without a service model no queue ever forms.
        for name in ("osd_queue_depth", "osd_mig_backlog"):
            q = getattr(state, name)
            assert np.isfinite(q).all(), f"non-finite {name}"
            assert (q >= 0).all(), f"negative {name}"
            assert (q[~alive] == 0).all(), f"dead OSD carries {name}"
            if not self.cfg.service:
                assert (q == 0).all(), f"unserviced run grew {name}"
        # Nobody comes back from the dead.
        n_alive = int(alive.sum())
        if self.alive_per_epoch:
            assert n_alive <= self.alive_per_epoch[-1], "OSD resurrected"
        assert n_alive >= 1, "whole cluster died"
        self.alive_per_epoch.append(n_alive)

    def finalize(self, state, final_load):
        return None


@pytest.mark.parametrize("cfg", sample_configs(), ids=lambda c: c.cache_name())
def test_invariants_hold_across_scenarios(cfg):
    inv = InvariantRecorder()
    ts = TimeSeriesRecorder(record_every=1)
    metrics = simulate(cfg, recorders=(inv, ts))

    # Wear conservation: every unit of wear is a routed write or a migration
    # rewrite (replacement bursts are charged as ordinary migrations).
    expected = (
        metrics["total_writes"] * cfg.wear_per_write
        + metrics["migrations_total"] * cfg.migration_write_cost * cfg.wear_per_write
    )
    assert sum(metrics["per_osd_wear"]) == pytest.approx(expected, rel=1e-9)
    assert metrics["wear_min"] >= 0

    # state / metrics / TimeSeries agree on the alive trajectory.
    assert len(inv.alive_per_epoch) == cfg.epochs
    assert ts.series.alive.tolist() == inv.alive_per_epoch
    final_alive = inv.alive_per_epoch[-1]
    if "osds_alive_final" in metrics:
        assert metrics["osds_alive_final"] == final_alive
    else:
        assert final_alive == cfg.num_osds  # healthy unrated run: no deaths
    deaths = metrics.get("fault_failures", 0) + metrics.get("wearouts_total", 0)
    assert final_alive == cfg.num_osds - deaths

    # Series wear matches the final per-OSD wear bit-for-bit.
    assert np.allclose(ts.series.wear[-1], metrics["per_osd_wear"])


def test_sample_covers_every_policy_and_scenario_kind():
    """Guard the sampler itself: if the draw ever collapses (RNG change,
    axis edit), the suite would silently stop exercising whole subsystems."""
    cases = sample_configs()
    assert {c.policy for c in cases} == set(POLICIES)
    assert any(c.faults for c in cases), "no faulted config sampled"
    assert any(c.endurance for c in cases), "no rated config sampled"
    assert any(c.service for c in cases), "no serviced config sampled"
    assert any(not c.faults and not c.endurance and not c.service for c in cases)
    # Reproducibility: the same seeded draw yields the same sample.
    assert [c.cache_name() for c in sample_configs()] == [c.cache_name() for c in cases]


# --- redundancy invariants ---------------------------------------------------
# The spread constraint must hold at *every* epoch, through every disruption
# that re-homes chunks: scheduled failures, wear-out deaths, and drains.

REDUNDANT_SCENARIOS = [
    # (scheme, scenario overrides) -- all feasible on an 8-OSD cluster:
    # ec:4+2 groups need 6 distinct OSDs, the banded endurance model wears
    # out at most OSDs 0-1 (6 survivors), fail:1 leaves 7, drain:0 leaves 7.
    ("rep:2", dict()),
    ("rep:3", dict(faults="fail:1@8")),
    ("rep:3", dict(endurance="pe:1200@0-1,100000@2-7")),
    ("ec:2+1", dict(faults="slow:2@4x0.5;fail:1@8", service="rate:80;queue:32")),
    ("ec:4+2", dict(faults="fail:1@8")),
    ("ec:4+2", dict(topology="drain:0@8")),
]


class GroupSpreadRecorder(Recorder):
    """Asserts the no-co-location invariant on the live state every epoch."""

    def on_run_start(self, cfg, state):
        assert state.chunk_group is not None, "redundant run lost its grouping"
        self.epochs_checked = 0

    def on_epoch(self, state, load, stats):
        # Two chunks of one group on one OSD would collide in this key.
        key = (
            state.chunk_group.astype(np.int64) * state.num_osds
            + state.chunk_owner
        )
        assert np.unique(key).size == state.num_chunks, (
            "placement group co-located two chunks on one OSD"
        )
        self.epochs_checked += 1

    def finalize(self, state, final_load):
        return None


@pytest.mark.parametrize(
    "scheme,overrides",
    REDUNDANT_SCENARIOS,
    ids=[f"{s}-{'+'.join(sorted(o)) or 'plain'}" for s, o in REDUNDANT_SCENARIOS],
)
@pytest.mark.parametrize("policy", POLICIES)
def test_redundant_groups_never_colocate(policy, scheme, overrides):
    cfg = cfg_factory(policy=policy, redundancy=scheme, seed=11, **SIZING, **overrides)
    spread = GroupSpreadRecorder()
    metrics = simulate(cfg, recorders=(spread,))
    assert spread.epochs_checked == cfg.epochs
    assert metrics["redundancy"] == scheme

    # Reconstruction conserves the wear identity: rebuild *reads* add no
    # wear, the rebuild write is charged as an ordinary migration -- so the
    # same books that balance for plain runs balance under reconstruction.
    expected = (
        metrics["total_writes"] * cfg.wear_per_write
        + metrics["migrations_total"] * cfg.migration_write_cost * cfg.wear_per_write
    )
    assert sum(metrics["per_osd_wear"]) == pytest.approx(expected, rel=1e-9)

    # Reconstruction is charged exactly for chunks re-placed off *dead*
    # OSDs (failures + wear-outs), never for drains, and reads are bounded
    # by the scheme's read amplification.
    dead_replacements = metrics.get("replacement_moves_total", 0) + metrics.get(
        "wearout_replacements_total", 0
    )
    assert metrics["reconstruction_chunks_total"] == dead_replacements
    reads_per_loss = 1 if scheme.startswith("rep") else int(scheme[3:].split("+")[0])
    assert (
        metrics["reconstruction_reads_total"]
        <= metrics["reconstruction_chunks_total"] * reads_per_loss
    )
    assert metrics["data_loss_chunks_total"] == 0  # all scenarios tolerate it
    if overrides.get("topology"):
        assert metrics["drain_moves_total"] > 0  # drained, not reconstructed
