"""Span timeline export: event recording, JSONL round-trip, Perfetto JSON."""

import json
import os

import pytest

from conftest import cfg_factory
from edm.cli import main
from edm.engine.core import simulate
from edm.obs import Tracer
from edm.obs.trace_export import (
    export_chrome_trace,
    read_span_events,
    to_chrome_trace,
    validate_span_event,
    write_span_events,
)
from edm.sweep import default_grid, sweep


def nested_tracer():
    tr = Tracer(record_events=True)
    with tr.span("outer"):
        with tr.span("inner"):
            pass
        with tr.span("inner"):
            pass
    return tr


# --- Tracer event recording --------------------------------------------------


def test_tracer_records_individual_occurrences():
    tr = nested_tracer()
    events = tr.events()
    assert [e["name"] for e in events] == ["outer", "outer.inner", "outer.inner"]
    assert all(e["pid"] == os.getpid() for e in events)
    assert all(e["dur"] >= 0 for e in events)
    # Start-ordered, and children start within the parent.
    outer, in1, in2 = events
    assert outer["ts"] <= in1["ts"] <= in2["ts"]
    assert in2["ts"] + in2["dur"] <= outer["ts"] + outer["dur"] + 1e-6
    # Aggregation is unchanged by event recording.
    assert tr.summary()["outer.inner"]["count"] == 2


def test_tracer_without_recording_has_no_events():
    tr = Tracer()
    with tr.span("a"):
        pass
    assert tr.records_events is False
    assert tr.events() == []


def test_reset_clears_events():
    tr = nested_tracer()
    tr.reset()
    assert tr.events() == []
    assert tr.summary() == {}


# --- JSONL round-trip --------------------------------------------------------


def test_write_read_round_trip(tmp_path):
    path = tmp_path / "spans.jsonl"
    n = write_span_events(nested_tracer(), path, label="runA")
    assert n == 3
    # Appends: a second batch lands in the same file.
    write_span_events(nested_tracer(), path)
    events = read_span_events(path)
    assert len(events) == 6
    assert all(validate_span_event(e) == [] for e in events)
    assert {e.get("label") for e in events} == {"runA", None}


def test_write_without_recording_is_a_noop(tmp_path):
    path = tmp_path / "spans.jsonl"
    assert write_span_events(Tracer(), path) == 0
    assert not path.exists()


def test_read_strictness(tmp_path):
    path = tmp_path / "spans.jsonl"
    write_span_events(nested_tracer(), path)
    with open(path, "a") as f:
        f.write("{broken\n")
        f.write(json.dumps({"name": "x", "ts": "late", "dur": 1, "pid": 1, "tid": 1}) + "\n")
    with pytest.raises(ValueError, match="not JSON"):
        read_span_events(path)
    assert len(read_span_events(path, strict=False)) == 3


def test_validate_span_event():
    good = {"name": "a", "ts": 1.0, "dur": 0.5, "pid": 1, "tid": 2}
    assert validate_span_event(good) == []
    assert validate_span_event("x") == ["record is str, not dict"]
    assert any("missing" in p for p in validate_span_event({"name": "a"}))
    assert any("ts" in p for p in validate_span_event({**good, "ts": True}))
    assert any("pid" in p for p in validate_span_event({**good, "pid": 1.5}))


# --- Chrome trace conversion -------------------------------------------------


def test_to_chrome_trace_shape(tmp_path):
    path = tmp_path / "spans.jsonl"
    write_span_events(nested_tracer(), path, label="cfgA")
    trace = to_chrome_trace(read_span_events(path))
    assert set(trace) == {"traceEvents", "displayTimeUnit"}
    xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    ms = [e for e in trace["traceEvents"] if e["ph"] == "M"]
    assert len(xs) == 3 and len(ms) == 1
    for e in xs:
        assert e["cat"] == "edm"
        assert e["ts"] >= 0 and e["dur"] >= 0  # microseconds, rebased
        assert e["args"]["label"] == "cfgA"
    assert ms[0]["name"] == "process_name"
    # Timestamps are rebased to the earliest event.
    assert min(e["ts"] for e in xs) == 0


def test_to_chrome_trace_empty():
    assert to_chrome_trace([]) == {"traceEvents": [], "displayTimeUnit": "ms"}


def test_chrome_trace_remaps_tids_per_process():
    events = [
        {"name": "a", "ts": 0.0, "dur": 1.0, "pid": 10, "tid": 123456789},
        {"name": "b", "ts": 1.0, "dur": 1.0, "pid": 10, "tid": 123456789},
        {"name": "c", "ts": 2.0, "dur": 1.0, "pid": 11, "tid": 987654321},
    ]
    xs = [e for e in to_chrome_trace(events)["traceEvents"] if e["ph"] == "X"]
    assert [e["tid"] for e in xs] == [0, 0, 0]
    assert {e["pid"] for e in xs} == {10, 11}


# --- end-to-end: simulate / sweep / CLI --------------------------------------


def test_traced_run_is_bit_identical_and_covers_simulate_phases():
    cfg = cfg_factory()
    plain = simulate(cfg)
    tr = Tracer(record_events=True)
    traced = simulate(cfg, tracer=tr)
    timings = traced.pop("timings")
    assert traced == plain
    names = {e["name"] for e in tr.events()}
    assert any(n.startswith("simulate.") for n in names)
    assert set(timings) == names  # every aggregated path has its occurrences


def test_sweep_trace_merges_parent_and_worker_events(tmp_path):
    grid = default_grid(
        workloads=("deasna",), osds=(4,), policies=("baseline", "cmt"), seeds=(1,),
        epochs=8, requests_per_epoch=128, chunks_per_osd=8,
    )
    path = tmp_path / "spans.jsonl"
    sweep(grid, cache_dir=tmp_path / "c", workers=2, trace_events=path)
    events = read_span_events(path)
    labels = {e.get("label") for e in events}
    assert "sweep" in labels  # parent stages
    assert {cfg.cache_name() for cfg in grid} <= labels  # one batch per config
    pids = {e["pid"] for e in events}
    assert os.getpid() in pids and len(pids) >= 2  # parent + workers
    names = {e["name"] for e in events}
    assert "sweep.cache_probe" in names
    assert any(n.startswith("simulate.") for n in names)


def test_cli_run_trace_then_export(tmp_path, capsys):
    """Acceptance: the exported JSON is a valid trace_event document with
    ph "X" events matching simulate's span names."""
    spans = tmp_path / "spans.jsonl"
    assert (
        main(
            [
                "run", "--workload", "deasna", "--osds", "4",
                "--epochs", "8", "--requests", "128",
                "--trace", str(spans),
            ]
        )
        == 0
    )
    metrics = json.loads(capsys.readouterr().out)
    assert "timings" not in metrics  # stdout JSON keeps the untraced shape
    assert main(["trace", "export", str(spans)]) == 0
    out_path = capsys.readouterr().out.strip()
    assert out_path.endswith(".json")
    trace = json.load(open(out_path))
    xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert xs and all(set(e) >= {"name", "ph", "ts", "dur", "pid", "tid"} for e in xs)
    assert any(e["name"].startswith("simulate.") for e in xs)


def test_cli_trace_export_refuses_overwriting_input(tmp_path):
    spans = tmp_path / "spans.json"
    spans.write_text("")
    assert main(["trace", "export", str(spans)]) == 2


def test_cli_trace_export_empty_input_errors(tmp_path):
    empty = tmp_path / "spans.jsonl"
    empty.write_text("")
    assert main(["trace", "export", str(empty), "-o", str(tmp_path / "o.json")]) == 1
