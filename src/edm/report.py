"""Aggregate cached sweep results into the paper's comparison table.

Reads every metrics pickle in a ``.repro-cache``-style directory, drops stale
entries (engine-version or config drift, judged by recomputing the content
hash from the stored config), and aggregates policy x workload cells --
load CoV, wear spread, wear CoV, migration cost -- averaged across cluster
sizes and seeds.  Serviced runs add tail-latency columns (p50/p99/p999 and
the migration-spike ratio), elastic runs add topology columns (cold-drive
load share, drain evacuation moves), and redundant runs add reconstruction
columns (rebuild reads, rebuilt MB, lost chunks), each shown only when such
a scenario is present so plain reports keep their historical shape.  Renders
markdown (for docs/PRs) or JSON (for tooling).
"""

from __future__ import annotations

import json
import math
import pickle
from dataclasses import dataclass
from pathlib import Path

from edm.config import SimConfig, config_hash

# (metrics key, column header, format spec)
TABLE_COLUMNS = (
    ("load_cov_mean", "load CoV", ".4f"),
    ("load_peak_ratio_mean", "peak ratio", ".3f"),
    ("wear_spread", "wear spread", ".0f"),
    ("wear_cov", "wear CoV", ".4f"),
    ("migration_cost_mb", "migration MB", ".0f"),
)

# Tail-latency columns, present only on serviced runs; unserviced rows in a
# mixed report render them as "-".
SERVICE_COLUMNS = (
    ("service_lat_p50", "lat p50", ".3g"),
    ("service_lat_p99", "lat p99", ".3g"),
    ("service_lat_p999", "lat p999", ".3g"),
    ("migration_spike_ratio", "mig spike", ".3g"),
)

# Elastic-topology columns, present only on runs with a topology plan;
# static rows in a mixed report render them as "-".
TOPOLOGY_COLUMNS = (
    ("cold_load_share_final", "cold share", ".3f"),
    ("drain_moves_total", "drain moves", ".0f"),
)

# Redundancy columns, present only on runs with a redundancy scheme; plain
# rows in a mixed report render them as "-".
REDUNDANCY_COLUMNS = (
    ("reconstruction_reads_total", "recon reads", ".0f"),
    ("reconstruction_write_mb", "recon MB", ".0f"),
    ("data_loss_chunks_total", "lost chunks", ".0f"),
)


@dataclass(frozen=True)
class LoadedResults:
    """Cached metrics surviving validation, plus how many entries were stale."""

    metrics: list[dict]
    stale: int


def load_cached_metrics(cache_dir: str | Path) -> LoadedResults:
    """Load every valid metrics payload under ``cache_dir`` (sorted by name)."""
    rows: list[dict] = []
    stale = 0
    for path in sorted(Path(cache_dir).glob("*.pkl")):
        try:
            with open(path, "rb") as f:
                payload = pickle.load(f)
            cfg = SimConfig.from_dict(payload["config"])
            fresh = payload["config_hash"] == config_hash(cfg)
            metrics = payload["metrics"]
        except Exception:
            stale += 1
            continue
        if not fresh or not isinstance(metrics, dict):
            stale += 1
            continue
        rows.append(metrics)
    return LoadedResults(metrics=rows, stale=stale)


def aggregate(metrics_rows: list[dict]) -> list[dict]:
    """Mean per (workload, policy, faults, endurance, service, topology,
    redundancy) cell, sorted.

    Healthy, unrated, unserviced, static, redundancy-free runs carry none of
    the ``faults`` / ``endurance`` / ``service`` / ``topology`` /
    ``redundancy`` keys and land in the ``("", "", "", "", "")`` scenario, so
    a plain cache aggregates exactly as before; fault scenarios, endurance
    models, service models, topology plans and redundancy schemes become
    separate rows comparable side by side with their baseline.  Service,
    topology and redundancy columns are averaged only where present (and
    only over finite values -- an empty histogram's NaN percentile would
    otherwise poison the cell mean).
    """
    groups: dict[tuple[str, str, str, str, str, str, str], list[dict]] = {}
    for m in metrics_rows:
        key = (
            m["workload"],
            m["policy"],
            m.get("faults", ""),
            m.get("endurance", ""),
            m.get("service", ""),
            m.get("topology", ""),
            m.get("redundancy", ""),
        )
        groups.setdefault(key, []).append(m)
    out = []
    for key_tuple, rows in sorted(groups.items()):
        workload, policy, faults, endurance, service, topology, redundancy = key_tuple
        cell = {
            "workload": workload,
            "policy": policy,
            "faults": faults,
            "endurance": endurance,
            "service": service,
            "topology": topology,
            "redundancy": redundancy,
            "runs": len(rows),
        }
        for key, _header, _fmt in TABLE_COLUMNS:
            cell[key] = sum(r[key] for r in rows) / len(rows)
        if service:
            for key, _header, _fmt in SERVICE_COLUMNS:
                vals = [r[key] for r in rows if key in r and math.isfinite(r[key])]
                cell[key] = sum(vals) / len(vals) if vals else math.nan
        if topology:
            for key, _header, _fmt in TOPOLOGY_COLUMNS:
                vals = [r[key] for r in rows if key in r and math.isfinite(r[key])]
                cell[key] = sum(vals) / len(vals) if vals else math.nan
        if redundancy:
            for key, _header, _fmt in REDUNDANCY_COLUMNS:
                vals = [r[key] for r in rows if key in r and math.isfinite(r[key])]
                cell[key] = sum(vals) / len(vals) if vals else math.nan
        out.append(cell)
    return out


def render_markdown(cells: list[dict]) -> str:
    # The faults / endurance / service / topology columns only appear once
    # such a scenario is present, so plain healthy-cluster reports keep
    # their historical shape.
    show_faults = any(c.get("faults") for c in cells)
    show_endurance = any(c.get("endurance") for c in cells)
    show_service = any(c.get("service") for c in cells)
    show_topology = any(c.get("topology") for c in cells)
    show_redundancy = any(c.get("redundancy") for c in cells)
    headers = ["workload", "policy"]
    if show_faults:
        headers.append("faults")
    if show_endurance:
        headers.append("endurance")
    if show_service:
        headers.append("service")
    if show_topology:
        headers.append("topology")
    if show_redundancy:
        headers.append("redundancy")
    headers += ["runs"] + [h for _k, h, _f in TABLE_COLUMNS]
    if show_service:
        headers += [h for _k, h, _f in SERVICE_COLUMNS]
    if show_topology:
        headers += [h for _k, h, _f in TOPOLOGY_COLUMNS]
    if show_redundancy:
        headers += [h for _k, h, _f in REDUNDANCY_COLUMNS]
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for c in cells:
        values = [c["workload"], c["policy"]]
        if show_faults:
            values.append(c.get("faults") or "healthy")
        if show_endurance:
            values.append(c.get("endurance") or "unrated")
        if show_service:
            values.append(c.get("service") or "untimed")
        if show_topology:
            values.append(c.get("topology") or "static")
        if show_redundancy:
            values.append(c.get("redundancy") or "plain")
        values.append(str(c["runs"]))
        values += [format(c[key], fmt) for key, _h, fmt in TABLE_COLUMNS]
        if show_service:
            for key, _h, fmt in SERVICE_COLUMNS:
                v = c.get(key)
                has = v is not None and not (isinstance(v, float) and math.isnan(v))
                values.append(format(v, fmt) if has else "-")
        if show_topology:
            for key, _h, fmt in TOPOLOGY_COLUMNS:
                v = c.get(key)
                has = v is not None and not (isinstance(v, float) and math.isnan(v))
                values.append(format(v, fmt) if has else "-")
        if show_redundancy:
            for key, _h, fmt in REDUNDANCY_COLUMNS:
                v = c.get(key)
                has = v is not None and not (isinstance(v, float) and math.isnan(v))
                values.append(format(v, fmt) if has else "-")
        lines.append("| " + " | ".join(values) + " |")
    return "\n".join(lines)


def render_json(cells: list[dict]) -> str:
    return json.dumps(cells, indent=2)


def render(cells: list[dict], fmt: str = "markdown") -> str:
    if fmt == "markdown":
        return render_markdown(cells)
    if fmt == "json":
        return render_json(cells)
    raise ValueError(f"unknown report format {fmt!r}, expected 'markdown' or 'json'")
