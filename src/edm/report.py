"""Aggregate cached sweep results into the paper's comparison table.

Reads every metrics pickle in a ``.repro-cache``-style directory, drops stale
entries (engine-version or config drift, judged by recomputing the content
hash from the stored config), and aggregates policy x workload cells --
load CoV, wear spread, wear CoV, migration cost -- averaged across cluster
sizes and seeds.  Renders markdown (for docs/PRs) or JSON (for tooling).
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass
from pathlib import Path

from edm.config import SimConfig, config_hash

# (metrics key, column header, format spec)
TABLE_COLUMNS = (
    ("load_cov_mean", "load CoV", ".4f"),
    ("load_peak_ratio_mean", "peak ratio", ".3f"),
    ("wear_spread", "wear spread", ".0f"),
    ("wear_cov", "wear CoV", ".4f"),
    ("migration_cost_mb", "migration MB", ".0f"),
)


@dataclass(frozen=True)
class LoadedResults:
    """Cached metrics surviving validation, plus how many entries were stale."""

    metrics: list[dict]
    stale: int


def load_cached_metrics(cache_dir: str | Path) -> LoadedResults:
    """Load every valid metrics payload under ``cache_dir`` (sorted by name)."""
    rows: list[dict] = []
    stale = 0
    for path in sorted(Path(cache_dir).glob("*.pkl")):
        try:
            with open(path, "rb") as f:
                payload = pickle.load(f)
            cfg = SimConfig.from_dict(payload["config"])
            fresh = payload["config_hash"] == config_hash(cfg)
            metrics = payload["metrics"]
        except Exception:
            stale += 1
            continue
        if not fresh or not isinstance(metrics, dict):
            stale += 1
            continue
        rows.append(metrics)
    return LoadedResults(metrics=rows, stale=stale)


def aggregate(metrics_rows: list[dict]) -> list[dict]:
    """Mean per (workload, policy, faults, endurance) cell, sorted.

    Healthy, unrated runs carry neither a ``faults`` nor an ``endurance``
    key and land in the ``("", "")`` scenario, so a plain cache aggregates
    exactly as before; fault scenarios and endurance models become separate
    rows comparable side by side with their baseline.
    """
    groups: dict[tuple[str, str, str, str], list[dict]] = {}
    for m in metrics_rows:
        key = (m["workload"], m["policy"], m.get("faults", ""), m.get("endurance", ""))
        groups.setdefault(key, []).append(m)
    out = []
    for (workload, policy, faults, endurance), rows in sorted(groups.items()):
        cell = {
            "workload": workload,
            "policy": policy,
            "faults": faults,
            "endurance": endurance,
            "runs": len(rows),
        }
        for key, _header, _fmt in TABLE_COLUMNS:
            cell[key] = sum(r[key] for r in rows) / len(rows)
        out.append(cell)
    return out


def render_markdown(cells: list[dict]) -> str:
    # The faults / endurance columns only appear once such a scenario is
    # present, so plain healthy-cluster reports keep their historical shape.
    show_faults = any(c.get("faults") for c in cells)
    show_endurance = any(c.get("endurance") for c in cells)
    headers = ["workload", "policy"]
    if show_faults:
        headers.append("faults")
    if show_endurance:
        headers.append("endurance")
    headers += ["runs"] + [h for _k, h, _f in TABLE_COLUMNS]
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for c in cells:
        values = [c["workload"], c["policy"]]
        if show_faults:
            values.append(c.get("faults") or "healthy")
        if show_endurance:
            values.append(c.get("endurance") or "unrated")
        values.append(str(c["runs"]))
        values += [format(c[key], fmt) for key, _h, fmt in TABLE_COLUMNS]
        lines.append("| " + " | ".join(values) + " |")
    return "\n".join(lines)


def render_json(cells: list[dict]) -> str:
    return json.dumps(cells, indent=2)


def render(cells: list[dict], fmt: str = "markdown") -> str:
    if fmt == "markdown":
        return render_markdown(cells)
    if fmt == "json":
        return render_json(cells)
    raise ValueError(f"unknown report format {fmt!r}, expected 'markdown' or 'json'")
