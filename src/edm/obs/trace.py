"""Near-zero-overhead span timing.

A :class:`Tracer` aggregates named spans -- (count, total seconds) per name,
measured on the monotonic ``time.perf_counter`` clock -- entered either as a
context manager (``with tracer.span("routing"): ...``) or via the
:meth:`Tracer.wrap` decorator.  Spans nest: a span opened while another is
active is aggregated under the dotted path ``"outer.inner"``, so a summary is
unambiguous about where time was spent.

Tracing is *disabled by default*: the module-level :data:`NULL_TRACER` is an
always-off tracer whose ``span()`` returns one shared no-op context manager,
so instrumented hot paths pay only an attribute lookup and two no-op calls
per span when nobody is tracing.  The engine's per-epoch loop is vectorized
(a handful of spans per epoch, never per request), so even an *enabled*
tracer costs microseconds per epoch against array ops that cost milliseconds.

Typical use::

    from edm.obs import Tracer

    tr = Tracer()
    metrics = simulate(cfg, tracer=tr)   # metrics["timings"] == tr.summary()
    tr.summary()
    # {"simulate.workload_gen": {"count": 256, "total_s": 0.41, "mean_s": ...},
    #  "simulate.routing": {...}, ...}
"""

from __future__ import annotations

import functools
import os
import threading
import time
from typing import Callable


class _NullSpan:
    """Shared no-op context manager returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span; created per ``with`` entry on an enabled tracer."""

    __slots__ = ("_tracer", "_name", "_t0")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_Span":
        tr = self._tracer
        stack = tr._stack
        path = f"{stack[-1]}.{self._name}" if stack else self._name
        stack.append(path)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._t0
        tr = self._tracer
        path = tr._stack.pop()
        agg = tr._agg.get(path)
        if agg is None:
            tr._agg[path] = [1, elapsed]
        else:
            agg[0] += 1
            agg[1] += elapsed
        if tr._events is not None:
            tr._events.append((path, self._t0, elapsed))


class Tracer:
    """Aggregating span timer.  ``enabled`` is True for plain Tracers.

    With ``record_events=True`` the tracer additionally keeps every span
    *occurrence* -- (path, start, duration) -- not just the per-path
    aggregate, anchored to the wall clock so timelines recorded in
    different processes (sweep parent + workers) line up on one axis.
    :meth:`events` serializes them for :mod:`edm.obs.trace_export`.
    """

    enabled = True

    def __init__(self, record_events: bool = False) -> None:
        self._agg: dict[str, list] = {}   # path -> [count, total_seconds]
        self._stack: list[str] = []
        self._events: list[tuple[str, float, float]] | None = (
            [] if record_events else None
        )
        # One wall-clock anchor per tracer: perf_counter start times become
        # absolute wall seconds as ``anchor + t0``, so cross-process events
        # share a common (if NTP-grade) time axis.
        self._wall_anchor = (
            time.time() - time.perf_counter() if record_events else 0.0
        )

    def span(self, name: str) -> _Span:
        """Context manager timing one named span (nests under the active span)."""
        return _Span(self, name)

    def wrap(self, name: str | None = None) -> Callable:
        """Decorator form: time every call to the wrapped function.

        ``@tracer.wrap()`` uses the function's ``__qualname__`` as the span
        name; pass ``name=`` to override.
        """

        def decorate(fn: Callable) -> Callable:
            span_name = name if name is not None else fn.__qualname__

            @functools.wraps(fn)
            def timed(*args, **kwargs):
                with self.span(span_name):
                    return fn(*args, **kwargs)

            return timed

        return decorate

    def reset(self) -> None:
        """Drop all aggregated spans (the nesting stack must be empty)."""
        self._agg.clear()
        self._stack.clear()
        if self._events is not None:
            self._events.clear()

    @property
    def records_events(self) -> bool:
        """True when this tracer keeps individual span occurrences."""
        return self._events is not None

    def events(self) -> list[dict]:
        """Recorded span occurrences as serializable records, start order.

        Each record carries ``name`` (dotted span path), ``ts`` (wall-clock
        start, seconds), ``dur`` (seconds), and the recording ``pid`` /
        ``tid`` -- the exact line format :func:`edm.obs.trace_export.
        write_span_events` streams and Perfetto export consumes.  Empty when
        the tracer was built without ``record_events=True``.
        """
        if not self._events:
            return []
        pid = os.getpid()
        tid = threading.get_ident()
        out = [
            {
                "name": name,
                "ts": self._wall_anchor + t0,
                "dur": dur,
                "pid": pid,
                "tid": tid,
            }
            for name, t0, dur in self._events
        ]
        out.sort(key=lambda e: e["ts"])
        return out

    def summary(self) -> dict[str, dict]:
        """Aggregated spans: ``{path: {count, total_s, mean_s}}``, insertion order."""
        return {
            path: {
                "count": count,
                "total_s": total,
                "mean_s": total / count if count else 0.0,
            }
            for path, (count, total) in self._agg.items()
        }

    def total_seconds(self, prefix: str = "") -> float:
        """Sum of ``total_s`` over *top-level* spans matching ``prefix``.

        Only spans with no parent (no ``.`` beyond the prefix itself) are
        summed, so nested spans are not double-counted.
        """
        total = 0.0
        for path, (_, secs) in self._agg.items():
            if not path.startswith(prefix):
                continue
            if "." in path[len(prefix):].lstrip("."):
                continue
            total += secs
        return total


class NullTracer(Tracer):
    """Always-disabled tracer: spans are shared no-ops, summaries empty."""

    enabled = False

    def span(self, name: str) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def wrap(self, name: str | None = None) -> Callable:
        def decorate(fn: Callable) -> Callable:
            return fn

        return decorate


#: Module-level disabled tracer; instrumented code defaults to this, so
#: tracing costs nothing unless a caller passes a real Tracer.
NULL_TRACER = NullTracer()
