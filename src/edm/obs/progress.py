"""Live single-line sweep progress.

Renders ``done/total``, elapsed, ETA and cumulative simulated req/s to a
terminal as results land (``\\r``-rewritten, final newline on close).  Only
meaningful with the submit/``as_completed`` dispatch in :func:`edm.sweep.sweep`,
where the parent observes completions one at a time.
"""

from __future__ import annotations

import sys
import time


def _fmt_eta(seconds: float) -> str:
    if seconds != seconds or seconds < 0 or seconds == float("inf"):  # NaN/neg/inf
        return "--:--"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}:{seconds % 3600 // 60:02d}:{seconds % 60:02d}"
    return f"{seconds // 60:02d}:{seconds % 60:02d}"


class ProgressLine:
    """One ``\\r``-rewritten status line; a no-op when ``enabled`` is False."""

    def __init__(self, total: int, enabled: bool = True, stream=None, min_interval: float = 0.1):
        self.total = total
        self.enabled = enabled and total > 0
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.done = 0
        self.requests = 0
        self._t0 = time.perf_counter()
        self._last_draw = 0.0
        self._drew = False

    def advance(self, requests: int = 0) -> None:
        """One config finished, having simulated ``requests`` requests."""
        self.done += 1
        self.requests += requests
        if not self.enabled:
            return
        now = time.perf_counter()
        if self.done < self.total and now - self._last_draw < self.min_interval:
            return
        self._last_draw = now
        elapsed = now - self._t0
        rate = self.requests / elapsed if elapsed > 0 else 0.0
        eta = elapsed / self.done * (self.total - self.done) if self.done else float("inf")
        line = (
            f"\r[{self.done}/{self.total}] "
            f"{elapsed:5.1f}s elapsed | eta {_fmt_eta(eta)} | {rate:,.0f} req/s"
        )
        self.stream.write(line)
        self.stream.flush()
        self._drew = True

    def close(self) -> None:
        """Terminate the live line (writes the final newline if anything drew)."""
        if self._drew:
            self.stream.write("\n")
            self.stream.flush()
            self._drew = False
