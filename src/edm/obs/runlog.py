"""Structured JSONL run logs.

One append-only file records everything a sweep did: a ``sweep_start`` /
``sweep_end`` pair from the parent process and a ``run_start`` / ``run_end``
pair per simulated config, emitted *from inside the worker* that ran it
(mirroring the ``.npz`` streaming path, so the parent never buffers log
payloads).  Every record is a single JSON object on its own line; writers
open the file in append mode and emit each record as one ``write`` of one
``\\n``-terminated line, which keeps concurrent worker appends intact on
POSIX filesystems.

Record schema (all records)::

    event      "sweep_start" | "sweep_end" | "run_start" | "run_end"
    schema     record schema version (int, :data:`RUNLOG_SCHEMA_VERSION`);
               readers reject records missing it and skip records stamped
               newer than they understand (forward compatibility)
    ts         unix wall-clock seconds (float)
    sweep_id   hex id correlating every record of one sweep() call
    pid        writing process id

``run_*`` records add ``run_id``, ``config`` (cache name), ``config_hash``
and ``engine_version``; ``run_end`` adds ``wall_s``, ``total_requests``,
``requests_per_sec`` and ``timings`` (span summary from the worker-side
tracer).  ``sweep_end`` adds ``wall_s``, the cache counters
(``cache_hits`` / ``cache_misses`` / ``cache_invalidated``), ``simulated``
and the parent-side span summary.  ``fault`` records tag each fired
fault-injection event with ``run_id``, ``config``, ``kind``
(fail/slow/hiccup), ``osd``, ``epoch`` and ``replaced`` (chunks re-placed
off a failed OSD).  ``topology`` records tag each fired topology event with
``run_id``, ``config``, ``kind`` (add/drain), ``epoch``, ``count`` (drives
added; 0 for drains), ``osd`` (drain target; -1 for adds), ``moved``
(chunks evacuated off a drained OSD) and ``osds_total`` (cluster size after
the event).  ``service`` records (one per serviced run, before its
``run_end``) carry the tail-latency numbers -- ``lat_p50`` / ``lat_p99`` /
``lat_p999`` -- plus ``requests`` offered and ``dropped`` by bounded
queues; non-finite percentiles (an empty histogram, an overflowing tail)
serialize as JSON's ``NaN`` / ``Infinity`` literals, which
:func:`read_run_log` parses back.

Use :func:`read_run_log` to parse a file back and :func:`validate_record`
to check any single record against the schema.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from pathlib import Path

EVENTS = (
    "sweep_start", "sweep_end", "run_start", "run_end", "fault", "topology",
    "service",
)

#: Bump when the record field set changes incompatibly.  Readers skip (or,
#: in strict mode, reject) records stamped with a *newer* schema than they
#: understand, so old tooling degrades by ignoring future records instead of
#: misparsing them.  v2: the ``schema`` field itself became mandatory.
#: v3: added the ``topology`` event type (scale-out / drain records).
RUNLOG_SCHEMA_VERSION = 3

#: Fields every record must carry.
BASE_FIELDS = ("event", "schema", "ts", "sweep_id", "pid")
#: Additional required fields per event type.
EVENT_FIELDS = {
    "sweep_start": ("configs", "pending"),
    "sweep_end": (
        "wall_s",
        "cache_hits",
        "cache_misses",
        "cache_invalidated",
        "simulated",
        "timings",
    ),
    "run_start": ("run_id", "config", "config_hash", "engine_version"),
    "run_end": (
        "run_id",
        "config",
        "config_hash",
        "engine_version",
        "wall_s",
        "total_requests",
        "requests_per_sec",
        "timings",
    ),
    "fault": ("run_id", "config", "kind", "osd", "epoch", "replaced"),
    "topology": (
        "run_id", "config", "kind", "epoch", "count", "osd", "moved",
        "osds_total",
    ),
    "service": ("run_id", "config", "lat_p50", "lat_p99", "lat_p999", "requests", "dropped"),
}


def new_id() -> str:
    """Random 12-hex id for sweeps and runs."""
    return uuid.uuid4().hex[:12]


class RunLogWriter:
    """Appends JSONL records to one file; safe to use from many processes.

    Each :meth:`emit` opens the file, writes exactly one line, and closes it,
    so a writer object is cheap to construct per worker task and never holds
    a descriptor across fork boundaries.
    """

    def __init__(self, path: str | os.PathLike, sweep_id: str | None = None):
        self.path = Path(path)
        self.sweep_id = sweep_id if sweep_id is not None else new_id()

    def emit(self, event: str, **fields) -> dict:
        """Write one record; returns the record dict that was written."""
        if event not in EVENTS:
            raise ValueError(f"unknown run-log event {event!r}, expected one of {EVENTS}")
        record = {
            "event": event,
            "schema": RUNLOG_SCHEMA_VERSION,
            "ts": time.time(),
            "sweep_id": self.sweep_id,
            "pid": os.getpid(),
            **fields,
        }
        line = json.dumps(record, sort_keys=False, separators=(",", ":")) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as f:
            f.write(line)
        return record


def validate_record(record: dict) -> list[str]:
    """Return a list of schema problems with ``record`` (empty == valid)."""
    problems: list[str] = []
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, not dict"]
    event = record.get("event")
    if event not in EVENTS:
        return [f"unknown event {event!r}"]
    if "schema" in record:
        schema = record["schema"]
        if not isinstance(schema, int) or isinstance(schema, bool):
            return [f"{event}: schema {schema!r} is not an int"]
        if schema > RUNLOG_SCHEMA_VERSION:
            return [
                f"{event}: schema {schema} newer than supported "
                f"{RUNLOG_SCHEMA_VERSION}"
            ]
    for field in BASE_FIELDS + EVENT_FIELDS[event]:
        if field not in record:
            problems.append(f"{event}: missing field {field!r}")
    if "ts" in record and not isinstance(record["ts"], (int, float)):
        problems.append("ts is not a number")
    if "timings" in record and not isinstance(record["timings"], dict):
        problems.append("timings is not a dict")
    return problems


def read_run_log(path: str | os.PathLike, strict: bool = True) -> list[dict]:
    """Parse a JSONL run log back into record dicts.

    ``strict=True`` (the default) raises ``ValueError`` on the first
    malformed line or schema violation; ``strict=False`` skips bad lines.
    """
    records: list[dict] = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as e:
                if strict:
                    raise ValueError(f"{path}:{lineno}: not JSON: {e}") from e
                continue
            problems = validate_record(record)
            if problems:
                if strict:
                    raise ValueError(f"{path}:{lineno}: {'; '.join(problems)}")
                continue
            records.append(record)
    return records
