"""Runtime observability: tracing, structured run logs, perf history.

Three pillars, all off the hot path by default:

* :mod:`edm.obs.trace` -- :class:`Tracer` span timing (context manager +
  decorator, monotonic clocks, nested spans); :data:`NULL_TRACER` is the
  always-off default the engine and sweep instrument against.
  :mod:`edm.obs.trace_export` turns recorded span events into
  Chrome/Perfetto ``trace_event`` JSON timelines.
* :mod:`edm.obs.runlog` -- JSONL run logs (:class:`RunLogWriter`,
  :func:`read_run_log`, :func:`validate_record`): one ``run_start``/``run_end``
  record per config emitted from inside workers, plus sweep-level records.
* :mod:`edm.obs.decisions` -- migration decision provenance: per-pick score
  decompositions captured by :class:`DecisionRecorder`, queried by
  ``edm explain``.
* :mod:`edm.obs.history` -- ``BENCH_history.jsonl`` perf trajectory
  (:func:`append_history`) and the ``--compare`` regression gate
  (:func:`compare_reports`).

Plus :mod:`edm.obs.log` (the package logger behind ``-v``/``--log-level``)
and :mod:`edm.obs.progress` (the live sweep progress line).
"""

from edm.obs.decisions import (
    Decision,
    DecisionRecorder,
    attribution_summary,
    query_decisions,
    read_decision_log,
    validate_decision,
)
from edm.obs.history import (
    DEFAULT_HISTORY,
    Regression,
    append_history,
    baseline_from_history,
    compare_reports,
    git_sha,
    load_report,
    read_history,
)
from edm.obs.log import configure as configure_logging
from edm.obs.log import get_logger
from edm.obs.progress import ProgressLine
from edm.obs.runlog import (
    RUNLOG_SCHEMA_VERSION,
    RunLogWriter,
    new_id,
    read_run_log,
    validate_record,
)
from edm.obs.trace import NULL_TRACER, NullTracer, Tracer
from edm.obs.trace_export import (
    export_chrome_trace,
    read_span_events,
    to_chrome_trace,
    write_span_events,
)

__all__ = [
    "DEFAULT_HISTORY",
    "Decision",
    "DecisionRecorder",
    "NULL_TRACER",
    "NullTracer",
    "ProgressLine",
    "RUNLOG_SCHEMA_VERSION",
    "Regression",
    "RunLogWriter",
    "Tracer",
    "append_history",
    "attribution_summary",
    "baseline_from_history",
    "compare_reports",
    "configure_logging",
    "export_chrome_trace",
    "get_logger",
    "git_sha",
    "load_report",
    "new_id",
    "query_decisions",
    "read_decision_log",
    "read_run_log",
    "read_history",
    "read_span_events",
    "to_chrome_trace",
    "validate_decision",
    "validate_record",
    "write_span_events",
]
