"""Runtime observability: tracing, structured run logs, perf history.

Three pillars, all off the hot path by default:

* :mod:`edm.obs.trace` -- :class:`Tracer` span timing (context manager +
  decorator, monotonic clocks, nested spans); :data:`NULL_TRACER` is the
  always-off default the engine and sweep instrument against.
* :mod:`edm.obs.runlog` -- JSONL run logs (:class:`RunLogWriter`,
  :func:`read_run_log`, :func:`validate_record`): one ``run_start``/``run_end``
  record per config emitted from inside workers, plus sweep-level records.
* :mod:`edm.obs.history` -- ``BENCH_history.jsonl`` perf trajectory
  (:func:`append_history`) and the ``--compare`` regression gate
  (:func:`compare_reports`).

Plus :mod:`edm.obs.log` (the package logger behind ``-v``/``--log-level``)
and :mod:`edm.obs.progress` (the live sweep progress line).
"""

from edm.obs.history import (
    DEFAULT_HISTORY,
    Regression,
    append_history,
    compare_reports,
    git_sha,
    load_report,
    read_history,
)
from edm.obs.log import configure as configure_logging
from edm.obs.log import get_logger
from edm.obs.progress import ProgressLine
from edm.obs.runlog import RunLogWriter, new_id, read_run_log, validate_record
from edm.obs.trace import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "DEFAULT_HISTORY",
    "NULL_TRACER",
    "NullTracer",
    "ProgressLine",
    "Regression",
    "RunLogWriter",
    "Tracer",
    "append_history",
    "compare_reports",
    "configure_logging",
    "get_logger",
    "git_sha",
    "load_report",
    "new_id",
    "read_run_log",
    "read_history",
    "validate_record",
]
