"""Decision provenance: why each migration landed where it did.

EDM's core claim is that CMT's blended load/wear scoring picks *better*
destinations than pure load balancing.  Aggregate outcomes (CoVs, wear
spread) show *that* it wins; this module records *why*: one
:class:`Decision` per destination pick -- interval migration, failure
re-placement, wear-out re-placement, or drain evacuation -- carrying the
winning OSD's
per-term score decomposition (CMT: load, wear, wear-out risk; the other
policies: projected load) and the full losing candidate set with scores.

The capture path is strictly opt-in: the engine only runs policies through
their explained selection when a recorder overrides
:meth:`~edm.telemetry.Recorder.on_decision`, and the explained path picks
bit-identically to the plain one (``tests/test_decisions.py`` pins both),
so an explained run's metrics equal an unexplained run's and unexplained
runs never leave the fused-kernel hot path.

:class:`DecisionRecorder` is the built-in sink: a bounded ring buffer
(oldest decisions evicted first) plus an optional JSONL file streamed one
record per line -- ``edm run --explain[=PATH]``.  Query a written log back
with :func:`read_decision_log` / :func:`query_decisions` (the ``edm
explain`` CLI), and summarize which score term was *decisive* -- the term
that gave the winner its margin over the runner-up -- per policy with
:func:`attribution_summary`.
"""

from __future__ import annotations

import json
import os
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from edm.telemetry.recorder import Recorder

#: Bump when the decision-record field set changes incompatibly.
DECISION_SCHEMA_VERSION = 1

#: What drove a destination pick.
TRIGGERS = ("threshold", "fault", "wearout", "drain")

#: Fields every serialized decision record must carry.
DECISION_FIELDS = (
    "schema",
    "epoch",
    "trigger",
    "policy",
    "chunk",
    "src",
    "dst",
    "candidates",
    "terms",
    "scores",
)


@dataclass(frozen=True)
class Decision:
    """One destination pick: the winner, the losers, and the arithmetic.

    ``terms`` maps score-term names to per-candidate values aligned with
    ``candidates`` (lower total wins); ``scores`` is their left-to-right
    fold -- exactly what the policy argmin'd, so ``dst`` is always
    ``candidates[argmin(scores)]``.
    """

    epoch: int
    trigger: str  # "threshold" | "fault" | "wearout" | "drain"
    policy: str
    chunk: int
    src: int
    dst: int
    candidates: tuple[int, ...]
    terms: dict[str, tuple[float, ...]] = field(compare=False)
    scores: tuple[float, ...] = field(compare=False)

    def to_record(self) -> dict:
        """Serialize to the JSONL record format (schema-stamped plain dict)."""
        return {
            "schema": DECISION_SCHEMA_VERSION,
            "epoch": self.epoch,
            "trigger": self.trigger,
            "policy": self.policy,
            "chunk": self.chunk,
            "src": self.src,
            "dst": self.dst,
            "candidates": list(self.candidates),
            "terms": {k: list(v) for k, v in self.terms.items()},
            "scores": list(self.scores),
        }


def winner_index(record: dict) -> int:
    """Index of the winning candidate within ``record["candidates"]``."""
    return record["candidates"].index(record["dst"])


def runner_up_index(record: dict) -> int | None:
    """Index of the best losing candidate, or None for a forced pick.

    The runner-up is the lowest-scored candidate other than the winner
    (first index on ties, matching argmin semantics).
    """
    scores = record["scores"]
    win = winner_index(record)
    best = None
    for i, s in enumerate(scores):
        if i == win:
            continue
        if best is None or s < scores[best]:
            best = i
    return best


def decisive_term(record: dict) -> str | None:
    """The score term that gave the winner its margin over the runner-up.

    For each term, the winner's *advantage* is ``term[runner_up] -
    term[winner]`` (positive when the term favored the winner); the decisive
    term is the one with the largest advantage -- remove it and the winner's
    lead shrinks the most.  Single-term policies always report that term
    ("load was decisive" is the honest answer for pure load balancing).
    Returns None for forced picks (a single candidate has no runner-up).
    """
    ru = runner_up_index(record)
    if ru is None:
        return None
    win = winner_index(record)
    best_name = None
    best_margin = None
    for name, vals in record["terms"].items():
        margin = vals[ru] - vals[win]
        if best_margin is None or margin > best_margin:
            best_name, best_margin = name, margin
    return best_name


def validate_decision(record: dict) -> list[str]:
    """Schema problems with one decision record (empty list == valid)."""
    problems: list[str] = []
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, not dict"]
    for fld in DECISION_FIELDS:
        if fld not in record:
            problems.append(f"missing field {fld!r}")
    if problems:
        return problems
    if not isinstance(record["schema"], int):
        return ["schema is not an int"]
    if record["schema"] > DECISION_SCHEMA_VERSION:
        return [
            f"schema {record['schema']} newer than supported {DECISION_SCHEMA_VERSION}"
        ]
    if record["trigger"] not in TRIGGERS:
        problems.append(f"unknown trigger {record['trigger']!r}")
    n = len(record["candidates"])
    if len(record["scores"]) != n:
        problems.append(f"scores length {len(record['scores'])} != candidates {n}")
    for name, vals in record["terms"].items():
        if len(vals) != n:
            problems.append(f"term {name!r} length {len(vals)} != candidates {n}")
    if not problems and record["dst"] not in record["candidates"]:
        problems.append(f"dst {record['dst']} not among candidates")
    return problems


class DecisionRecorder(Recorder):
    """Captures decisions into a bounded ring buffer and an optional JSONL sink.

    ``capacity`` bounds in-memory retention (oldest evicted first -- a
    million-epoch run cannot OOM the recorder); ``path`` streams every
    decision as one JSON line the moment it fires, so even an interrupted
    run keeps its provenance on disk.  Attaching this recorder is what flips
    the engine onto the explained selection path.
    """

    def __init__(self, capacity: int = 4096, path: str | os.PathLike | None = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.decisions: deque[Decision] = deque(maxlen=capacity)
        self.path = Path(path) if path is not None else None
        self.total = 0  # all decisions seen, including ring-evicted ones
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)

    def on_decision(self, state, decision: Decision) -> None:
        self.decisions.append(decision)
        self.total += 1
        if self.path is not None:
            line = json.dumps(decision.to_record(), separators=(",", ":")) + "\n"
            with open(self.path, "a", encoding="utf-8") as f:
                f.write(line)

    def records(self) -> list[dict]:
        """The retained decisions, serialized (oldest first)."""
        return [d.to_record() for d in self.decisions]

    def attribution(self) -> dict:
        """Attribution summary over the retained decisions (see module docs)."""
        return attribution_summary(self.records())


def read_decision_log(path: str | os.PathLike, strict: bool = True) -> list[dict]:
    """Parse a decision JSONL log back into record dicts.

    ``strict=True`` raises ``ValueError`` on the first malformed line or
    schema violation; ``strict=False`` skips bad lines (forward-compat with
    newer-schema records).
    """
    records: list[dict] = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as e:
                if strict:
                    raise ValueError(f"{path}:{lineno}: not JSON: {e}") from e
                continue
            problems = validate_decision(record)
            if problems:
                if strict:
                    raise ValueError(f"{path}:{lineno}: {'; '.join(problems)}")
                continue
            records.append(record)
    return records


def query_decisions(
    records: list[dict],
    chunk: int | None = None,
    osd: int | None = None,
    epoch: int | None = None,
    trigger: str | None = None,
    policy: str | None = None,
) -> list[dict]:
    """Filter decision records; ``osd`` matches source *or* destination."""
    out = []
    for r in records:
        if chunk is not None and r["chunk"] != chunk:
            continue
        if osd is not None and r["src"] != osd and r["dst"] != osd:
            continue
        if epoch is not None and r["epoch"] != epoch:
            continue
        if trigger is not None and r["trigger"] != trigger:
            continue
        if policy is not None and r["policy"] != policy:
            continue
        out.append(r)
    return out


def attribution_summary(records: list[dict]) -> dict:
    """Per-policy: how often each score term was the decisive one.

    Returns ``{policy: {"decisions": n, "forced": f, "decisive": {term:
    fraction}}}`` where fractions are over the non-forced decisions (picks
    with at least one losing candidate).  This is the paper's argument in
    one number: for CMT, the fraction of moves where ``wear`` (or
    ``wearout_risk``) -- not ``load`` -- determined the destination.
    """
    out: dict[str, dict] = {}
    for r in records:
        cell = out.setdefault(
            r["policy"], {"decisions": 0, "forced": 0, "counts": {}}
        )
        cell["decisions"] += 1
        term = decisive_term(r)
        if term is None:
            cell["forced"] += 1
        else:
            cell["counts"][term] = cell["counts"].get(term, 0) + 1
    for cell in out.values():
        contested = cell["decisions"] - cell["forced"]
        cell["decisive"] = {
            term: count / contested for term, count in sorted(cell["counts"].items())
        }
        del cell["counts"]
    return out


def format_decision(record: dict) -> str:
    """Human-readable per-decision breakdown (the ``edm explain`` output).

    One header line (who moved where, and why the round fired), then one
    line per candidate with every score term and the total, winner and
    runner-up marked.
    """
    win = winner_index(record)
    ru = runner_up_index(record)
    dterm = decisive_term(record)
    lines = [
        f"epoch {record['epoch']} [{record['trigger']}] {record['policy']}: "
        f"chunk {record['chunk']} osd {record['src']} -> osd {record['dst']}"
        + (f"  (decisive term: {dterm})" if dterm else "  (forced: sole candidate)")
    ]
    names = list(record["terms"])
    header = "    osd   " + "".join(f"{n:>14s}" for n in names) + f"{'total':>14s}"
    lines.append(header)
    for i, cand in enumerate(record["candidates"]):
        mark = "*" if i == win else ("~" if i == ru else " ")
        row = f"  {mark} {cand:<6d}"
        row += "".join(f"{record['terms'][n][i]:>14.6g}" for n in names)
        row += f"{record['scores'][i]:>14.6g}"
        lines.append(row)
    lines.append("  (* winner, ~ runner-up)")
    return "\n".join(lines)


def format_attribution(summary: dict) -> str:
    """Render :func:`attribution_summary` as aligned text lines."""
    lines = []
    for policy, cell in sorted(summary.items()):
        parts = [f"{policy}: {cell['decisions']} decisions"]
        if cell["forced"]:
            parts.append(f"{cell['forced']} forced")
        for term, frac in cell["decisive"].items():
            parts.append(f"{term} decisive {frac * 100:.1f}%")
        lines.append("  " + ", ".join(parts))
    return "\n".join(lines) if lines else "  (no decisions)"
