"""Perf history and the regression gate.

``BENCH_sweep.json`` is a single overwritable snapshot; this module gives the
bench a *trajectory* and a gate:

* :func:`append_history` appends each bench report -- stamped with the git
  SHA and a wall-clock timestamp -- as one JSONL line to
  ``BENCH_history.jsonl``, so `edm bench --append-history` accumulates a
  per-commit perf record that plots and bisects.
* :func:`compare_reports` diffs the throughput metrics of a fresh report
  against a baseline report and returns the metrics that regressed more
  than ``max_regression`` (a fraction: 0.15 == "fail if >15% slower").
  ``edm bench --compare baseline.json`` exits nonzero when that list is
  non-empty, which is what CI gates on.

Throughput metrics compared (higher is better):

    sweep.requests_per_sec_cold     cold 64-config sweep throughput
    single_config.requests_per_sec  bare single-config engine throughput

Reports are only comparable like-for-like: a ``--quick`` report must be
compared against a ``--quick`` baseline (grids differ otherwise), and
:func:`compare_reports` refuses mismatched pairs.  Kernel backends are
like-for-like too: when the baseline comes out of a ``.jsonl`` history,
:func:`baseline_from_history` picks the newest entry run on the *same*
kernel backend as the current report, and errors clearly when none exists.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path

DEFAULT_HISTORY = Path("BENCH_history.jsonl")

#: (dotted path into the report, short label) of gated throughput metrics.
THROUGHPUT_METRICS = (
    ("sweep.requests_per_sec_cold", "cold-sweep throughput"),
    ("single_config.requests_per_sec", "single-config throughput"),
)


def git_sha(cwd: str | os.PathLike | None = None) -> str:
    """Current commit SHA, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def append_history(
    report: dict,
    path: str | os.PathLike = DEFAULT_HISTORY,
    sha: str | None = None,
) -> dict:
    """Append one history entry (report + git SHA + timestamp) as a JSONL line."""
    entry = {
        "ts": time.time(),
        "git_sha": sha if sha is not None else git_sha(),
        "report": report,
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as f:
        f.write(json.dumps(entry, separators=(",", ":")) + "\n")
    return entry


def read_history(path: str | os.PathLike = DEFAULT_HISTORY) -> list[dict]:
    """All history entries, oldest first."""
    entries = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def baseline_from_history(
    path: str | os.PathLike,
    kernel: str,
    quick: bool | None = None,
) -> dict:
    """Most recent history entry whose report ran the same kernel backend.

    Gating a numba run against a numpy baseline (or vice versa) measures the
    backend gap, not a regression -- so when ``bench --compare`` is pointed
    at a ``.jsonl`` history instead of a single report, the baseline is the
    newest entry matching this run's ``kernel`` (and, when ``quick`` is
    given, its quick/full mode).  Raises ``ValueError`` with the backends
    actually present when no same-backend entry exists, rather than silently
    comparing across backends.
    """
    entries = read_history(path)
    if not entries:
        raise ValueError(f"history {path} is empty; nothing to compare against")
    seen: set[str] = set()
    for entry in reversed(entries):
        report = entry.get("report")
        if not isinstance(report, dict):
            continue
        entry_kernel = report.get("kernel", "unknown")
        seen.add(entry_kernel)
        if quick is not None and bool(report.get("quick")) != quick:
            continue
        if entry_kernel == kernel:
            return report
    mode = "" if quick is None else (" quick" if quick else " full")
    raise ValueError(
        f"history {path} has no{mode} entry for kernel {kernel!r} "
        f"(backends present: {sorted(seen)}); append one with "
        f"`python -m edm.bench --kernel {kernel} --append-history {path}`"
    )


def _dig(report: dict, dotted: str):
    node = report
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


@dataclass(frozen=True)
class Regression:
    """One gated metric that fell more than the allowed fraction."""

    metric: str
    label: str
    baseline: float
    current: float

    @property
    def change_frac(self) -> float:
        """Relative change, negative == slower than baseline."""
        return (self.current - self.baseline) / self.baseline if self.baseline else 0.0

    def describe(self) -> str:
        return (
            f"{self.label} ({self.metric}): {self.current:,.0f} req/s vs "
            f"baseline {self.baseline:,.0f} req/s ({self.change_frac * 100:+.1f}%)"
        )


def compare_reports(
    current: dict, baseline: dict, max_regression: float = 0.15
) -> list[Regression]:
    """Throughput metrics of ``current`` that regressed past the threshold.

    Returns an empty list when everything is within ``max_regression`` of the
    baseline.  Raises ``ValueError`` for incomparable reports (quick vs full)
    or a baseline missing the gated metrics.
    """
    if max_regression < 0:
        raise ValueError(f"max_regression must be >= 0, got {max_regression}")
    if bool(current.get("quick")) != bool(baseline.get("quick")):
        raise ValueError(
            "refusing to compare a quick report against a full baseline "
            f"(current quick={current.get('quick')}, baseline quick={baseline.get('quick')})"
        )
    regressions: list[Regression] = []
    for dotted, label in THROUGHPUT_METRICS:
        base = _dig(baseline, dotted)
        cur = _dig(current, dotted)
        if base is None:
            raise ValueError(f"baseline report is missing metric {dotted!r}")
        if cur is None:
            raise ValueError(f"current report is missing metric {dotted!r}")
        # A zero/negative/non-numeric baseline has no meaningful regression
        # ratio: comparing against it would either divide by zero or wave
        # every regression through (anything is >= 0% of 0).  Refuse loudly
        # instead; bench --compare surfaces this as a clear error + exit 2.
        if not isinstance(base, (int, float)) or isinstance(base, bool) or base <= 0:
            raise ValueError(
                f"baseline metric {dotted!r} is not a positive number (got {base!r}); "
                "cannot gate on a regression ratio against it"
            )
        if not isinstance(cur, (int, float)) or isinstance(cur, bool) or cur < 0:
            raise ValueError(
                f"current metric {dotted!r} is not a non-negative number (got {cur!r})"
            )
        if cur < base * (1.0 - max_regression):
            regressions.append(
                Regression(metric=dotted, label=label, baseline=float(base), current=float(cur))
            )
    return regressions


def load_report(path: str | os.PathLike) -> dict:
    """Read one bench report JSON (as written by ``edm bench``)."""
    report = json.loads(Path(path).read_text())
    if not isinstance(report, dict):
        raise ValueError(f"{path} is not a bench report (expected a JSON object)")
    return report
