"""Package logger.

All CLI/bench diagnostics go through ``edm.*`` loggers instead of bare
``print``, so ``-v`` / ``--log-level`` controls the noise floor in one place
and run-log/trace chatter can be silenced without losing primary output
(results, tables and JSON still go to stdout).

``configure`` is idempotent per call: it rebinds the single stream handler
to the *current* ``sys.stderr`` each time, so repeated CLI invocations in
one process (tests, notebooks) never stack handlers or write to a stale
stream.
"""

from __future__ import annotations

import logging
import sys

ROOT_LOGGER_NAME = "edm"

_FORMAT = "%(levelname)s %(name)s: %(message)s"


def get_logger(name: str | None = None) -> logging.Logger:
    """The package logger, or a ``edm.<name>`` child."""
    if name is None or name == ROOT_LOGGER_NAME:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure(level: int | str = logging.INFO) -> logging.Logger:
    """(Re)configure the package logger to write to the current stderr."""
    if isinstance(level, str):
        parsed = logging.getLevelName(level.upper())
        if not isinstance(parsed, int):
            raise ValueError(f"unknown log level {level!r}")
        level = parsed
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger


def level_from_args(verbose: int, log_level: str | None) -> str:
    """Resolve the global ``-v`` count / ``--log-level`` pair to a level name.

    ``--log-level`` wins when given; otherwise WARNING by default, INFO at
    ``-v`` and DEBUG at ``-vv``.
    """
    if log_level:
        return log_level.upper()
    if verbose >= 2:
        return "DEBUG"
    if verbose == 1:
        return "INFO"
    return "WARNING"
