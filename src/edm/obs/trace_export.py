"""Span timeline export: raw span-event JSONL -> Chrome/Perfetto trace JSON.

:class:`~edm.obs.trace.Tracer` with ``record_events=True`` keeps every span
occurrence (wall-clock start, duration, recording pid/tid), not just the
per-path aggregate.  :func:`write_span_events` streams those occurrences as
JSONL -- one appendable file that sweep workers and the parent process all
write into (``edm run --trace PATH`` / ``edm sweep --trace PATH``) -- and
:func:`to_chrome_trace` converts the merged timeline into the Chrome
``trace_event`` JSON format (``ph: "X"`` complete events, microsecond
timestamps) that https://ui.perfetto.dev and ``chrome://tracing`` open
directly: one track per process, spans nested by containment, so "where did
the sweep's wall time go" becomes a picture instead of a table.

``edm trace export events.jsonl -o trace.json`` is the CLI wrapper
(:func:`export_chrome_trace`).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

#: Fields every span-event record must carry.
SPAN_EVENT_FIELDS = ("name", "ts", "dur", "pid", "tid")


def validate_span_event(record: dict) -> list[str]:
    """Schema problems with one span-event record (empty list == valid)."""
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, not dict"]
    problems = [f"missing field {f!r}" for f in SPAN_EVENT_FIELDS if f not in record]
    if problems:
        return problems
    if not isinstance(record["name"], str):
        problems.append("name is not a string")
    for f in ("ts", "dur"):
        if not isinstance(record[f], (int, float)) or isinstance(record[f], bool):
            problems.append(f"{f} is not a number")
    for f in ("pid", "tid"):
        if not isinstance(record[f], int) or isinstance(record[f], bool):
            problems.append(f"{f} is not an int")
    return problems


def write_span_events(tracer, path: str | os.PathLike, label: str | None = None) -> int:
    """Append a tracer's recorded span events to a JSONL file.

    One JSON object per line, written as a single append so concurrent
    workers' batches interleave without tearing lines (the run-log
    convention).  ``label`` tags every event (e.g. the config's cache name)
    so a merged multi-run timeline stays attributable.  Returns the number
    of events written; a tracer without ``record_events=True`` writes none.
    """
    events = tracer.events()
    if not events:
        return 0
    if label is not None:
        for event in events:
            event["label"] = label
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    lines = "".join(json.dumps(e, separators=(",", ":")) + "\n" for e in events)
    with open(out, "a", encoding="utf-8") as f:
        f.write(lines)
    return len(events)


def read_span_events(path: str | os.PathLike, strict: bool = True) -> list[dict]:
    """Parse a span-event JSONL file back into records, sorted by start time.

    ``strict=True`` raises ``ValueError`` on the first malformed line;
    ``strict=False`` skips bad lines.
    """
    records: list[dict] = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as e:
                if strict:
                    raise ValueError(f"{path}:{lineno}: not JSON: {e}") from e
                continue
            problems = validate_span_event(record)
            if problems:
                if strict:
                    raise ValueError(f"{path}:{lineno}: {'; '.join(problems)}")
                continue
            records.append(record)
    records.sort(key=lambda e: (e["ts"], -e["dur"]))
    return records


def to_chrome_trace(events: list[dict]) -> dict:
    """Convert span-event records to a Chrome ``trace_event`` JSON object.

    Emits one ``ph: "X"`` (complete) event per span with microsecond
    timestamps rebased to the earliest event, plus ``ph: "M"`` metadata
    naming each process track.  Thread ids are remapped to small ordinals
    per process so the viewer's track labels stay readable.
    """
    trace_events: list[dict] = []
    if events:
        t0 = min(e["ts"] for e in events)
        tid_map: dict[tuple[int, int], int] = {}
        for e in events:
            tid = tid_map.setdefault((e["pid"], e["tid"]), len(
                [k for k in tid_map if k[0] == e["pid"]]
            ))
            entry = {
                "name": e["name"],
                "cat": "edm",
                "ph": "X",
                "ts": (e["ts"] - t0) * 1e6,
                "dur": e["dur"] * 1e6,
                "pid": e["pid"],
                "tid": tid,
            }
            if "label" in e:
                entry["args"] = {"label": e["label"]}
            trace_events.append(entry)
        for pid in sorted({e["pid"] for e in events}):
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"edm pid {pid}"},
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def export_chrome_trace(
    in_path: str | os.PathLike,
    out_path: str | os.PathLike,
    strict: bool = True,
) -> int:
    """Read a span-event JSONL file and write the Chrome trace JSON.

    Returns the number of span events exported.
    """
    events = read_span_events(in_path, strict=strict)
    trace = to_chrome_trace(events)
    out = Path(out_path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w", encoding="utf-8") as f:
        json.dump(trace, f, separators=(",", ":"))
        f.write("\n")
    return len(events)
