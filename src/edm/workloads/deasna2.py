"""deasna2: second-year research-department NFS trace stand-in.

Heavier skew and bursty epoch volume (batch jobs), slightly more
write-intensive than deasna.
"""

from edm.workloads.base import SyntheticTrace


class Deasna2Trace(SyntheticTrace):
    name = "deasna2"
    base_zipf = 1.1
    write_ratio = 0.5
    drift_period = 32
    drift_step = 16
    burstiness = 0.25
