"""Workload registry: the four named traces from the paper's evaluation."""

from __future__ import annotations

import numpy as np

from edm.config import SimConfig
from edm.workloads.base import SyntheticTrace
from edm.workloads.deasna import DeasnaTrace
from edm.workloads.deasna2 import Deasna2Trace
from edm.workloads.lair62 import Lair62Trace
from edm.workloads.lair62b import Lair62bTrace

TRACES: dict[str, type[SyntheticTrace]] = {
    cls.name: cls for cls in (DeasnaTrace, Deasna2Trace, Lair62Trace, Lair62bTrace)
}


def make_workload(cfg: SimConfig, rng: np.random.Generator) -> SyntheticTrace:
    try:
        cls = TRACES[cfg.workload]
    except KeyError:
        raise ValueError(f"unknown workload {cfg.workload!r}; have {sorted(TRACES)}") from None
    return cls(cfg, rng)


__all__ = ["TRACES", "make_workload", "SyntheticTrace"]
