"""deasna: research-department NFS trace stand-in.

Mixed read/write with a moderately skewed, slowly drifting hotset -- the
working set migrates as projects come and go.
"""

from edm.workloads.base import SyntheticTrace


class DeasnaTrace(SyntheticTrace):
    name = "deasna"
    base_zipf = 0.9
    write_ratio = 0.45
    drift_period = 32
    drift_step = 16
    burstiness = 0.0
