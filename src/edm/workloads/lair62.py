"""lair62: home-directory NFS trace stand-in.

Read-heavy with a strongly skewed, static hotset -- a few popular home
directories dominate.
"""

from edm.workloads.base import SyntheticTrace


class Lair62Trace(SyntheticTrace):
    name = "lair62"
    base_zipf = 1.2
    write_ratio = 0.25
    drift_period = 0
    drift_step = 0
    burstiness = 0.0
