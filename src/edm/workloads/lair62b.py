"""lair62b: variant of lair62 with periodic hotspot shifts.

Same read-heavy mix, but the popular set rotates abruptly (semester
turnover), stressing migration policies with a moving target.
"""

from edm.workloads.base import SyntheticTrace


class Lair62bTrace(SyntheticTrace):
    name = "lair62b"
    base_zipf = 1.05
    write_ratio = 0.25
    drift_period = 48
    drift_step = 96
    burstiness = 0.1
