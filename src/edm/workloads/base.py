"""Synthetic workload base: Zipf-skewed chunk access with drift and bursts.

Each trace family is a SyntheticTrace subclass that fixes a popularity
exponent, read/write mix, hotspot drift, and burstiness.  The generator is
fully vectorized: an epoch's accesses are drawn as a single multinomial over
the chunk-popularity vector (one RNG call per epoch, O(num_chunks)), not as
per-request samples.
"""

from __future__ import annotations

import numpy as np

from edm.config import SimConfig


class SyntheticTrace:
    """Base synthetic trace.

    Subclasses set class attributes; ``epoch_counts`` returns the per-chunk
    read+write access counts for one epoch.
    """

    name = "base"
    base_zipf = 1.0        # popularity exponent theta; p(rank r) ~ r^-theta
    write_ratio = 0.4      # fraction of accesses that are writes
    drift_period = 0       # epochs between hotspot shifts (0 = static hotset)
    drift_step = 0         # chunks the hotspot rotates per shift
    burstiness = 0.0       # 0 = constant epoch volume; >0 = gamma-modulated

    def __init__(self, cfg: SimConfig, rng: np.random.Generator):
        self.cfg = cfg
        self.rng = rng
        theta = self.base_zipf + cfg.skew
        ranks = np.arange(1, cfg.num_chunks + 1, dtype=np.float64)
        p = ranks ** -theta
        self._base_probs = p / p.sum()

    def probs(self, epoch: int) -> np.ndarray:
        """Chunk popularity vector for this epoch (hotspot drift applied)."""
        if self.drift_period and self.drift_step:
            shift = (epoch // self.drift_period) * self.drift_step
            if shift % self.cfg.num_chunks:
                return np.roll(self._base_probs, shift)
        return self._base_probs

    def epoch_volume(self, epoch: int) -> int:
        base = self.cfg.requests_per_epoch
        if self.burstiness > 0:
            # Gamma with mean 1: occasional epochs with several-x volume.
            scale = self.rng.gamma(1.0 / self.burstiness, self.burstiness)
            return max(1, int(round(base * scale)))
        return base

    def epoch_counts(self, epoch: int) -> tuple[np.ndarray, np.ndarray]:
        """Return (access_counts, write_counts), both int64 arrays [num_chunks]."""
        volume = self.epoch_volume(epoch)
        counts = self.rng.multinomial(volume, self.probs(epoch))
        writes = self.rng.binomial(counts, self.write_ratio)
        return counts, writes
