"""Synthetic workload base: Zipf-skewed chunk access with drift and bursts.

Each trace family is a SyntheticTrace subclass that fixes a popularity
exponent, read/write mix, hotspot drift, and burstiness.  The generator is
fully vectorized: an epoch's accesses are drawn as a single multinomial over
the chunk-popularity vector (one RNG call per epoch, O(num_chunks)), not as
per-request samples.
"""

from __future__ import annotations

import numpy as np

from edm.config import SimConfig


class SyntheticTrace:
    """Base synthetic trace.

    Subclasses set class attributes; ``epoch_counts`` returns the per-chunk
    read+write access counts for one epoch.
    """

    name = "base"
    base_zipf = 1.0        # popularity exponent theta; p(rank r) ~ r^-theta
    write_ratio = 0.4      # fraction of accesses that are writes
    drift_period = 0       # epochs between hotspot shifts (0 = static hotset)
    drift_step = 0         # chunks the hotspot rotates per shift
    burstiness = 0.0       # 0 = constant epoch volume; >0 = gamma-modulated

    def __init__(self, cfg: SimConfig, rng: np.random.Generator):
        self.cfg = cfg
        self.rng = rng
        theta = self.base_zipf + cfg.skew
        ranks = np.arange(1, cfg.num_chunks + 1, dtype=np.float64)
        p = ranks ** -theta
        self._base_probs = p / p.sum()
        # Hot-path buffers: the float64 count arrays handed to the engine,
        # rewritten in place every epoch so the kernel never casts or
        # allocates.  Consumers read them within the epoch (the recorder
        # contract) -- the next epoch_counts call overwrites them.
        self._countsf = np.empty(cfg.num_chunks)
        self._writesf = np.empty(cfg.num_chunks)
        # One-slot cache for the drifted popularity vector: the hotspot only
        # rotates every drift_period epochs, so np.roll runs per shift, not
        # per epoch.
        self._probs_shift = 0
        self._probs_cache = self._base_probs

    def probs(self, epoch: int) -> np.ndarray:
        """Chunk popularity vector for this epoch (hotspot drift applied)."""
        if self.drift_period and self.drift_step:
            shift = ((epoch // self.drift_period) * self.drift_step) % self.cfg.num_chunks
            if shift:
                if shift != self._probs_shift:
                    self._probs_shift = shift
                    self._probs_cache = np.roll(self._base_probs, shift)
                return self._probs_cache
        return self._base_probs

    def epoch_volume(self, epoch: int) -> int:
        base = self.cfg.requests_per_epoch
        if self.burstiness > 0:
            # Gamma with mean 1: occasional epochs with several-x volume.
            scale = self.rng.gamma(1.0 / self.burstiness, self.burstiness)
            return max(1, int(round(base * scale)))
        return base

    def epoch_counts(self, epoch: int) -> tuple[np.ndarray, np.ndarray]:
        """Return (access_counts, write_counts) for one epoch.

        Both are integer-valued **float64** arrays ``[num_chunks]``, written
        into per-instance buffers reused across epochs: the engine's fused
        kernel consumes float64 weights directly, so emitting float64 here
        kills the per-epoch ``astype`` churn at the source.  Callers must
        finish with an epoch's arrays before requesting the next epoch.

        The underlying integer draws are unchanged from the historical
        int64 path -- one multinomial over the popularity vector plus an
        element-wise binomial split into writes.
        """
        volume = self.epoch_volume(epoch)
        counts = self.rng.multinomial(volume, self.probs(epoch))
        writes = self.rng.binomial(counts, self.write_ratio)
        np.copyto(self._countsf, counts, casting="unsafe")
        np.copyto(self._writesf, writes, casting="unsafe")
        return self._countsf, self._writesf
