"""Command-line interface: ``python -m edm {run,sweep,report,plot,bench}``.

Primary results (metrics JSON, sweep tables, report output) go to stdout;
everything diagnostic goes through the ``edm.*`` package logger on stderr,
controlled by the global ``-v``/``-vv`` and ``--log-level`` flags (accepted
both before and after the subcommand).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from edm import bench as bench_mod
from edm import report as report_mod
from edm.cache import DEFAULT_CACHE_DIR
from edm.config import KERNELS, POLICY_ALIASES, POLICIES, WORKLOADS, SimConfig
from edm.engine.core import simulate
from edm.obs import NULL_TRACER, Tracer, configure_logging, get_logger
from edm.obs.decisions import (
    TRIGGERS,
    DecisionRecorder,
    attribution_summary,
    format_attribution,
    format_decision,
    query_decisions,
    read_decision_log,
)
from edm.obs.log import level_from_args
from edm.obs.trace_export import export_chrome_trace, write_span_events
from edm.policies import resolve_policy
from edm.sweep import default_grid, sweep
from edm.telemetry import MetricsSnapshotRecorder

POLICY_CHOICES = (*POLICIES, *sorted(POLICY_ALIASES))

log = get_logger("cli")


def _csv(value: str) -> list[str]:
    return [v.strip() for v in value.split(",") if v.strip()]


def _add_engine_args(ap: argparse.ArgumentParser) -> None:
    ap.add_argument("--epochs", type=int, default=None)
    ap.add_argument("--requests", type=int, default=None, help="requests per epoch")
    ap.add_argument("--skew", type=float, default=0.02)
    ap.add_argument(
        "--kernel",
        choices=KERNELS,
        default="auto",
        help="epoch-kernel backend: numpy, numba (requires edm-sim[jit]), or "
        "auto = numba when importable (default; results are bit-identical)",
    )


def _overrides(args) -> dict:
    out = {"skew": args.skew, "kernel": args.kernel}
    if args.epochs is not None:
        out["epochs"] = args.epochs
    if args.requests is not None:
        out["requests_per_epoch"] = args.requests
    if getattr(args, "quick", False):
        out.setdefault("epochs", 32)
        out.setdefault("requests_per_epoch", 1024)
    return out


def _fault_scenarios(spec: str) -> list[str]:
    """Split a comma-separated ``--faults`` value into scenario specs.

    Event specs themselves never contain commas (events join with ``;``), so
    the comma cleanly separates grid-axis scenarios; ``none`` (or an empty
    entry) names the healthy cluster.
    """
    scenarios = [("" if s == "none" else s) for s in _csv(spec)]
    return scenarios or [""]


def _endurance_scenarios(spec: str) -> list[str]:
    """Split a semicolon-separated ``--endurance`` value into model specs.

    Endurance specs join their bands with ``,`` (``pe:3000@0-3,10000@4-7``),
    so unlike ``--faults`` the grid-axis separator is ``;``; ``none`` (or an
    empty entry) names the unrated cluster.
    """
    parts = [p.strip() for p in spec.split(";") if p.strip()]
    scenarios = [("" if p == "none" else p) for p in parts]
    return scenarios or [""]


def _service_scenarios(spec: str) -> list[str]:
    """Split a comma-separated ``--service`` value into model specs.

    Service specs join their clauses with ``;`` (``rate:800;queue:64``), so
    like ``--faults`` the grid-axis separator is ``,``; ``none`` (or an
    empty entry) names the unserviced cluster.
    """
    scenarios = [("" if s == "none" else s) for s in _csv(spec)]
    return scenarios or [""]


def _topology_scenarios(spec: str) -> list[str]:
    """Split a ``|``-separated ``--topology`` value into plan specs.

    Topology plans use both ``;`` (event separator) and ``,`` (device-class
    attributes) internally, so the grid-axis separator is ``|``; ``none``
    (or an empty entry) names the static cluster.
    """
    parts = [p.strip() for p in spec.split("|") if p.strip()]
    scenarios = [("" if p == "none" else p) for p in parts]
    return scenarios or [""]


def _redundancy_scenarios(spec: str) -> list[str]:
    """Split a comma-separated ``--redundancy`` value into scheme specs.

    A redundancy spec is a single clause (``rep:3`` / ``ec:4+2``) with no
    internal separators, so the grid-axis separator is ``,``; ``none`` (or
    an empty entry) names the redundancy-free cluster.
    """
    scenarios = [("" if s == "none" else s) for s in _csv(spec)]
    return scenarios or [""]


def cmd_run(args) -> int:
    cfg = SimConfig(
        workload=args.workload,
        num_osds=args.osds,
        policy=resolve_policy(args.policy),
        seed=args.seed,
        faults="" if args.faults == "none" else args.faults,
        endurance="" if args.endurance == "none" else args.endurance,
        service="" if args.service == "none" else args.service,
        topology="" if args.topology == "none" else args.topology,
        redundancy="" if args.redundancy == "none" else args.redundancy,
        **_overrides(args),
    )
    recorders = []
    decisions = None
    if args.explain is not None:
        decisions = DecisionRecorder(path=args.explain or None)
        recorders.append(decisions)
    snapshot = None
    if args.metrics_out:
        snapshot = MetricsSnapshotRecorder(args.metrics_out)
        recorders.append(snapshot)
    tracer = Tracer(record_events=True) if args.trace else NULL_TRACER
    metrics = simulate(cfg, recorders=tuple(recorders), tracer=tracer)
    if tracer.enabled:
        # Timings ride the trace file; the metrics JSON on stdout keeps the
        # exact shape (and values) of an untraced run.
        metrics.pop("timings", None)
        n = write_span_events(tracer, args.trace, label=cfg.cache_name())
        log.info("appended %d span events to %s", n, args.trace)
    if snapshot is not None:
        snapshot.write_final(metrics)
        log.info("wrote OpenMetrics snapshot to %s", args.metrics_out)
    print(json.dumps(metrics, indent=2))
    if decisions is not None:
        # Opt-in diagnostics go to stderr; stdout stays parseable JSON.
        print(
            f"decision attribution ({decisions.total} decisions):\n"
            + format_attribution(decisions.attribution()),
            file=sys.stderr,
        )
        if decisions.path is not None:
            log.info(
                "decision log: %s (query with `python -m edm explain %s`)",
                decisions.path, decisions.path,
            )
    return 0


def cmd_sweep(args) -> int:
    if args.stream and args.no_cache:
        log.error("--stream needs the result cache; drop --no-cache")
        return 2
    grid = default_grid(
        workloads=_csv(args.workloads),
        osds=[int(n) for n in _csv(args.osds)],
        policies=[resolve_policy(p) for p in _csv(args.policies)],
        seeds=[int(s) for s in _csv(args.seeds)],
        faults=_fault_scenarios(args.faults),
        endurance=_endurance_scenarios(args.endurance),
        service=_service_scenarios(args.service),
        topology=_topology_scenarios(args.topology),
        redundancy=_redundancy_scenarios(args.redundancy),
        **_overrides(args),
    )
    result = sweep(
        grid,
        cache_dir=Path(args.cache_dir),
        workers=args.workers,
        force=args.force,
        use_cache=not args.no_cache,
        timeseries_dir=args.timeseries,
        record_every=args.record_every,
        run_log=args.run_log,
        progress=args.progress,
        stream=args.stream,
        trace_events=args.trace,
    )
    for cfg, metrics in zip(grid, result.records):
        print(
            f"{cfg.cache_name():44s} load_cov={metrics['load_cov_mean']:.4f} "
            f"wear_spread={metrics['wear_spread']:.0f} "
            f"migrations={metrics['migrations_total']}"
        )
    print(
        f"# {len(grid)} configs: {result.simulated} simulated, "
        f"{result.cache_hits} cache hits, {result.cache_invalidated} invalidated"
    )
    if args.timeseries:
        log.info("per-epoch series in %s/ (*.npz)", args.timeseries)
    if args.run_log:
        log.info("run log appended to %s", args.run_log)
    if args.trace:
        log.info(
            "span events appended to %s (render with `python -m edm trace export %s`)",
            args.trace, args.trace,
        )
    return 0


def cmd_explain(args) -> int:
    records = read_decision_log(args.log, strict=False)
    if not records:
        log.error("no valid decision records in %s", args.log)
        return 1
    matches = query_decisions(
        records,
        chunk=args.chunk,
        osd=args.osd,
        epoch=args.epoch,
        trigger=args.trigger,
        policy=args.policy,
    )
    if not args.summary:
        shown = matches if args.limit <= 0 else matches[: args.limit]
        for record in shown:
            print(format_decision(record))
        if len(matches) > len(shown):
            print(f"# ... {len(matches) - len(shown)} more decisions (raise --limit)")
    print(f"# {len(matches)} of {len(records)} decisions matched")
    print(format_attribution(attribution_summary(matches)))
    return 0


def cmd_trace_export(args) -> int:
    out = args.out if args.out else str(Path(args.events).with_suffix(".json"))
    if Path(out).resolve() == Path(args.events).resolve():
        log.error("output %s would overwrite the input; pass -o", out)
        return 2
    n = export_chrome_trace(args.events, out, strict=False)
    if n == 0:
        log.error("no span events in %s", args.events)
        return 1
    log.info("exported %d span events", n)
    print(out)
    return 0


def cmd_report(args) -> int:
    loaded = report_mod.load_cached_metrics(args.cache_dir)
    if not loaded.metrics:
        log.error(
            "no usable sweep results in %s (%d stale entries); "
            "run `python -m edm sweep` first",
            args.cache_dir,
            loaded.stale,
        )
        return 1
    text = report_mod.render(report_mod.aggregate(loaded.metrics), fmt=args.format)
    if args.out:
        Path(args.out).write_text(text + "\n")
        log.info("wrote %s", args.out)
    else:
        print(text)
    if loaded.stale:
        log.warning("skipped %d stale cache entries", loaded.stale)
    return 0


def cmd_plot(args) -> int:
    from edm.telemetry import plots

    if not plots.have_matplotlib():
        log.warning(
            "matplotlib is not installed; skipping figure rendering "
            "(pip install 'edm-sim[plot]' to enable)"
        )
        return 0
    series = plots.load_series_dir(args.timeseries_dir)
    if not series:
        log.error(
            "no .npz series in %s; run `python -m edm sweep --timeseries <dir>` first",
            args.timeseries_dir,
        )
        return 1
    written = plots.render_figures(series, args.out_dir, fmt=args.format)
    for path in written:
        print(path)
    return 0


def cmd_bench(args) -> int:
    return bench_mod.main(args.rest)


def main(argv: list[str] | None = None) -> int:
    # Shared verbosity flags, accepted before or after the subcommand.
    # SUPPRESS keeps a subparser from clobbering a value given before it.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "-v", "--verbose", action="count", default=argparse.SUPPRESS,
        help="-v: INFO diagnostics, -vv: DEBUG",
    )
    common.add_argument(
        "--log-level", default=argparse.SUPPRESS, metavar="LEVEL",
        help="explicit log level (DEBUG/INFO/WARNING/ERROR); overrides -v",
    )

    ap = argparse.ArgumentParser(prog="python -m edm", description="EDM cluster simulator")
    ap.add_argument("-v", "--verbose", action="count", default=0, help=argparse.SUPPRESS)
    ap.add_argument("--log-level", default=None, help=argparse.SUPPRESS)
    sub = ap.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", parents=[common], help="simulate a single configuration")
    run_p.add_argument("--workload", choices=WORKLOADS, default="deasna")
    run_p.add_argument("--osds", type=int, default=16)
    run_p.add_argument("--policy", choices=POLICY_CHOICES, default="cmt")
    run_p.add_argument("--seed", type=int, default=12345)
    run_p.add_argument(
        "--faults",
        default="",
        metavar="SPEC",
        help="fault scenario, e.g. 'fail:3@100;slow:5@50x0.5' ('none' = healthy)",
    )
    run_p.add_argument(
        "--endurance",
        default="",
        metavar="SPEC",
        help="endurance model, e.g. 'pe:5000' or 'pe:3000@0-3,10000@4-7' "
        "('none' = unlimited rated lifetime)",
    )
    run_p.add_argument(
        "--service",
        default="",
        metavar="SPEC",
        help="service model, e.g. 'rate:800;queue:64' or 'rate:800;rate:400@0-3' "
        "('none' = no request-level timing)",
    )
    run_p.add_argument(
        "--topology",
        default="",
        metavar="SPEC",
        help="topology plan, e.g. 'add:4@128/cap:2,rate:1600;drain:0@192' "
        "('none' = static cluster)",
    )
    run_p.add_argument(
        "--redundancy",
        default="",
        metavar="SPEC",
        help="redundancy scheme, e.g. 'rep:3' (3-way replication) or 'ec:4+2' "
        "(4 data + 2 parity chunks per group; 'none' = no redundancy)",
    )
    run_p.add_argument(
        "--explain",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help="capture per-migration decision records (score decomposition per "
        "destination pick) and print an attribution summary on stderr; with "
        "PATH, also stream the records as JSONL for `edm explain`",
    )
    run_p.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="append span-event JSONL (simulate phase timings) to PATH; render "
        "with `edm trace export PATH`",
    )
    run_p.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the run's metrics as an OpenMetrics text snapshot "
        "(Prometheus-compatible), updated live every 16 epochs",
    )
    _add_engine_args(run_p)
    run_p.set_defaults(func=cmd_run)

    sweep_p = sub.add_parser(
        "sweep", parents=[common], help="run a config grid (cached, parallel)"
    )
    sweep_p.add_argument("--workloads", default=",".join(WORKLOADS))
    sweep_p.add_argument("--osds", default="16,20")
    sweep_p.add_argument("--policies", default=",".join(POLICIES))
    sweep_p.add_argument("--seeds", default="12345,54321")
    sweep_p.add_argument("--cache-dir", default=str(DEFAULT_CACHE_DIR))
    sweep_p.add_argument("--workers", type=int, default=None)
    sweep_p.add_argument("--force", action="store_true", help="ignore cache hits")
    sweep_p.add_argument("--no-cache", action="store_true")
    sweep_p.add_argument(
        "--timeseries",
        metavar="DIR",
        default=None,
        help="also write one per-epoch .npz series per config into DIR",
    )
    sweep_p.add_argument(
        "--record-every",
        type=int,
        default=1,
        help="downsample the time series to every N-th epoch (default 1)",
    )
    sweep_p.add_argument(
        "--run-log",
        metavar="PATH",
        default=None,
        help="append structured JSONL run records (one run_start/run_end per config, "
        "emitted from inside workers, plus sweep-level records)",
    )
    sweep_p.add_argument(
        "--progress",
        action="store_true",
        help="live done/total + ETA + req/s line on stderr while the sweep runs",
    )
    sweep_p.add_argument(
        "--stream",
        action="store_true",
        help="stream full metrics to the cache from inside workers and keep only "
        "slim per-config summaries in the parent (memory independent of grid "
        "size; incompatible with --no-cache)",
    )
    sweep_p.add_argument(
        "--faults",
        default="",
        metavar="SPECS",
        help="comma-separated fault scenarios as an extra grid axis "
        "(events within a scenario join with ';'; 'none' = healthy), "
        "e.g. 'none,fail:3@100;slow:5@50x0.5'",
    )
    sweep_p.add_argument(
        "--endurance",
        default="",
        metavar="SPECS",
        help="semicolon-separated endurance models as an extra grid axis "
        "(bands within a model join with ','; 'none' = unlimited), "
        "e.g. 'none;pe:5000;pe:3000@0-3,10000@4-7'",
    )
    sweep_p.add_argument(
        "--service",
        default="",
        metavar="SPECS",
        help="comma-separated service models as an extra grid axis "
        "(clauses within a model join with ';'; 'none' = no request-level "
        "timing), e.g. 'none,rate:800;queue:64'",
    )
    sweep_p.add_argument(
        "--topology",
        default="",
        metavar="SPECS",
        help="'|'-separated topology plans as an extra grid axis (plans use "
        "';' and ',' internally; 'none' = static cluster), e.g. "
        "'none|add:4@128/cap:2,rate:1600;drain:0@192'",
    )
    sweep_p.add_argument(
        "--redundancy",
        default="",
        metavar="SPECS",
        help="comma-separated redundancy schemes as an extra grid axis "
        "(a scheme is a single 'rep:N' or 'ec:M+K' clause; 'none' = no "
        "redundancy), e.g. 'none,rep:3,ec:4+2'",
    )
    sweep_p.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke sizing: epochs=32, requests=1024 unless given explicitly",
    )
    sweep_p.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="append span-event JSONL (parent sweep stages + worker simulate "
        "phases) to PATH; render with `edm trace export PATH`",
    )
    _add_engine_args(sweep_p)
    sweep_p.set_defaults(func=cmd_sweep)

    explain_p = sub.add_parser(
        "explain",
        parents=[common],
        help="query a decision log: why did each migration land where it did?",
    )
    explain_p.add_argument(
        "log", help="decision JSONL written by `edm run --explain=PATH`"
    )
    explain_p.add_argument("--chunk", type=int, default=None, help="filter by chunk id")
    explain_p.add_argument(
        "--osd", type=int, default=None, help="filter by OSD (source or destination)"
    )
    explain_p.add_argument("--epoch", type=int, default=None, help="filter by epoch")
    explain_p.add_argument(
        "--trigger", choices=TRIGGERS, default=None, help="filter by trigger kind"
    )
    explain_p.add_argument("--policy", default=None, help="filter by policy name")
    explain_p.add_argument(
        "--summary",
        action="store_true",
        help="print only the attribution summary, no per-decision breakdowns",
    )
    explain_p.add_argument(
        "--limit",
        type=int,
        default=20,
        help="max per-decision breakdowns to print (<=0 = unlimited, default 20)",
    )
    explain_p.set_defaults(func=cmd_explain)

    trace_p = sub.add_parser(
        "trace", parents=[common], help="span timeline tools"
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)
    trace_export_p = trace_sub.add_parser(
        "export",
        parents=[common],
        help="convert span-event JSONL into Chrome/Perfetto trace_event JSON",
    )
    trace_export_p.add_argument(
        "events", help="span-event JSONL from `run --trace` / `sweep --trace`"
    )
    trace_export_p.add_argument(
        "-o",
        "--out",
        default=None,
        metavar="PATH",
        help="output trace JSON (default: the input path with a .json suffix); "
        "open at https://ui.perfetto.dev or chrome://tracing",
    )
    trace_export_p.set_defaults(func=cmd_trace_export)

    report_p = sub.add_parser(
        "report",
        parents=[common],
        help="aggregate cached sweep results into the paper's comparison table",
    )
    report_p.add_argument(
        "cache_dir",
        nargs="?",
        default=str(DEFAULT_CACHE_DIR),
        help=f"sweep cache directory (default {DEFAULT_CACHE_DIR})",
    )
    report_p.add_argument("--format", choices=("markdown", "json"), default="markdown")
    report_p.add_argument("--out", default=None, help="write to file instead of stdout")
    report_p.set_defaults(func=cmd_report)

    plot_p = sub.add_parser(
        "plot",
        parents=[common],
        help="render the paper's figures from saved time series (needs matplotlib)",
    )
    plot_p.add_argument(
        "timeseries_dir", help="directory of .npz series from `sweep --timeseries`"
    )
    plot_p.add_argument("--out-dir", default="figures", help="output directory (default figures/)")
    plot_p.add_argument("--format", choices=("png", "svg", "pdf"), default="png")
    plot_p.set_defaults(func=cmd_plot)

    bench_p = sub.add_parser("bench", help="alias for python -m edm.bench")
    bench_p.add_argument("rest", nargs=argparse.REMAINDER)
    bench_p.set_defaults(func=cmd_bench)

    args = ap.parse_args(argv)
    configure_logging(
        level_from_args(getattr(args, "verbose", 0), getattr(args, "log_level", None))
    )
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
