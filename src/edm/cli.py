"""Command-line interface: ``python -m edm {run,sweep,bench}``."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from edm import bench as bench_mod
from edm.cache import DEFAULT_CACHE_DIR
from edm.config import POLICIES, WORKLOADS, SimConfig
from edm.engine.core import simulate
from edm.sweep import default_grid, sweep


def _csv(value: str) -> list[str]:
    return [v.strip() for v in value.split(",") if v.strip()]


def _add_engine_args(ap: argparse.ArgumentParser) -> None:
    ap.add_argument("--epochs", type=int, default=None)
    ap.add_argument("--requests", type=int, default=None, help="requests per epoch")
    ap.add_argument("--skew", type=float, default=0.02)


def _overrides(args) -> dict:
    out = {"skew": args.skew}
    if args.epochs is not None:
        out["epochs"] = args.epochs
    if args.requests is not None:
        out["requests_per_epoch"] = args.requests
    return out


def cmd_run(args) -> int:
    policy = "cmt" if args.policy == "edm" else args.policy
    cfg = SimConfig(
        workload=args.workload,
        num_osds=args.osds,
        policy=policy,
        seed=args.seed,
        **_overrides(args),
    )
    metrics = simulate(cfg)
    print(json.dumps(metrics, indent=2))
    return 0


def cmd_sweep(args) -> int:
    policies = ["cmt" if p == "edm" else p for p in _csv(args.policies)]
    grid = default_grid(
        workloads=_csv(args.workloads),
        osds=[int(n) for n in _csv(args.osds)],
        policies=policies,
        seeds=[int(s) for s in _csv(args.seeds)],
        **_overrides(args),
    )
    result = sweep(
        grid,
        cache_dir=Path(args.cache_dir),
        workers=args.workers,
        force=args.force,
        use_cache=not args.no_cache,
    )
    for cfg, metrics in zip(grid, result.results):
        print(
            f"{cfg.cache_name():44s} load_cov={metrics['load_cov_mean']:.4f} "
            f"wear_spread={metrics['wear_spread']:.0f} "
            f"migrations={metrics['migrations_total']}"
        )
    print(
        f"# {len(grid)} configs: {result.simulated} simulated, "
        f"{result.cache_hits} cache hits, {result.cache_invalidated} invalidated"
    )
    return 0


def cmd_bench(args) -> int:
    return bench_mod.main(args.rest)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(prog="python -m edm", description="EDM cluster simulator")
    sub = ap.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate a single configuration")
    run_p.add_argument("--workload", choices=WORKLOADS, default="deasna")
    run_p.add_argument("--osds", type=int, default=16)
    run_p.add_argument("--policy", choices=[*POLICIES, "edm"], default="cmt")
    run_p.add_argument("--seed", type=int, default=12345)
    _add_engine_args(run_p)
    run_p.set_defaults(func=cmd_run)

    sweep_p = sub.add_parser("sweep", help="run a config grid (cached, parallel)")
    sweep_p.add_argument("--workloads", default=",".join(WORKLOADS))
    sweep_p.add_argument("--osds", default="16,20")
    sweep_p.add_argument("--policies", default=",".join(POLICIES))
    sweep_p.add_argument("--seeds", default="12345,54321")
    sweep_p.add_argument("--cache-dir", default=str(DEFAULT_CACHE_DIR))
    sweep_p.add_argument("--workers", type=int, default=None)
    sweep_p.add_argument("--force", action="store_true", help="ignore cache hits")
    sweep_p.add_argument("--no-cache", action="store_true")
    _add_engine_args(sweep_p)
    sweep_p.set_defaults(func=cmd_sweep)

    bench_p = sub.add_parser("bench", help="alias for python -m edm.bench")
    bench_p.add_argument("rest", nargs=argparse.REMAINDER)
    bench_p.set_defaults(func=cmd_bench)

    args = ap.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
