"""Content-keyed result cache.

Results live in ``.repro-cache/<workload>-<N>osd-<policy>-s<skew>-r<seed>.pkl``
(the key format inherited from the original sweep artifacts).  The filename
alone is not trusted: each pickle stores the full config content hash, and a
load only hits if that hash matches the requesting config.  Unreadable or
stale pickles (old engine versions, foreign formats, corruption) are
invalidated -- deleted and reported as a miss -- never silently returned.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path

from edm.config import SimConfig, config_hash

DEFAULT_CACHE_DIR = Path(".repro-cache")
_PAYLOAD_VERSION = 1


class ResultCache:
    def __init__(self, cache_dir: str | os.PathLike = DEFAULT_CACHE_DIR):
        self.cache_dir = Path(cache_dir)
        self.hits = 0
        self.misses = 0
        self.invalidated = 0

    def path_for(self, cfg: SimConfig) -> Path:
        return self.cache_dir / f"{cfg.cache_name()}.pkl"

    def load(self, cfg: SimConfig) -> dict | None:
        """Return cached metrics for cfg, or None on miss/invalidation."""
        path = self.path_for(cfg)
        try:
            with open(path, "rb") as f:
                payload = pickle.load(f)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Unreadable pickle (truncated capture, foreign class, corruption).
            self._invalidate(path)
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("payload_version") != _PAYLOAD_VERSION
            or payload.get("config_hash") != config_hash(cfg)
        ):
            self._invalidate(path)
            return None
        self.hits += 1
        return payload["metrics"]

    def store(self, cfg: SimConfig, metrics: dict) -> Path:
        """Atomically write metrics for cfg (write to temp file, then rename)."""
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self.path_for(cfg)
        payload = {
            "payload_version": _PAYLOAD_VERSION,
            "config_hash": config_hash(cfg),
            "config": cfg.to_dict(),
            "metrics": metrics,
        }
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(payload, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise
        return path

    def _invalidate(self, path: Path) -> None:
        self.misses += 1
        self.invalidated += 1
        try:
            path.unlink()
        except OSError:
            pass
