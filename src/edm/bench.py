"""Benchmark harness: ``python -m edm.bench``.

Times the full 64-config sweep cold (force re-simulation, cache rewritten)
and warm (pure cache reads), plus single-config engine throughput, and
writes ``BENCH_sweep.json`` at the repo root so later PRs have a perf
trajectory to beat.  ``--quick`` shrinks the grid for CI smoke and writes
``BENCH_quick.json`` instead, so toy numbers never clobber the real
baseline unless ``--out`` says so explicitly.

The perf *history* lives next door: ``--append-history`` appends each
report (stamped with git SHA + timestamp) to ``BENCH_history.jsonl``, and
``--compare BASELINE.json [--max-regression 0.15]`` diffs this run's
throughput against a previous report and exits nonzero on regression --
the CI perf gate.  See :mod:`edm.obs.history`.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from edm import __version__
from edm.cache import DEFAULT_CACHE_DIR
from edm.config import KERNELS, SimConfig
from edm.engine.core import simulate
from edm.engine.kernels import available_kernels, resolve_kernel
from edm.obs import (
    DEFAULT_HISTORY,
    append_history,
    baseline_from_history,
    compare_reports,
    configure_logging,
    get_logger,
    load_report,
)
from edm.obs.log import level_from_args
from edm.sweep import default_grid, sweep
from edm.telemetry import TimeSeriesRecorder

DEFAULT_OUT = Path("BENCH_sweep.json")
QUICK_OUT = Path("BENCH_quick.json")

log = get_logger("bench")


def bench_single_config(
    requests_target: int = 2_000_000,
    telemetry: bool = False,
    kernel: str = "auto",
    repeats: int = 3,
) -> dict:
    """Single-config throughput through the vectorized path.

    ``telemetry=True`` attaches a full-rate ``TimeSeriesRecorder`` so the
    report tracks the observer layer's overhead next to the bare engine.
    ``kernel`` selects the epoch-kernel backend; a tiny untimed warm-up run
    precedes the measurement so numba's one-off JIT compile never lands
    inside the timed region.  The run repeats ``repeats`` times and reports
    the fastest (best-of-N filters scheduler noise; the simulation itself is
    deterministic, so every repeat does identical work).
    """
    # deasna has constant epoch volume, so requests_simulated is exact.
    base = SimConfig(workload="deasna", num_osds=20, policy="cmt")
    per_epoch = base.requests_per_epoch
    epochs = max(1, -(-requests_target // per_epoch))
    cfg = SimConfig(
        workload=base.workload,
        num_osds=base.num_osds,
        policy=base.policy,
        epochs=epochs,
        requests_per_epoch=per_epoch,
        kernel=kernel,
    )
    warmup = SimConfig(
        workload=base.workload,
        num_osds=base.num_osds,
        policy=base.policy,
        epochs=2,
        requests_per_epoch=256,
        kernel=kernel,
    )
    simulate(warmup)
    elapsed = float("inf")
    for _ in range(max(1, repeats)):
        recorders = (TimeSeriesRecorder(),) if telemetry else ()
        t0 = time.perf_counter()
        metrics = simulate(cfg, recorders=recorders)
        elapsed = min(elapsed, time.perf_counter() - t0)
    simulated = metrics["total_requests"]
    return {
        "config": cfg.cache_name(),
        "epochs": epochs,
        "telemetry": telemetry,
        "kernel": resolve_kernel(kernel),
        "requests_simulated": simulated,
        "seconds": elapsed,
        "requests_per_sec": simulated / elapsed if elapsed > 0 else float("inf"),
    }


def bench_kernels(requests_target: int = 2_000_000) -> dict:
    """Micro-benchmark every importable backend on the same single config.

    Returns ``{"backends": {name: single_config_report}, "identical": bool}``
    -- the backends run the identical seeded config, so besides timing each
    one this doubles as an end-to-end bit-identity check on the metrics.
    """
    backends: dict[str, dict] = {}
    metrics_seen: list[dict] = []
    for name in available_kernels():
        backends[name] = bench_single_config(requests_target, kernel=name)
        cfg = SimConfig(
            workload="deasna", num_osds=20, policy="cmt",
            epochs=8, requests_per_epoch=1024, kernel=name,
        )
        metrics_seen.append(simulate(cfg))
    identical = all(m == metrics_seen[0] for m in metrics_seen[1:])
    return {"backends": backends, "identical": identical}


def run_bench(
    out_path: Path = DEFAULT_OUT,
    cache_dir=DEFAULT_CACHE_DIR,
    workers: int | None = None,
    quick: bool = False,
    kernel: str = "auto",
) -> dict:
    overrides = {"epochs": 32, "requests_per_epoch": 1024} if quick else {}
    # The bench grid is pinned to the paper's four policies (64 configs):
    # perf history comparisons (`bench --compare`) require the workload mix
    # to stay constant across releases, so zoo additions must not grow it.
    grid = default_grid(
        policies=("baseline", "cdf", "hdf", "cmt"), kernel=kernel, **overrides
    )

    log.info("cold sweep: %d configs (force re-simulate)", len(grid))
    t0 = time.perf_counter()
    cold = sweep(grid, cache_dir=cache_dir, workers=workers, force=True)
    cold_s = time.perf_counter() - t0

    log.info("warm sweep: pure cache reads")
    t0 = time.perf_counter()
    warm = sweep(grid, cache_dir=cache_dir, workers=workers)
    warm_s = time.perf_counter() - t0

    target = 200_000 if quick else 2_000_000
    single = bench_single_config(target, kernel=kernel)
    single_telemetry = bench_single_config(target, telemetry=True, kernel=kernel)
    overhead = (
        single_telemetry["seconds"] / single["seconds"] - 1.0
        if single["seconds"] > 0
        else 0.0
    )

    report = {
        "edm_version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "quick": quick,
        "kernel": resolve_kernel(kernel),
        "sweep": {
            "configs": len(grid),
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "speedup_warm_over_cold": cold_s / warm_s if warm_s > 0 else float("inf"),
            "warm_cache_hits": warm.cache_hits,
            "total_requests_simulated": cold.total_requests,
            "requests_per_sec_cold": cold.total_requests / cold_s if cold_s > 0 else 0.0,
        },
        "single_config": single,
        "single_config_telemetry": single_telemetry,
        "telemetry_overhead_frac": overhead,
    }
    out_path = Path(out_path)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m edm.bench",
        description=(
            "Benchmark the EDM sweep engine (cold vs warm); writes BENCH_sweep.json "
            "(or BENCH_quick.json under --quick)"
        ),
    )
    ap.add_argument(
        "--out",
        default=None,
        help=f"output JSON path (default {DEFAULT_OUT}, or {QUICK_OUT} with --quick)",
    )
    ap.add_argument("--cache-dir", default=str(DEFAULT_CACHE_DIR))
    ap.add_argument("--workers", type=int, default=None)
    ap.add_argument(
        "--quick", action="store_true", help="tiny epochs/requests (CI smoke)"
    )
    ap.add_argument(
        "--kernel",
        nargs="?",
        const="compare",
        default="auto",
        choices=(*KERNELS, "compare"),
        metavar="BACKEND",
        help="epoch-kernel backend for the whole bench (numpy/numba/auto); "
        "bare --kernel micro-benches every importable backend on one config "
        "(and cross-checks their metrics bit-for-bit), then exits",
    )
    ap.add_argument(
        "--append-history",
        nargs="?",
        const=str(DEFAULT_HISTORY),
        default=None,
        metavar="PATH",
        help=f"append this report (+ git SHA, timestamp) to a JSONL history (default {DEFAULT_HISTORY})",
    )
    ap.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE",
        help="diff throughput against a baseline; exit nonzero on regression.  "
        "A .json path is a single report; a .jsonl path is a history file, "
        "compared against its newest entry with this run's kernel backend "
        "(never numpy-vs-numba) and quick/full mode",
    )
    ap.add_argument(
        "--max-regression",
        type=float,
        default=0.15,
        help="allowed fractional throughput drop for --compare (default 0.15 = 15%%)",
    )
    ap.add_argument("-v", "--verbose", action="count", default=0)
    ap.add_argument("--log-level", default=None, help="DEBUG/INFO/WARNING/ERROR")
    args = ap.parse_args(argv)
    configure_logging(level_from_args(args.verbose, args.log_level))

    if args.kernel == "compare":
        cmp = bench_kernels(200_000 if args.quick else 2_000_000)
        for name, r in cmp["backends"].items():
            print(
                f"kernel {name:6s}: {r['requests_simulated']:,} requests in "
                f"{r['seconds']:.2f}s = {r['requests_per_sec']:,.0f} req/s"
            )
        if len(cmp["backends"]) == 1:
            print("only one backend importable (pip install 'edm-sim[jit]' adds numba)")
            return 0
        if not cmp["identical"]:
            print("FAIL: backends disagree on metrics (bit-identity broken)")
            return 1
        print("metrics bit-identical across backends")
        return 0

    # Quick mode gets its own default output so toy numbers never silently
    # overwrite the real BENCH_sweep.json baseline.
    out = Path(args.out) if args.out else (QUICK_OUT if args.quick else DEFAULT_OUT)

    report = run_bench(
        out_path=out,
        cache_dir=Path(args.cache_dir),
        workers=args.workers,
        quick=args.quick,
        kernel=args.kernel,
    )
    s = report["sweep"]
    print(
        f"sweep: {s['configs']} configs | cold {s['cold_seconds']:.2f}s "
        f"({s['requests_per_sec_cold']:,.0f} req/s) | warm {s['warm_seconds']:.3f}s "
        f"| speedup {s['speedup_warm_over_cold']:.1f}x"
    )
    sc = report["single_config"]
    print(
        f"single-config[{sc['kernel']}]: "
        f"{sc['requests_simulated']:,} requests in {sc['seconds']:.2f}s "
        f"= {sc['requests_per_sec']:,.0f} req/s "
        f"(telemetry overhead {report['telemetry_overhead_frac'] * 100:+.1f}%)"
    )
    log.info("wrote %s", out)

    if args.append_history:
        entry = append_history(report, path=args.append_history)
        log.info("appended history entry (git %s) to %s", entry["git_sha"], args.append_history)

    if args.compare:
        try:
            if Path(args.compare).suffix == ".jsonl":
                baseline = baseline_from_history(
                    args.compare, kernel=report["kernel"], quick=report["quick"]
                )
            else:
                baseline = load_report(args.compare)
            regressions = compare_reports(report, baseline, args.max_regression)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            log.error("cannot compare against %s: %s", args.compare, e)
            return 2
        if regressions:
            for r in regressions:
                log.error("REGRESSION: %s", r.describe())
            print(
                f"FAIL: {len(regressions)} throughput metric(s) regressed more than "
                f"{args.max_regression * 100:.0f}% vs {args.compare}"
            )
            return 1
        print(
            f"OK: throughput within {args.max_regression * 100:.0f}% of baseline {args.compare}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
