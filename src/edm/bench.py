"""Benchmark harness: ``python -m edm.bench``.

Times the full 64-config sweep cold (force re-simulation, cache rewritten)
and warm (pure cache reads), plus single-config engine throughput, and
writes ``BENCH_sweep.json`` at the repo root so later PRs have a perf
trajectory to beat.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from edm import __version__
from edm.cache import DEFAULT_CACHE_DIR
from edm.config import SimConfig
from edm.engine.core import simulate
from edm.sweep import default_grid, sweep
from edm.telemetry import TimeSeriesRecorder

DEFAULT_OUT = Path("BENCH_sweep.json")


def bench_single_config(requests_target: int = 2_000_000, telemetry: bool = False) -> dict:
    """Single-config throughput through the vectorized path.

    ``telemetry=True`` attaches a full-rate ``TimeSeriesRecorder`` so the
    report tracks the observer layer's overhead next to the bare engine.
    """
    # deasna has constant epoch volume, so requests_simulated is exact.
    base = SimConfig(workload="deasna", num_osds=20, policy="cmt")
    per_epoch = base.requests_per_epoch
    epochs = max(1, -(-requests_target // per_epoch))
    cfg = SimConfig(
        workload=base.workload,
        num_osds=base.num_osds,
        policy=base.policy,
        epochs=epochs,
        requests_per_epoch=per_epoch,
    )
    recorders = (TimeSeriesRecorder(),) if telemetry else ()
    t0 = time.perf_counter()
    metrics = simulate(cfg, recorders=recorders)
    elapsed = time.perf_counter() - t0
    simulated = metrics["total_requests"]
    return {
        "config": cfg.cache_name(),
        "epochs": epochs,
        "telemetry": telemetry,
        "requests_simulated": simulated,
        "seconds": elapsed,
        "requests_per_sec": simulated / elapsed if elapsed > 0 else float("inf"),
    }


def run_bench(
    out_path: Path = DEFAULT_OUT,
    cache_dir=DEFAULT_CACHE_DIR,
    workers: int | None = None,
    quick: bool = False,
) -> dict:
    overrides = {"epochs": 32, "requests_per_epoch": 1024} if quick else {}
    grid = default_grid(**overrides)

    t0 = time.perf_counter()
    cold = sweep(grid, cache_dir=cache_dir, workers=workers, force=True)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = sweep(grid, cache_dir=cache_dir, workers=workers)
    warm_s = time.perf_counter() - t0

    target = 200_000 if quick else 2_000_000
    single = bench_single_config(target)
    single_telemetry = bench_single_config(target, telemetry=True)
    overhead = (
        single_telemetry["seconds"] / single["seconds"] - 1.0
        if single["seconds"] > 0
        else 0.0
    )

    report = {
        "edm_version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "quick": quick,
        "sweep": {
            "configs": len(grid),
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "speedup_warm_over_cold": cold_s / warm_s if warm_s > 0 else float("inf"),
            "warm_cache_hits": warm.cache_hits,
            "total_requests_simulated": cold.total_requests,
            "requests_per_sec_cold": cold.total_requests / cold_s if cold_s > 0 else 0.0,
        },
        "single_config": single,
        "single_config_telemetry": single_telemetry,
        "telemetry_overhead_frac": overhead,
    }
    out_path = Path(out_path)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m edm.bench",
        description="Benchmark the EDM sweep engine (cold vs warm) and write BENCH_sweep.json",
    )
    ap.add_argument("--out", default=str(DEFAULT_OUT), help="output JSON path")
    ap.add_argument("--cache-dir", default=str(DEFAULT_CACHE_DIR))
    ap.add_argument("--workers", type=int, default=None)
    ap.add_argument(
        "--quick", action="store_true", help="tiny epochs/requests (CI smoke)"
    )
    args = ap.parse_args(argv)

    report = run_bench(
        out_path=Path(args.out),
        cache_dir=Path(args.cache_dir),
        workers=args.workers,
        quick=args.quick,
    )
    s = report["sweep"]
    print(
        f"sweep: {s['configs']} configs | cold {s['cold_seconds']:.2f}s "
        f"({s['requests_per_sec_cold']:,.0f} req/s) | warm {s['warm_seconds']:.3f}s "
        f"| speedup {s['speedup_warm_over_cold']:.1f}x"
    )
    sc = report["single_config"]
    print(
        f"single-config: {sc['requests_simulated']:,} requests in {sc['seconds']:.2f}s "
        f"= {sc['requests_per_sec']:,.0f} req/s "
        f"(telemetry overhead {report['telemetry_overhead_frac'] * 100:+.1f}%)"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
