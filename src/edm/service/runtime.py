"""Request-level service runtime: bounded queues, latency, migration spikes.

The engine is epoch-aggregate everywhere else: a request is a unit of load,
never a unit of time.  :class:`ServiceRuntime` gives each OSD a service rate
(requests retired per epoch, scaled by live capacity) and a bounded FIFO
queue, then steps an M/D/1-style Lindley recursion over the OSD axis once
per epoch:

    backlog' = max(backlog + injected_migration_work + accepted - rate, 0)

A request accepted as the ``i``-th arrival of its epoch sees sojourn time
``(backlog + injected + i + 1) / rate`` epochs -- deterministic FIFO service,
no per-request randomness.  Latencies accumulate into a fixed log-spaced
histogram, so p50/p99/p999 come from bin edges and are bit-stable across
runs and backends.

Migrations and fault re-placement bursts charge
``cfg.service_migration_cost`` request-equivalents per moved chunk into a
per-OSD pending pool (source and destination both pay -- a migration reads
one replica and writes another); the pool drains into the queues at
``1/cfg.service_cooldown_epochs`` per epoch, flushing outright once it falls
below one request.  That drain is what turns "migrate vs. tolerate
imbalance" into a visible latency tradeoff: epochs with in-flight migration
work report their own latency aggregate, and ``migration_spike_ratio``
compares it against clean epochs.

Everything is vectorized over OSDs and over the epoch's accepted requests
(``np.repeat`` + ``arange``, no per-request Python loop).  The scalar
reference implementation :func:`epoch_service_reference` reproduces the
vectorized :func:`epoch_service_vectorized` **bit-identically** -- same
IEEE-754 operations in the same order, pinned by tests/test_service.py --
so the fast path is provably the brute-force model.
"""

from __future__ import annotations

import numpy as np

from edm.service.spec import ServiceModel

__all__ = [
    "LATENCY_EDGES",
    "ServiceRuntime",
    "epoch_service_reference",
    "epoch_service_vectorized",
    "histogram_percentile",
]

# Fixed log-spaced latency bin edges (in epochs of service time): bin 0 is
# [0, 1e-4), then 256 log-spaced bins up to 1e4.  The histogram carries one
# extra slot past the last edge -- a dedicated overflow bin for anything
# slower than 1e4 epochs (including inf, a request accepted by a zero-rate
# OSD).  Percentiles report the overflow bin as inf; a finite latency at or
# below the top edge always resolves to a real (finite-edged) bin.
LATENCY_EDGES = np.concatenate(([0.0], np.logspace(-4.0, 4.0, 257)))
_NUM_BINS = LATENCY_EDGES.size - 1


def histogram_percentile(hist: np.ndarray, q: float) -> float:
    """Percentile from a latency histogram: lower edge of the covering bin.

    Returns NaN for an empty histogram (a run that never accepted a request
    -- e.g. zero-request epochs throughout, or an all-dead cluster) and inf
    only when the percentile falls in the dedicated overflow slot past the
    last edge (``hist`` has ``_NUM_BINS + 1`` entries).  Both guards are
    explicit Python branches, so no RuntimeWarning escapes under
    ``-W error``.
    """
    total = int(hist.sum())
    if total == 0:
        return float("nan")
    target = q * total
    idx = int(np.searchsorted(np.cumsum(hist), target, side="left"))
    if idx >= _NUM_BINS:
        return float("inf")
    return float(LATENCY_EDGES[idx])


def epoch_service_vectorized(
    arrivals: np.ndarray, base: np.ndarray, rate: np.ndarray, qbound: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One epoch of queue admission + FIFO latency, vectorized over OSDs.

    ``arrivals`` are integer-valued per-OSD request counts, ``base`` the
    backlog each queue starts the epoch with (carried depth + injected
    migration work), ``rate`` the effective service rate (0 for dead OSDs).
    Returns ``(accepted, latencies, new_depth)``: per-OSD accepted counts,
    the flat float64 latency array of every accepted request (epoch order:
    OSD 0's requests first), and the post-service queue depths.
    """
    # Admission: a queue has room for its bound plus one epoch of service
    # beyond the standing backlog; dead OSDs (rate 0) admit nothing.
    room = np.where(rate > 0, qbound + rate - base, 0.0)
    accepted = np.minimum(
        arrivals.astype(np.float64), np.maximum(np.floor(room), 0.0)
    ).astype(np.int64)
    total = int(accepted.sum())
    if total:
        # FIFO sojourn of the i-th accepted request on OSD j:
        # (base[j] + i + 1) / rate[j], built with repeat/arange -- no
        # per-request Python loop.
        starts = np.cumsum(accepted) - accepted
        offs = np.repeat(base, accepted)
        srep = np.repeat(rate, accepted)
        idx = np.arange(total, dtype=np.int64) - np.repeat(starts, accepted)
        work = offs + (idx + 1.0)
        lat = np.divide(
            work, srep, out=np.full(total, np.inf), where=srep > 0
        )
    else:
        lat = np.empty(0, dtype=np.float64)
    new_depth = np.maximum(base + accepted - rate, 0.0)
    return accepted, lat, new_depth


def epoch_service_reference(
    arrivals: np.ndarray, base: np.ndarray, rate: np.ndarray, qbound: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Brute-force scalar reference for :func:`epoch_service_vectorized`.

    Per-OSD, per-request Python loops performing the same IEEE-754
    operations in the same order as the vectorized path, so the two are
    bit-identical -- the cross-check tests/test_service.py pins.  Never used
    on the hot path.
    """
    n = arrivals.size
    accepted = np.zeros(n, dtype=np.int64)
    new_depth = np.zeros(n, dtype=np.float64)
    lats: list[float] = []
    for j in range(n):
        room_j = qbound + rate[j] - base[j] if rate[j] > 0 else 0.0
        cap = max(np.floor(room_j), 0.0)
        want = float(arrivals[j])
        accepted[j] = np.int64(min(want, cap))
        for i in range(int(accepted[j])):
            work = base[j] + (i + 1.0)
            lats.append(work / rate[j] if rate[j] > 0 else np.inf)
        new_depth[j] = max(base[j] + accepted[j] - rate[j], 0.0)
    return accepted, np.array(lats, dtype=np.float64), new_depth


class ServiceRuntime:
    """Per-run queue state-stepper and latency accumulator.

    Owns the latency histogram and the run-level service aggregates; the
    per-OSD queue arrays (``osd_queue_depth``, ``osd_service_rate``,
    ``osd_mig_backlog``) live on :class:`~edm.engine.state.ClusterState` so
    recorders and policies can observe them like any other state.
    """

    def __init__(self, model: ServiceModel, cfg) -> None:
        self.model = model
        self.qbound = model.queue_bound
        self._drain = 1.0 / float(cfg.service_cooldown_epochs)
        self._rates = model.rates(cfg.num_osds)
        # Run-level accumulators.  The histogram has one slot per real bin
        # plus a trailing overflow slot for latencies past the last edge.
        self.hist = np.zeros(_NUM_BINS + 1, dtype=np.int64)
        self.lat_sum = 0.0
        self.lat_count = 0
        self.stalled_total = 0
        self.requests_total = 0
        self.dropped_total = 0
        self.lost_work = 0.0
        self.spike_lat_max = float("nan")
        self._mig_lat_sum = 0.0
        self._mig_lat_count = 0
        self._clean_lat_sum = 0.0
        self._clean_lat_count = 0
        self._depth_mean_sum = 0.0
        self._depth_cov_sum = 0.0
        self._depth_max = 0.0
        self._epochs = 0

    def attach(self, state) -> None:
        """Install the model's rates on the cluster state."""
        state.osd_service_rate = self._rates.astype(np.float64).copy()

    def step(self, state, arrivals: np.ndarray, stats=None) -> None:
        """Advance every queue by one epoch and accumulate latency stats.

        ``arrivals`` is the per-OSD request-count vector the kernel routed
        this epoch (integer-valued float64).  Fills ``stats`` (an
        :class:`~edm.telemetry.recorder.EpochStats`) with this epoch's
        latency mean and queue-depth aggregates when provided.
        """
        depth = state.osd_queue_depth
        pending = state.osd_mig_backlog
        alive = state.osd_alive
        dead = ~alive
        if dead.any():
            # A dead OSD's backlog is lost, not served: account and zero it
            # so corpse queues never leak into depth statistics.
            self.lost_work += float(depth[dead].sum() + pending[dead].sum())
            depth[dead] = 0.0
            pending[dead] = 0.0
        # Drain pending migration work into the queues: a cooldown-sized
        # fraction per epoch, flushed outright once below one request.
        inject = np.where(pending < 1.0, pending, pending * self._drain)
        pending -= inject
        mig_epoch = bool(inject.sum() > 0.0)

        base = depth + inject
        rate = state.osd_service_rate * state.osd_capacity * alive
        accepted, lat, new_depth = epoch_service(arrivals, base, rate, self.qbound)
        np.copyto(depth, new_depth)

        offered = int(arrivals.sum())
        self.requests_total += offered
        self.dropped_total += offered - int(accepted.sum())
        finite = np.isfinite(lat)
        n_finite = int(finite.sum())
        self.stalled_total += lat.size - n_finite
        lat_mean = 0.0
        if lat.size:
            bins = np.clip(
                np.searchsorted(LATENCY_EDGES, lat, side="right") - 1,
                0,
                _NUM_BINS,
            )
            # searchsorted(side="right") pushes a latency equal to the top
            # edge past it; fold finite latencies at or below the top edge
            # back into the last real bin so only genuine overflow (> 1e4
            # epochs, or inf) lands in the overflow slot.
            over = bins == _NUM_BINS
            if over.any():
                bins[over & (lat <= LATENCY_EDGES[-1])] = _NUM_BINS - 1
            self.hist += np.bincount(bins, minlength=_NUM_BINS + 1)
        if n_finite:
            fin_sum = float(lat[finite].sum())
            self.lat_sum += fin_sum
            self.lat_count += n_finite
            lat_mean = fin_sum / n_finite
            if mig_epoch:
                self._mig_lat_sum += fin_sum
                self._mig_lat_count += n_finite
                epoch_max = float(lat[finite].max())
                if not self.spike_lat_max >= epoch_max:
                    self.spike_lat_max = epoch_max
            else:
                self._clean_lat_sum += fin_sum
                self._clean_lat_count += n_finite

        # Queue-depth aggregates over *alive* OSDs only.  Dead queues were
        # zeroed above; leaving them in would dilute the survivors' mean
        # with permanent zeros and inflate the CoV for the rest of the run
        # -- the same survivor-masking convention the load CoV uses.
        d_alive = depth[alive]
        if d_alive.size:
            d_mean = float(d_alive.mean())
            d_cov = float(d_alive.std() / d_mean) if d_mean > 0 else 0.0
            self._depth_max = max(self._depth_max, float(d_alive.max()))
        else:
            d_mean = 0.0
            d_cov = 0.0
        self._depth_mean_sum += d_mean
        self._depth_cov_sum += d_cov
        self._epochs += 1
        if stats is not None:
            stats.lat_mean = lat_mean
            stats.queue_depth_mean = d_mean
            stats.queue_depth_cov = d_cov

    def metrics_block(self) -> dict:
        """Run-level service metrics, merged into ``simulate``'s dict."""
        lat_mean = self.lat_sum / self.lat_count if self.lat_count else float("nan")
        mig_mean = (
            self._mig_lat_sum / self._mig_lat_count
            if self._mig_lat_count
            else float("nan")
        )
        clean_mean = (
            self._clean_lat_sum / self._clean_lat_count
            if self._clean_lat_count
            else float("nan")
        )
        if self._mig_lat_count and self._clean_lat_count and clean_mean > 0:
            spike_ratio = mig_mean / clean_mean
        else:
            spike_ratio = float("nan")
        epochs = self._epochs
        return {
            "service": self.model.spec,
            "service_lat_p50": histogram_percentile(self.hist, 0.50),
            "service_lat_p99": histogram_percentile(self.hist, 0.99),
            "service_lat_p999": histogram_percentile(self.hist, 0.999),
            "service_lat_mean": lat_mean,
            "service_requests_total": self.requests_total,
            "service_dropped_total": self.dropped_total,
            "service_stalled_total": self.stalled_total,
            "service_lost_work": self.lost_work,
            "migration_spike_ratio": spike_ratio,
            "migration_spike_lat_max": self.spike_lat_max,
            "queue_depth_mean": self._depth_mean_sum / epochs if epochs else 0.0,
            "queue_depth_max": self._depth_max,
            "queue_depth_cov_mean": self._depth_cov_sum / epochs if epochs else 0.0,
        }


# Module-level alias resolved at call time, so tests can monkeypatch the
# epoch implementation (e.g. swap in epoch_service_reference) and drive a
# whole simulate() run through the scalar path.
epoch_service = epoch_service_vectorized
