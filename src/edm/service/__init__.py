"""Request-level service model: per-OSD rates, bounded queues, tail latency.

``ServiceModel`` parses the compact ``service`` spec
(``rate:800;rate:400@0-3;queue:64``); ``ServiceRuntime`` steps the
vectorized per-epoch queue recursion inside ``simulate`` and accumulates
the p50/p99/p999 latency histogram and migration-spike statistics.
"""

from edm.service.runtime import (
    LATENCY_EDGES,
    ServiceRuntime,
    epoch_service_reference,
    epoch_service_vectorized,
    histogram_percentile,
)
from edm.service.spec import ServiceBand, ServiceModel

__all__ = [
    "LATENCY_EDGES",
    "ServiceBand",
    "ServiceModel",
    "ServiceRuntime",
    "epoch_service_reference",
    "epoch_service_vectorized",
    "histogram_percentile",
]
