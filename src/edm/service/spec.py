"""Service specs: per-OSD service rates and a bounded queue.

A :class:`ServiceModel` is parsed from a compact spec string (the
``service`` field of :class:`~edm.config.SimConfig`, or ``--service`` on the
CLI) and assigns every OSD a service rate -- requests retired per epoch at
full capacity -- plus an optional cluster-wide queue bound.  Like the fault
and endurance specs there is no randomness here: the model is a pure
function of the spec, so serviced runs are exactly as reproducible as
unserviced ones.

Spec grammar (clauses joined with ``;``, no commas so a comma-separated CLI
list can carry several scenarios)::

    spec    := clause (";" clause)*
    clause  := rate | queue
    rate    := "rate:" RATE ("@" OSD ("-" OSD)?)?   requests/epoch, optional range
    queue   := "queue:" DEPTH                       bounded queue (default unbounded)

Examples::

    rate:800                     every OSD retires 800 requests/epoch
    rate:800;rate:400@0-3        OSDs 0..3 at 400, the rest at 800
    rate:800;queue:64            bounded queue: arrivals beyond backlog 64 drop
    rate:400@0-3;rate:800@4-7    per-band rates covering the whole cluster

At most one rate clause may omit the ``@`` range; it becomes the default
rate for every OSD not covered by a ranged clause.  Without a default the
ranged clauses must cover the whole cluster.  At most one ``queue`` clause
is allowed; without one the queue is unbounded (nothing drops, latency just
grows).  The empty string (or ``"none"``) disables the service model
entirely: requests stay pure units of load and no latency is simulated.

Parsing canonicalizes the spec -- default rate first, ranged rates sorted by
their first OSD, the queue clause last, numbers normalized -- so two
spellings of the same model produce the same ``SimConfig`` content hash and
hit the same cache entry.

Built on the shared :mod:`edm.spec` toolkit (the same machinery behind the
faults and endurance grammars).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from edm.spec import (
    ClauseRule,
    SpecError,
    SpecGrammar,
    format_fixed,
    render_range,
    span_fragment,
    validate_bands,
)


@dataclass(frozen=True)
class ServiceBand:
    """One rate band: ``rate`` requests/epoch for OSDs ``lo..hi`` (inclusive).

    ``lo is None`` marks the default band covering every OSD not claimed by
    a ranged band.
    """

    rate: float
    lo: int | None = None
    hi: int | None = None

    def render(self) -> str:
        """Canonical spec fragment for this band."""
        return "rate:" + format_fixed(self.rate) + render_range(self.lo, self.hi)


@dataclass(frozen=True)
class _QueueClause:
    depth: int

    def render(self) -> str:
        return f"queue:{self.depth}"


def _build_rate(m: re.Match) -> ServiceBand:
    span = span_fragment(m.group(2), m.group(3))
    if span is None:
        return ServiceBand(rate=float(m.group(1)))
    return ServiceBand(rate=float(m.group(1)), lo=span[0], hi=span[1])


_GRAMMAR = SpecGrammar(
    name="service",
    clause_noun="service clause",
    expected="'rate:RATE', 'rate:RATE@OSD', 'rate:RATE@LO-HI' or 'queue:DEPTH'",
    rules=(
        ClauseRule(
            name="rate",
            regex=re.compile(r"^rate:(\d+(?:\.\d+)?)(?:@(\d+)(?:-(\d+))?)?$"),
            build=_build_rate,
        ),
        ClauseRule(
            name="queue",
            regex=re.compile(r"^queue:(\d+)$"),
            build=lambda m: _QueueClause(depth=int(m.group(1))),
        ),
    ),
)


@dataclass(frozen=True)
class ServiceModel:
    """A validated, canonically ordered service-rate model."""

    bands: tuple[ServiceBand, ...] = ()
    queue: int | None = None

    def __bool__(self) -> bool:
        return bool(self.bands)

    @property
    def spec(self) -> str:
        """Canonical spec string (round-trips through :meth:`parse`)."""
        if not self.bands:
            return ""
        parts = [band.render() for band in self.bands]
        if self.queue is not None:
            parts.append(f"queue:{self.queue}")
        return ";".join(parts)

    @property
    def queue_bound(self) -> float:
        """Queue depth bound as a float; ``inf`` when unbounded."""
        return float(self.queue) if self.queue is not None else np.inf

    @property
    def default_rate(self) -> float | None:
        for band in self.bands:
            if band.lo is None:
                return band.rate
        return None

    @classmethod
    def parse(cls, spec: str, num_osds: int | None = None) -> "ServiceModel":
        """Parse and validate a spec; ``num_osds`` enables coverage checks."""
        clauses = _GRAMMAR.parse(spec)
        if not clauses:
            return cls()
        bands = [c for c in clauses if isinstance(c, ServiceBand)]
        queues = [c for c in clauses if isinstance(c, _QueueClause)]
        if not bands:
            raise SpecError(
                f"bad service spec {spec!r}: no rate clause; at least one "
                f"'rate:RATE' is required"
            )
        if len(queues) > 1:
            raise SpecError(
                f"bad service spec {spec!r}: at most one queue clause is allowed"
            )
        for q in queues:
            if q.depth < 1:
                raise SpecError(
                    f"service clause {q.render()!r}: queue depth must be >= 1"
                )
        # Canonical order: the default band first, ranged bands by first OSD
        # (the queue clause renders last, see ``spec``).
        bands.sort(key=lambda b: (-1, -1) if b.lo is None else (b.lo, b.hi))
        model = cls(
            bands=tuple(bands), queue=queues[0].depth if queues else None
        )
        model.validate(num_osds=num_osds)
        return model

    def validate(self, num_osds: int | None = None) -> None:
        validate_bands(
            self.bands,
            num_osds,
            spec=self.spec,
            spec_noun="service spec",
            band_noun="service clause",
            value_noun="service rate",
            render=lambda b: b.render(),
            value=lambda b: b.rate,
            missing_noun="service rate",
        )

    def rates(self, num_osds: int) -> np.ndarray:
        """Service rate per OSD, in requests/epoch at full capacity.

        The empty model rates every OSD at ``inf`` -- the engine's "no
        service model" representation: infinite rate retires any backlog
        instantly, so queues never form.
        """
        self.validate(num_osds=num_osds)
        if not self.bands:
            return np.full(num_osds, np.inf)
        default = self.default_rate
        out = np.full(num_osds, default if default is not None else np.inf)
        for band in self.bands:
            if band.lo is not None:
                out[band.lo : band.hi + 1] = band.rate
        return out
