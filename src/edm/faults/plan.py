"""Fault plans: deterministic, seed-free schedules of OSD events.

A :class:`FaultPlan` is parsed from a compact spec string (the ``faults``
field of :class:`~edm.config.SimConfig`, or ``--faults`` on the CLI) and
fully determines *when* and *how* the cluster degrades -- there is no
randomness in the fault layer, so a faulted run is exactly as reproducible
as a healthy one.

Spec grammar (events joined with ``;``, no commas so a comma-separated CLI
list can carry several scenarios)::

    spec    := event (";" event)*
    event   := fail | slow | hiccup
    fail    := "fail:"   OSD "@" EPOCH                      permanent death
    slow    := "slow:"   OSD "@" EPOCH "x" FACTOR           permanent capacity x FACTOR
    hiccup  := "hiccup:" OSD "@" EPOCH "+" DURATION "x" FACTOR
                                                            transient window
                                                            [EPOCH, EPOCH+DURATION)

Examples::

    fail:3@100                 OSD 3 dies at epoch 100
    slow:5@50x0.5              OSD 5 halves its capacity from epoch 50 on
    hiccup:2@60+10x0.25        OSD 2 runs at quarter capacity for epochs 60..69
    fail:3@100;slow:5@50x0.5   both, one scenario

The empty string (or ``"none"``) is the healthy cluster.  Parsing
canonicalizes the spec -- events sorted by (epoch, kind, osd), numbers
normalized -- so two spellings of the same plan produce the same
``SimConfig`` content hash and hit the same cache entry.

Clause tokenization, matching, and number rendering come from the shared
:mod:`edm.spec` toolkit (also behind the endurance and service grammars);
canonical output is byte-identical to the pre-toolkit parser, so hashes and
cache keys are untouched.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from edm.spec import ClauseRule, SpecError, SpecGrammar, format_g

FAULT_KINDS = ("fail", "slow", "hiccup")

# Synthesized at runtime by the endurance layer (edm.endurance) when an OSD's
# consumed P/E cycles reach its rated budget; behaves exactly like ``fail``
# but is never part of a parseable spec -- wear-out timing is a consequence
# of traffic, not a schedule.
WEAROUT_KIND = "wearout"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled OSD event.

    ``factor`` is the capacity multiplier (``slow``/``hiccup`` only);
    ``duration`` is the hiccup window length in epochs (``hiccup`` only).
    """

    kind: str
    osd: int
    epoch: int
    factor: float = 1.0
    duration: int = 0

    def render(self) -> str:
        """Canonical spec fragment for this event."""
        if self.kind in ("fail", WEAROUT_KIND):
            return f"{self.kind}:{self.osd}@{self.epoch}"
        if self.kind == "slow":
            return f"slow:{self.osd}@{self.epoch}x{format_g(self.factor)}"
        return f"hiccup:{self.osd}@{self.epoch}+{self.duration}x{format_g(self.factor)}"


_GRAMMAR = SpecGrammar(
    name="faults",
    clause_noun="fault event",
    expected=(
        "'fail:OSD@EPOCH', 'slow:OSD@EPOCHxFACTOR' "
        "or 'hiccup:OSD@EPOCH+DURATIONxFACTOR'"
    ),
    rules=(
        ClauseRule(
            name="fail",
            regex=re.compile(r"^fail:(\d+)@(\d+)$"),
            build=lambda m: FaultEvent(
                kind="fail", osd=int(m.group(1)), epoch=int(m.group(2))
            ),
        ),
        ClauseRule(
            name="slow",
            regex=re.compile(r"^slow:(\d+)@(\d+)x(\d+(?:\.\d+)?)$"),
            build=lambda m: FaultEvent(
                kind="slow",
                osd=int(m.group(1)),
                epoch=int(m.group(2)),
                factor=float(m.group(3)),
            ),
        ),
        ClauseRule(
            name="hiccup",
            regex=re.compile(r"^hiccup:(\d+)@(\d+)\+(\d+)x(\d+(?:\.\d+)?)$"),
            build=lambda m: FaultEvent(
                kind="hiccup",
                osd=int(m.group(1)),
                epoch=int(m.group(2)),
                duration=int(m.group(3)),
                factor=float(m.group(4)),
            ),
        ),
    ),
)


@dataclass(frozen=True)
class FaultPlan:
    """A validated, canonically ordered schedule of fault events."""

    events: tuple[FaultEvent, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def spec(self) -> str:
        """Canonical spec string (round-trips through :meth:`parse`)."""
        return ";".join(ev.render() for ev in self.events)

    @property
    def failures(self) -> tuple[FaultEvent, ...]:
        return tuple(ev for ev in self.events if ev.kind == "fail")

    @classmethod
    def parse(cls, spec: str, num_osds: int | None = None) -> "FaultPlan":
        """Parse and validate a spec; ``num_osds`` enables OSD-range checks."""
        events = _GRAMMAR.parse(spec)
        events.sort(key=lambda ev: (ev.epoch, ev.kind, ev.osd))
        plan = cls(events=tuple(events))
        plan.validate(num_osds=num_osds)
        return plan

    def validate(self, num_osds: int | None = None) -> None:
        failed: set[int] = set()
        for ev in self.events:
            if num_osds is not None and not 0 <= ev.osd < num_osds:
                raise SpecError(
                    f"fault event {ev.render()!r}: OSD {ev.osd} out of range "
                    f"for a {num_osds}-OSD cluster"
                )
            if ev.kind in ("slow", "hiccup") and ev.factor <= 0:
                raise SpecError(
                    f"fault event {ev.render()!r}: capacity factor must be > 0"
                )
            if ev.kind == "hiccup" and ev.duration < 1:
                raise SpecError(f"fault event {ev.render()!r}: duration must be >= 1")
            if ev.kind == "fail":
                if ev.osd in failed:
                    raise SpecError(f"OSD {ev.osd} scheduled to fail more than once")
                failed.add(ev.osd)
        if num_osds is not None and len(failed) >= num_osds:
            raise SpecError(
                f"plan kills all {num_osds} OSDs; at least one must survive"
            )
