"""Fault injection: deterministic OSD failure / slow-disk / hiccup scenarios.

* :mod:`edm.faults.plan` -- :class:`FaultPlan` / :class:`FaultEvent`: parse
  and canonicalize ``--faults`` spec strings (seed-free, fully deterministic).
* :mod:`edm.faults.runtime` -- :class:`FaultRuntime`: applies a plan to live
  cluster state at epoch boundaries; :func:`effective_load` is the shared
  ``load / capacity`` view policies and re-placement rank by.

The engine wires these together in :func:`edm.engine.core.simulate`: a
``fail`` event triggers batch re-placement of the dead OSD's chunks through
the active policy's destination scoring (charged as ordinary migration
wear), ``slow``/``hiccup`` events scale per-OSD capacity, and every fired
event is fanned out to recorders via the ``on_fault`` observer hook.
"""

from edm.faults.plan import FAULT_KINDS, WEAROUT_KIND, FaultEvent, FaultPlan
from edm.faults.runtime import FaultRuntime, effective_load

__all__ = [
    "FAULT_KINDS",
    "WEAROUT_KIND",
    "FaultEvent",
    "FaultPlan",
    "FaultRuntime",
    "effective_load",
]
