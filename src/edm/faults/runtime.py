"""Fault runtime: applies a :class:`~edm.faults.plan.FaultPlan` to live state.

The engine calls :meth:`FaultRuntime.step` once per epoch *before* routing;
the runtime flips ``osd_alive``, recomputes ``osd_capacity`` (base capacity
eroded by ``slow`` events, further scaled by any active ``hiccup`` windows,
zeroed for dead OSDs), and maintains ``state.degraded`` -- the cheap flag
policies branch on so healthy runs never pay for fault support.

Capacity semantics:

* ``slow`` multiplies the OSD's *base* capacity permanently (two ``slow``
  events compound).
* ``hiccup`` scales the current base only inside its window; when the window
  closes the OSD returns to its base capacity.
* ``fail`` pins capacity to 0 and ``alive`` to False forever.

This module only touches NumPy arrays on the state object (duck-typed, no
engine imports), keeping the faults package import-cycle-free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from edm.faults.plan import FaultEvent, FaultPlan

if TYPE_CHECKING:
    from edm.engine.state import ClusterState


def effective_load(
    load: np.ndarray, capacity: np.ndarray, alive: np.ndarray
) -> np.ndarray:
    """Per-OSD load scaled by capacity: ``load / capacity``, ``inf`` when dead.

    A half-capacity disk serving the same traffic is twice as loaded; a dead
    disk is infinitely loaded, so it can never be picked as underloaded.
    Safe under ``-W error::RuntimeWarning``: the division only runs where
    capacity is positive.
    """
    out = np.full(load.shape, np.inf)
    np.divide(load, capacity, out=out, where=capacity > 0)
    out[~alive] = np.inf
    return out


class FaultRuntime:
    """Steps a plan's events into cluster state at epoch boundaries."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._starts: dict[int, list[FaultEvent]] = {}
        self._ends: dict[int, list[FaultEvent]] = {}
        for ev in plan.events:
            self._starts.setdefault(ev.epoch, []).append(ev)
            if ev.kind == "hiccup":
                self._ends.setdefault(ev.epoch + ev.duration, []).append(ev)
        self._base: np.ndarray | None = None
        self._active_hiccups: list[FaultEvent] = []

    def step(self, state: "ClusterState", epoch: int) -> list[FaultEvent]:
        """Apply events scheduled for ``epoch``; returns the events that fired.

        Expiring hiccup windows are processed first, then this epoch's new
        events, in the plan's canonical order -- fully deterministic.
        """
        if self._base is None:
            # Base capacity is whatever the cluster starts (or has grown)
            # with -- all ones for a homogeneous cluster, the device-class
            # factors under a heterogeneous topology plan -- so a later
            # recompute never resets an added band to nominal.
            self._base = state.osd_capacity.astype(np.float64).copy()
        elif self._base.size < state.num_osds:
            # Topology scale-out since the last step: adopt the new drives'
            # device-class capacity as their base.
            self._base = np.concatenate(
                [self._base, state.osd_capacity[self._base.size :]]
            )
        changed = False
        for ev in self._ends.pop(epoch, []):
            self._active_hiccups.remove(ev)
            changed = True
        fired = self._starts.get(epoch, [])
        for ev in fired:
            if ev.kind == "fail":
                state.osd_alive[ev.osd] = False
            elif ev.kind == "slow":
                self._base[ev.osd] *= ev.factor
            else:  # hiccup
                self._active_hiccups.append(ev)
            changed = True
        if changed:
            cap = self._base.copy()
            for ev in self._active_hiccups:
                cap[ev.osd] *= ev.factor
            cap[~state.osd_alive] = 0.0
            state.osd_capacity = cap
            state.degraded = bool(
                (~state.osd_alive).any() or (cap != 1.0).any()
            )
        return list(fired)
