"""Metric accumulation for a simulation run.

Paper metrics:
  * load-balance degree -- coefficient of variation of per-OSD load
    (std / mean), averaged over epochs; 0 is perfectly balanced.
  * wear spread -- (max - min) erase count across SSDs at end of run,
    plus the CoV of wear; endurance-aware migration should shrink both.
  * migration cost -- total data moved (chunks x chunk size).

``MetricsAccumulator`` is the engine's always-on :class:`~edm.telemetry.Recorder`:
it rides the same observer hooks as user-supplied telemetry, and its
``finalize`` return value is what ``simulate`` returns.  All values in the
final dict are plain Python ints/floats/lists so results pickle stably and
compare exactly across processes.
"""

from __future__ import annotations

import numpy as np

from edm.config import SimConfig
from edm.engine.state import ClusterState
from edm.telemetry.recorder import EpochStats, Recorder


class MetricsAccumulator(Recorder):
    def __init__(self):
        self.cfg: SimConfig | None = None

    def on_run_start(self, cfg: SimConfig, state: ClusterState) -> None:
        self.cfg = cfg
        self._cov_sum = 0.0
        self._peak_ratio_sum = 0.0
        self._epochs = 0
        self._total_requests = 0
        self._total_writes = 0

    def on_epoch(self, state: ClusterState, load: np.ndarray, stats: EpochStats) -> None:
        mean = load.mean()
        if mean > 0:
            self._cov_sum += float(load.std() / mean)
            self._peak_ratio_sum += float(load.max() / mean)
        self._epochs += 1
        self._total_requests += stats.requests
        self._total_writes += stats.writes

    def finalize(self, state: ClusterState, final_load: np.ndarray) -> dict:
        cfg = self.cfg
        if cfg is None:
            raise RuntimeError("finalize() before on_run_start()")
        wear = state.osd_wear
        wear_mean = float(wear.mean())
        epochs = max(self._epochs, 1)
        final_mean = float(final_load.mean())
        return {
            "workload": cfg.workload,
            "policy": cfg.policy,
            "num_osds": cfg.num_osds,
            "skew": cfg.skew,
            "seed": cfg.seed,
            "epochs": self._epochs,
            "total_requests": self._total_requests,
            "total_writes": self._total_writes,
            # Load balance
            "load_cov_mean": self._cov_sum / epochs,
            "load_peak_ratio_mean": self._peak_ratio_sum / epochs,
            "load_cov_final": float(final_load.std() / final_mean) if final_mean > 0 else 0.0,
            # Wear / endurance
            "wear_mean": wear_mean,
            "wear_max": float(wear.max()),
            "wear_min": float(wear.min()),
            "wear_spread": float(wear.max() - wear.min()),
            "wear_cov": float(wear.std() / wear_mean) if wear_mean > 0 else 0.0,
            "per_osd_wear": [float(w) for w in wear],
            # Migration cost
            "migrations_total": int(state.migrations_total),
            "migration_cost_mb": float(state.migrations_total * cfg.chunk_size_mb),
        }
