"""Metric accumulation for a simulation run.

Paper metrics:
  * load-balance degree -- coefficient of variation of per-OSD load
    (std / mean), averaged over epochs; 0 is perfectly balanced.
  * wear spread -- (max - min) erase count across SSDs at end of run,
    plus the CoV of wear; endurance-aware migration should shrink both.
  * migration cost -- total data moved (chunks x chunk size).

All values in the final dict are plain Python ints/floats/lists so results
pickle stably and compare exactly across processes.
"""

from __future__ import annotations

import numpy as np

from edm.config import SimConfig
from edm.engine.state import ClusterState


class MetricsAccumulator:
    def __init__(self, cfg: SimConfig):
        self.cfg = cfg
        self._cov_sum = 0.0
        self._peak_ratio_sum = 0.0
        self._epochs = 0
        self._total_requests = 0
        self._total_writes = 0

    def observe_epoch(self, load: np.ndarray, counts_sum: int, writes_sum: int) -> None:
        mean = load.mean()
        if mean > 0:
            self._cov_sum += float(load.std() / mean)
            self._peak_ratio_sum += float(load.max() / mean)
        self._epochs += 1
        self._total_requests += int(counts_sum)
        self._total_writes += int(writes_sum)

    def finalize(self, state: ClusterState, final_load: np.ndarray) -> dict:
        cfg = self.cfg
        wear = state.osd_wear
        wear_mean = float(wear.mean())
        epochs = max(self._epochs, 1)
        final_mean = float(final_load.mean())
        return {
            "workload": cfg.workload,
            "policy": cfg.policy,
            "num_osds": cfg.num_osds,
            "skew": cfg.skew,
            "seed": cfg.seed,
            "epochs": self._epochs,
            "total_requests": self._total_requests,
            "total_writes": self._total_writes,
            # Load balance
            "load_cov_mean": self._cov_sum / epochs,
            "load_peak_ratio_mean": self._peak_ratio_sum / epochs,
            "load_cov_final": float(final_load.std() / final_mean) if final_mean > 0 else 0.0,
            # Wear / endurance
            "wear_mean": wear_mean,
            "wear_max": float(wear.max()),
            "wear_min": float(wear.min()),
            "wear_spread": float(wear.max() - wear.min()),
            "wear_cov": float(wear.std() / wear_mean) if wear_mean > 0 else 0.0,
            "per_osd_wear": [float(w) for w in wear],
            # Migration cost
            "migrations_total": int(state.migrations_total),
            "migration_cost_mb": float(state.migrations_total * cfg.chunk_size_mb),
        }
