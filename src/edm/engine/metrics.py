"""Metric accumulation for a simulation run.

Paper metrics:
  * load-balance degree -- coefficient of variation of per-OSD load
    (std / mean), averaged over epochs; 0 is perfectly balanced.
  * wear spread -- (max - min) erase count across SSDs at end of run,
    plus the CoV of wear; endurance-aware migration should shrink both.
  * migration cost -- total data moved (chunks x chunk size).
  * endurance (rated configs only) -- min/mean/CoV of remaining rated
    lifetime over surviving OSDs, predicted and actual first-wear-out
    epochs, and wear-out event counts.
  * service (serviced configs only) -- p50/p99/p999 request latency,
    queue-depth aggregates, and migration-induced latency-spike stats,
    accumulated by :class:`edm.service.ServiceRuntime` and merged here.
  * topology (elastic configs only) -- add/drain event counts, drain
    evacuation moves, and cold-drive wear uptake / final load share for
    the drives scale-out added.
  * redundancy (redundant configs only) -- reconstruction chunk/read
    counts and data volumes, plus unrecoverable-group data loss,
    accumulated by :class:`edm.redundancy.RedundancyRuntime` and merged
    here.

``MetricsAccumulator`` is the engine's always-on :class:`~edm.telemetry.Recorder`:
it rides the same observer hooks as user-supplied telemetry, and its
``finalize`` return value is what ``simulate`` returns.  All values in the
final dict are plain Python ints/floats/lists so results pickle stably and
compare exactly across processes.
"""

from __future__ import annotations

import numpy as np

from edm.config import SimConfig
from edm.engine.state import ClusterState
from edm.telemetry.recorder import EpochStats, Recorder


# Rows buffered per CoV block (see MetricsAccumulator._flush_loads): bounds
# the history to block_size x num_osds floats regardless of epoch count.
_COV_BLOCK = 4096


class MetricsAccumulator(Recorder):
    def __init__(self, service=None, redundancy=None):
        # ``service`` is the run's ServiceRuntime (None when no service
        # spec): its latency/queue aggregates join the final metrics dict,
        # keyed on so unserviced dicts stay bit-identical to the
        # service-unaware engine.  ``redundancy`` (the run's
        # RedundancyRuntime, None when no scheme) contributes the
        # reconstruction-traffic block the same way.
        self.cfg: SimConfig | None = None
        self._service = service
        self._redundancy = redundancy

    def on_run_start(self, cfg: SimConfig, state: ClusterState) -> None:
        self.cfg = cfg
        self._cov_sum = 0.0
        self._peak_ratio_sum = 0.0
        self._epochs = 0
        self._total_requests = 0
        self._total_writes = 0
        # Healthy runs defer the per-epoch load CoV / peak-ratio math: load
        # vectors are copied into a fixed block buffer and reduced row-wise
        # per flush (same per-row arithmetic as the scalar calls, summed in
        # the same left-to-right order via cumsum, so the result is
        # bit-identical -- pinned by tests).  Faulted runs keep the scalar
        # path: on_fault reads the running CoV mean mid-run.  Elastic runs
        # do too: the block buffer's OSD width is fixed at allocation.
        self._load_hist = np.empty((min(_COV_BLOCK, max(cfg.epochs, 1)), state.num_osds))
        self._hist_fill = 0
        # Degraded-mode tracking (only exercised when cfg.faults is set, so
        # healthy runs keep their historical metrics dict bit-for-bit).
        self._faulted = bool(cfg.faults)
        self._fault_counts = {"fail": 0, "slow": 0, "hiccup": 0}
        self._replaced_total = 0
        self._replacement_burst_max = 0
        self._cov_alive_sum = 0.0
        self._recover_baseline = 0.0
        self._recover_start: int | None = None
        self._recovery_epochs = -1
        # Endurance tracking (only surfaced when cfg.endurance is set).
        self._endured = bool(cfg.endurance)
        self._wearouts = 0
        self._wearout_replaced = 0
        self._first_wearout_epoch = -1
        # Topology tracking (only surfaced when cfg.topology is set).
        self._topology = bool(cfg.topology)
        self._osds_added = 0
        self._osds_drained = 0
        self._drain_moves = 0
        self._cold_ids: list[int] = []

    def on_topology(self, state: ClusterState, event, moved: int) -> None:
        if event.kind == "add":
            self._osds_added += event.count
            # The hook fires after growth: the newest ``count`` ids are the
            # cold drives this event added.
            self._cold_ids.extend(
                range(state.num_osds - event.count, state.num_osds)
            )
        else:
            self._osds_drained += 1
            self._drain_moves += moved

    def on_fault(self, state: ClusterState, event, replaced: int) -> None:
        if event.kind == "wearout":
            self._wearouts += 1
            self._wearout_replaced += replaced
            if self._first_wearout_epoch < 0:
                self._first_wearout_epoch = event.epoch
            return
        self._fault_counts[event.kind] += 1
        if event.kind == "fail":
            self._replaced_total += replaced
            self._replacement_burst_max = max(self._replacement_burst_max, replaced)
            # Arm the recovery clock: how long until per-epoch load CoV over
            # the survivors returns to (near) its pre-failure running mean.
            self._recover_baseline = self._cov_sum / max(self._epochs, 1)
            self._recover_start = state.epoch
            self._recovery_epochs = -1

    def on_epoch(self, state: ClusterState, load: np.ndarray, stats: EpochStats) -> None:
        if self._faulted or self._topology:
            # Scalar path: faulted runs read the running CoV mean mid-run,
            # elastic runs outgrow the fixed-width block buffer.
            mean = load.mean()
            if mean > 0:
                self._cov_sum += float(load.std() / mean)
                self._peak_ratio_sum += float(load.max() / mean)
            self._track_degraded(state, load, stats)
        else:
            self._load_hist[self._hist_fill] = load
            self._hist_fill += 1
            if self._hist_fill == len(self._load_hist):
                self._flush_loads()
        self._epochs += 1
        self._total_requests += stats.requests
        self._total_writes += stats.writes

    def _flush_loads(self) -> None:
        """Fold the buffered load vectors into the running CoV / peak sums."""
        if self._hist_fill == 0:
            return
        block = self._load_hist[: self._hist_fill]
        mean = block.mean(axis=1)
        ok = mean > 0
        cov = block.std(axis=1)[ok] / mean[ok]
        peak = block.max(axis=1)[ok] / mean[ok]
        if cov.size:
            # cumsum folds left to right: the exact addition order (and
            # rounding) of the scalar `+=` per epoch, resumed from the
            # running totals.
            self._cov_sum = float(np.cumsum(np.concatenate(([self._cov_sum], cov)))[-1])
            self._peak_ratio_sum = float(
                np.cumsum(np.concatenate(([self._peak_ratio_sum], peak)))[-1]
            )
        self._hist_fill = 0

    def _track_degraded(self, state: ClusterState, load: np.ndarray, stats: EpochStats) -> None:
        alive = state.osd_alive
        la = load[alive]
        am = la.mean() if la.size else 0.0
        cov_alive = float(la.std() / am) if am > 0 else 0.0
        self._cov_alive_sum += cov_alive
        if self._recover_start is not None and self._recovery_epochs < 0:
            # Recovered once survivor CoV is back within 10% of the
            # pre-failure mean (epsilon keeps a zero baseline reachable).
            threshold = max(self._recover_baseline * 1.1, self._recover_baseline + 1e-9)
            if cov_alive <= threshold:
                self._recovery_epochs = stats.epoch - self._recover_start

    def finalize(self, state: ClusterState, final_load: np.ndarray) -> dict:
        cfg = self.cfg
        if cfg is None:
            raise RuntimeError("finalize() before on_run_start()")
        self._flush_loads()
        wear = state.osd_wear
        wear_mean = float(wear.mean())
        epochs = max(self._epochs, 1)
        final_mean = float(final_load.mean())
        out = {
            "workload": cfg.workload,
            "policy": cfg.policy,
            "num_osds": cfg.num_osds,
            "skew": cfg.skew,
            "seed": cfg.seed,
            "epochs": self._epochs,
            "total_requests": self._total_requests,
            "total_writes": self._total_writes,
            # Load balance
            "load_cov_mean": self._cov_sum / epochs,
            "load_peak_ratio_mean": self._peak_ratio_sum / epochs,
            "load_cov_final": float(final_load.std() / final_mean) if final_mean > 0 else 0.0,
            # Wear / endurance
            "wear_mean": wear_mean,
            "wear_max": float(wear.max()),
            "wear_min": float(wear.min()),
            "wear_spread": float(wear.max() - wear.min()),
            "wear_cov": float(wear.std() / wear_mean) if wear_mean > 0 else 0.0,
            "per_osd_wear": [float(w) for w in wear],
            # Migration cost
            "migrations_total": int(state.migrations_total),
            "migration_cost_mb": float(state.migrations_total * cfg.chunk_size_mb),
        }
        if self._faulted:
            # Degraded-mode metrics, present only for faulted configs so
            # healthy metrics dicts stay bit-identical to the fault-unaware
            # engine.  ``*_alive`` variants exclude dead OSDs (a dead OSD's
            # frozen zero load would otherwise inflate CoV forever).
            alive = state.osd_alive
            aw = wear[alive]
            awm = float(aw.mean()) if aw.size else 0.0
            out["faults"] = cfg.faults
            out["fault_failures"] = self._fault_counts["fail"]
            out["fault_slow_events"] = self._fault_counts["slow"]
            out["fault_hiccups"] = self._fault_counts["hiccup"]
            out["replacement_moves_total"] = int(self._replaced_total)
            out["replacement_burst_max"] = int(self._replacement_burst_max)
            out["fault_recovery_epochs"] = int(self._recovery_epochs)
            out["load_cov_alive_mean"] = self._cov_alive_sum / epochs
            out["wear_cov_alive"] = float(aw.std() / awm) if awm > 0 else 0.0
            out["osds_alive_final"] = int(alive.sum())
        if self._endured:
            # Endurance metrics, present only for rated configs so unrated
            # metrics dicts stay bit-identical to the endurance-unaware
            # engine.  Lifetime stats are alive-masked: a worn-out OSD's
            # zero remaining life describes a drive that already failed.
            # Topology-added drives carry no rating (infinite remaining
            # life) and are excluded, else their inf poisons mean/std.
            alive = state.osd_alive
            rem = state.remaining_life()[alive]
            rem = rem[np.isfinite(rem)]
            rem_mean = float(rem.mean()) if rem.size else 0.0
            pred = state.predicted_wearout_epochs()[alive]
            pred_min = float(pred.min()) if pred.size else np.inf
            out["endurance"] = cfg.endurance
            out["remaining_life_min"] = float(rem.min()) if rem.size else 0.0
            out["remaining_life_mean"] = rem_mean
            out["remaining_life_cov"] = float(rem.std() / rem_mean) if rem_mean > 0 else 0.0
            out["predicted_first_wearout_epoch"] = (
                int(state.epoch + pred_min) if np.isfinite(pred_min) else -1
            )
            out["wearouts_total"] = int(self._wearouts)
            out["first_wearout_epoch"] = int(self._first_wearout_epoch)
            out["wearout_replacements_total"] = int(self._wearout_replaced)
            out["osds_alive_final"] = int(alive.sum())
        if self._topology:
            # Topology metrics, present only for elastic configs so static
            # metrics dicts stay bit-identical to the topology-unaware
            # engine.  "Cold" drives are the ones scale-out added: their
            # wear uptake and final load share quantify how hard policies
            # lean on fresh low-wear capacity.
            alive = state.osd_alive
            out["topology"] = cfg.topology
            out["osds_total_final"] = int(state.num_osds)
            out["osds_added_total"] = int(self._osds_added)
            out["osds_drained_total"] = int(self._osds_drained)
            out["drain_moves_total"] = int(self._drain_moves)
            out["load_cov_alive_mean"] = self._cov_alive_sum / epochs
            cold = np.asarray(self._cold_ids, dtype=np.int64)
            if cold.size:
                cw = wear[cold]
                out["cold_wear_mean"] = float(cw.mean())
                out["cold_wear_max"] = float(cw.max())
                total_load = float(final_load.sum())
                out["cold_load_share_final"] = (
                    float(final_load[cold].sum()) / total_load
                    if total_load > 0
                    else 0.0
                )
            out["osds_alive_final"] = int(alive.sum())
        if self._service is not None:
            # Service metrics (tail latency, queue depth, migration spikes),
            # present only for serviced configs so unserviced metrics dicts
            # stay bit-identical to the service-unaware engine.
            out.update(self._service.metrics_block())
        if self._redundancy is not None:
            # Reconstruction metrics (group width, rebuild reads/writes,
            # data loss), present only for redundant configs so plain
            # metrics dicts stay bit-identical to the redundancy-unaware
            # engine.
            out.update(self._redundancy.metrics_block())
        return out
