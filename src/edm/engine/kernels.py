"""Fused epoch kernel: the engine's per-epoch inner math in one call.

One epoch of engine math -- routing bincounts, wear accrual, and the
heat/load EMA updates -- fused into a single kernel invocation with
per-run preallocated scratch buffers and in-place updates, so the hot loop
stops re-allocating intermediate arrays every epoch.

Two backends, selected by ``SimConfig.kernel`` (``--kernel`` on the CLI):

* ``numpy`` -- the default fused NumPy kernel.  Pure array ops, no
  dependencies beyond NumPy itself.
* ``numba`` -- an ``@njit(cache=True, fastmath=False)`` loop kernel,
  compiled on first use and disk-cached.  Requires the optional ``[jit]``
  extra (``pip install edm-sim[jit]``); numba is never a hard dependency.

``auto`` (the :class:`~edm.config.SimConfig` default) resolves to ``numba``
when importable and ``numpy`` otherwise.

Both backends are **bit-identical**: every floating-point operation runs in
the same order with the same IEEE-754 rounding (``fastmath=False`` keeps
LLVM from fusing or reassociating), so metrics, golden hashes, and cache
entries are byte-equal regardless of backend.  ``tests/test_kernels.py``
pins this across policy x workload x faults x endurance samples.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from edm.config import SimConfig

if TYPE_CHECKING:
    from edm.engine.state import ClusterState

__all__ = [
    "EpochKernel",
    "NumbaKernel",
    "NumpyKernel",
    "available_kernels",
    "make_kernel",
    "numba_available",
    "resolve_kernel",
]

# Lazily built numba entry point (None until first requested; False when a
# build attempt failed so we don't retry the import every call).
_NUMBA_STEP = None


def numba_available() -> bool:
    """True when the optional numba extra is importable."""
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


def available_kernels() -> tuple[str, ...]:
    """Concrete backends usable in this environment (always includes numpy)."""
    return ("numpy", "numba") if numba_available() else ("numpy",)


def resolve_kernel(name: str) -> str:
    """Resolve a ``SimConfig.kernel`` value to a concrete backend name.

    ``auto`` picks numba when importable, numpy otherwise.  Asking for
    ``numba`` explicitly without the extra installed is an error rather
    than a silent fallback -- a benchmark or CI job that believes it is
    timing the JIT backend must never quietly measure the other one.
    """
    if name == "auto":
        return "numba" if numba_available() else "numpy"
    if name == "numba" and not numba_available():
        raise RuntimeError(
            "kernel 'numba' requested but numba is not importable; "
            "install the optional extra (pip install 'edm-sim[jit]') "
            "or use --kernel numpy/auto"
        )
    if name not in ("numpy", "numba"):
        raise ValueError(f"unknown kernel backend {name!r}")
    return name


class EpochKernel:
    """Shared scratch allocation for one run's epoch updates.

    A kernel instance belongs to a single ``simulate`` call: the scratch
    buffers are sized to the config and reused every epoch, and the load
    vector handed to observers is the engine's live buffer (the observer
    contract already requires copying anything kept across epochs).
    """

    name = "abstract"

    def __init__(self, cfg: SimConfig):
        self.heat_alpha = float(cfg.heat_alpha)
        self.load_alpha = float(cfg.load_alpha)
        self.wear_per_write = float(cfg.wear_per_write)
        self.num_osds = cfg.num_osds
        self._scratch_c = np.empty(cfg.num_chunks)

    def resize(self, num_osds: int) -> None:
        """Re-size the per-OSD buffers after a topology scale-out event.

        The chunk-axis scratch is untouched (the chunk set never grows);
        backends with preallocated OSD-axis buffers must override and
        reallocate them.  Called between epochs only, never mid-update.
        """
        self.num_osds = num_osds

    def epoch_update(
        self, state: "ClusterState", counts: np.ndarray, writes: np.ndarray
    ) -> np.ndarray:
        """Route one epoch's counts and fold them into the state.

        ``counts`` / ``writes`` are per-chunk float64 access and write
        counts (integer-valued; float64 so no cast happens on the hot
        path).  Updates ``osd_wear``, ``chunk_heat``, ``chunk_write_heat``,
        and ``osd_load_ema`` in place and returns the per-OSD load vector
        for this epoch.
        """
        raise NotImplementedError


class NumpyKernel(EpochKernel):
    """Default backend: fused NumPy array ops with reused scratch."""

    name = "numpy"

    def epoch_update(self, state, counts, writes):
        n = self.num_osds
        # Routing: per-OSD load and write mass via weighted bincounts over
        # the chunk->OSD map (sequential accumulation, the order the numba
        # backend replicates exactly).
        load = np.bincount(state.chunk_owner, weights=counts, minlength=n)
        wear_inc = np.bincount(state.chunk_owner, weights=writes, minlength=n)
        # Wear accrual, in place (wear_inc is this call's own bincount
        # output, so scaling it in place is safe).
        np.multiply(wear_inc, self.wear_per_write, out=wear_inc)
        state.osd_wear += wear_inc
        # Heat EMAs over chunks: scratch holds alpha * x so the update is
        # two in-place passes with zero per-epoch allocation.
        a = self.heat_alpha
        scratch = self._scratch_c
        np.multiply(counts, a, out=scratch)
        state.chunk_heat *= 1.0 - a
        state.chunk_heat += scratch
        np.multiply(writes, a, out=scratch)
        state.chunk_write_heat *= 1.0 - a
        state.chunk_write_heat += scratch
        # Load EMA over OSDs (tiny; reuse wear_inc as the N-sized scratch).
        np.multiply(load, self.load_alpha, out=wear_inc)
        state.osd_load_ema *= 1.0 - self.load_alpha
        state.osd_load_ema += wear_inc
        return load


def _build_numba_step():
    """Compile (or load from disk cache) the fused numba epoch step."""
    global _NUMBA_STEP
    if _NUMBA_STEP is not None:
        return _NUMBA_STEP
    import numba

    @numba.njit(cache=True, fastmath=False)
    def _step(
        chunk_owner,
        counts,
        writes,
        chunk_heat,
        chunk_write_heat,
        osd_wear,
        osd_load_ema,
        load_out,
        wear_inc_out,
        heat_alpha,
        load_alpha,
        wear_per_write,
    ):
        num_chunks = chunk_owner.shape[0]
        num_osds = load_out.shape[0]
        for j in range(num_osds):
            load_out[j] = 0.0
            wear_inc_out[j] = 0.0
        # Same sequential accumulation order as np.bincount.
        for i in range(num_chunks):
            o = chunk_owner[i]
            load_out[o] += counts[i]
            wear_inc_out[o] += writes[i]
        one_minus_ha = 1.0 - heat_alpha
        one_minus_la = 1.0 - load_alpha
        for j in range(num_osds):
            osd_wear[j] += wear_inc_out[j] * wear_per_write
            t = osd_load_ema[j] * one_minus_la
            osd_load_ema[j] = t + load_alpha * load_out[j]
        for i in range(num_chunks):
            h = chunk_heat[i] * one_minus_ha
            chunk_heat[i] = h + heat_alpha * counts[i]
            w = chunk_write_heat[i] * one_minus_ha
            chunk_write_heat[i] = w + heat_alpha * writes[i]

    _NUMBA_STEP = _step
    return _step


class NumbaKernel(EpochKernel):
    """JIT backend: one compiled loop over chunks + OSDs per epoch.

    The load vector handed back each epoch is this kernel's preallocated
    buffer, rewritten in place every call -- observers must copy what they
    keep, which the recorder contract already demands.
    """

    name = "numba"

    def __init__(self, cfg: SimConfig):
        super().__init__(cfg)
        self._step = _build_numba_step()
        self._load = np.zeros(cfg.num_osds)
        self._wear_inc = np.zeros(cfg.num_osds)

    def resize(self, num_osds: int) -> None:
        super().resize(num_osds)
        self._load = np.zeros(num_osds)
        self._wear_inc = np.zeros(num_osds)

    def epoch_update(self, state, counts, writes):
        self._step(
            state.chunk_owner,
            counts,
            writes,
            state.chunk_heat,
            state.chunk_write_heat,
            state.osd_wear,
            state.osd_load_ema,
            self._load,
            self._wear_inc,
            self.heat_alpha,
            self.load_alpha,
            self.wear_per_write,
        )
        return self._load


_KERNELS: dict[str, type[EpochKernel]] = {
    "numpy": NumpyKernel,
    "numba": NumbaKernel,
}


def make_kernel(cfg: SimConfig) -> EpochKernel:
    """Instantiate the backend ``cfg.kernel`` resolves to for this run."""
    return _KERNELS[resolve_kernel(cfg.kernel)](cfg)
