"""Cluster state held as flat NumPy arrays.

Everything the engine and policies touch per epoch lives here as an array
indexed by chunk or by OSD, so routing, wear accrual, and policy selection
are batch array ops rather than per-request Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from edm.config import SimConfig


@dataclass
class ClusterState:
    num_osds: int
    num_chunks: int
    # Per-chunk
    chunk_owner: np.ndarray          # int32 [C], OSD id owning each chunk
    chunk_heat: np.ndarray           # float64 [C], EMA of access counts
    chunk_write_heat: np.ndarray     # float64 [C], EMA of write counts
    chunk_last_migrated: np.ndarray  # int64 [C], epoch of last migration
    #   (never-migrated sentinel -(10**9): far enough in the past that every
    #   chunk clears any cooldown window at epoch 0 without int64 overflow)
    # Per-OSD
    osd_wear: np.ndarray             # float64 [N], cumulative erase-count units
    osd_load_ema: np.ndarray         # float64 [N], EMA of per-epoch load
    # Fault state (healthy defaults filled in by __post_init__)
    osd_alive: np.ndarray = None     # bool [N], False once an OSD has failed
    osd_capacity: np.ndarray = None  # float64 [N], capacity multiplier (0 = dead)
    # Endurance state (unlimited defaults filled in by __post_init__)
    osd_rated_life: np.ndarray = None  # float64 [N], rated P/E budget in wear units (inf = unrated)
    osd_wear_rate: np.ndarray = None   # float64 [N], EWMA of per-epoch wear increments
    # Service state (idle defaults filled in by __post_init__; rate inf =
    # no service model, any backlog retires instantly and queues never form)
    osd_service_rate: np.ndarray = None  # float64 [N], requests/epoch at full capacity
    osd_queue_depth: np.ndarray = None   # float64 [N], backlog carried across epochs
    osd_mig_backlog: np.ndarray = None   # float64 [N], pending migration work (request-equivalents)
    # Topology state (static defaults filled in by __post_init__; N grows at
    # scale-out events, every per-OSD array above growing in lockstep)
    osd_draining: np.ndarray = None  # bool [N], True once a drain marked the OSD source-only
    # Redundancy state (plain configs carry None/0 and skip every group
    # check).  Groups are consecutive id ranges of group_width chunks whose
    # members must live on pairwise-distinct OSDs.
    chunk_group: np.ndarray = None   # int32 [C], placement-group id per chunk (None = plain)
    group_width: int = 0             # chunks per group (0 = plain)
    degraded: bool = False           # True while any OSD is dead or off-nominal
    epoch: int = 0
    migrations_total: int = 0

    def __post_init__(self) -> None:
        if self.osd_alive is None:
            self.osd_alive = np.ones(self.num_osds, dtype=bool)
        if self.osd_capacity is None:
            self.osd_capacity = np.ones(self.num_osds)
        if self.osd_rated_life is None:
            self.osd_rated_life = np.full(self.num_osds, np.inf)
        if self.osd_wear_rate is None:
            self.osd_wear_rate = np.zeros(self.num_osds)
        if self.osd_service_rate is None:
            self.osd_service_rate = np.full(self.num_osds, np.inf)
        if self.osd_queue_depth is None:
            self.osd_queue_depth = np.zeros(self.num_osds)
        if self.osd_mig_backlog is None:
            self.osd_mig_backlog = np.zeros(self.num_osds)
        if self.osd_draining is None:
            self.osd_draining = np.zeros(self.num_osds, dtype=bool)

    def validate(self) -> None:
        """Cheap invariant check: every chunk owned by exactly one valid OSD."""
        if self.chunk_owner.shape != (self.num_chunks,):
            raise AssertionError("chunk_owner shape drifted")
        if self.chunk_owner.min() < 0 or self.chunk_owner.max() >= self.num_osds:
            raise AssertionError("chunk_owner contains out-of-range OSD id")
        if self.osd_alive.shape != (self.num_osds,) or self.osd_capacity.shape != (
            self.num_osds,
        ):
            raise AssertionError("osd_alive/osd_capacity shape drifted")
        if (self.osd_capacity < 0).any():
            raise AssertionError("osd_capacity contains negative entries")
        if not self.osd_alive.all():
            dead = np.flatnonzero(~self.osd_alive)
            if np.isin(self.chunk_owner, dead).any():
                raise AssertionError("dead OSD still owns chunks (re-placement missed)")
        if self.osd_rated_life.shape != (self.num_osds,) or self.osd_wear_rate.shape != (
            self.num_osds,
        ):
            raise AssertionError("osd_rated_life/osd_wear_rate shape drifted")
        if (self.osd_rated_life <= 0).any():
            raise AssertionError("osd_rated_life contains non-positive ratings")
        if (self.osd_wear_rate < 0).any():
            raise AssertionError("osd_wear_rate went negative (wear decreased?)")
        if self.osd_queue_depth.shape != (self.num_osds,) or self.osd_mig_backlog.shape != (
            self.num_osds,
        ):
            raise AssertionError("osd_queue_depth/osd_mig_backlog shape drifted")
        if np.isnan(self.osd_queue_depth).any() or (self.osd_queue_depth < 0).any():
            raise AssertionError("osd_queue_depth went negative or NaN")
        if np.isnan(self.osd_mig_backlog).any() or (self.osd_mig_backlog < 0).any():
            raise AssertionError("osd_mig_backlog went negative or NaN")
        if (self.osd_service_rate <= 0).any():
            raise AssertionError("osd_service_rate contains non-positive rates")
        # Growth invariant: every per-OSD array tracks num_osds in lockstep
        # (scale-out grows them all or none).
        if self.osd_draining.shape != (self.num_osds,):
            raise AssertionError("osd_draining shape drifted")
        if self.osd_service_rate.shape != (self.num_osds,) or self.osd_wear.shape != (
            self.num_osds,
        ) or self.osd_load_ema.shape != (self.num_osds,):
            raise AssertionError("per-OSD array widths drifted from num_osds")
        if (self.osd_draining & self.osd_alive & (self.osd_capacity > 0)).any():
            # A marked OSD should have been evacuated and retired within its
            # drain epoch; surviving the boundary means the engine skipped
            # the retire step.
            raise AssertionError("draining OSD survived its drain epoch un-retired")
        if self.chunk_group is not None:
            # The redundancy spread constraint: every (group, owner) pair is
            # unique, i.e. no placement group co-locates two chunks.
            key = self.chunk_group.astype(np.int64) * self.num_osds + self.chunk_owner
            if np.unique(key).size != self.num_chunks:
                raise AssertionError(
                    "placement group co-locates two chunks on one OSD"
                )

    def eligible_mask(self, cfg: SimConfig) -> np.ndarray:
        """Chunks past their migration cooldown window."""
        return (self.epoch - self.chunk_last_migrated) >= cfg.migration_cooldown_epochs

    def remaining_life(self) -> np.ndarray:
        """Rated cycles left per OSD, floored at 0 (``inf`` when unrated).

        The floor matters for the last-survivor overdraft case: an OSD kept
        serving past its budget reports 0 remaining life, never negative.
        """
        return np.maximum(self.osd_rated_life - self.osd_wear, 0.0)

    def predicted_wearout_epochs(self) -> np.ndarray:
        """Epochs until each OSD exhausts its budget at its current wear rate.

        ``remaining_life / wear_rate`` where the rate is positive, ``inf``
        otherwise (no rating, or no write traffic observed yet).  Safe under
        ``-W error::RuntimeWarning``: the division only runs where the rate
        is positive, and an unrated OSD divides ``inf`` by a finite rate.
        """
        out = np.full(self.num_osds, np.inf)
        np.divide(self.remaining_life(), self.osd_wear_rate, out=out,
                  where=self.osd_wear_rate > 0)
        return out


def init_state(cfg: SimConfig) -> ClusterState:
    """Contiguous block placement: chunk i lives on OSD i // chunks_per_osd.

    Combined with rank-ordered Zipf popularity this concentrates the hot set
    on low-numbered OSDs, the realistic sequential-layout worst case that
    migration policies exist to fix.

    With a redundancy scheme configured (``cfg.redundancy``), placement is
    round-robin instead -- chunk i on OSD i % num_osds -- because contiguous
    blocks would put a whole placement group on one OSD.  Round-robin
    satisfies the spread constraint by construction: a group is a window of
    ``group_width`` consecutive ids, and ``group_width <= num_osds``
    (validated at config time), so its owners are pairwise distinct.
    """
    c, n = cfg.num_chunks, cfg.num_osds
    group = None
    width = 0
    if cfg.redundancy:
        from edm.redundancy.spec import RedundancyScheme

        scheme = RedundancyScheme.parse(cfg.redundancy, num_osds=n)
        width = scheme.group_width
        owner = (np.arange(c, dtype=np.int64) % n).astype(np.int32)
        group = (np.arange(c, dtype=np.int64) // width).astype(np.int32)
    else:
        owner = (np.arange(c, dtype=np.int64) // cfg.chunks_per_osd).astype(np.int32)
    return ClusterState(
        num_osds=n,
        num_chunks=c,
        chunk_owner=owner,
        chunk_heat=np.zeros(c),
        chunk_write_heat=np.zeros(c),
        chunk_last_migrated=np.full(c, -(10**9), dtype=np.int64),
        osd_wear=np.zeros(n),
        osd_load_ema=np.zeros(n),
        chunk_group=group,
        group_width=width,
    )
