"""Vectorized simulation core.

One epoch is a handful of O(num_chunks) array ops:

  1. draw per-chunk access/write counts (single multinomial + binomial)
  2. route: per-OSD load via bincount over the chunk->OSD map
  3. accrue wear on the OSDs that absorbed the writes
  4. update heat/load EMAs
  5. every ``migrate_interval`` epochs, let the policy pick migrations and
     apply them as a batch index assignment

With a fault plan configured (``cfg.faults``), epoch boundaries additionally
step the :class:`~edm.faults.FaultRuntime` before routing: failures trigger
batch re-placement of the dead OSD's chunks through the active policy's
destination scoring, slow-disk and hiccup events scale per-OSD capacity, and
every fired event fans out to recorders via ``on_fault``.  Healthy configs
skip this path entirely.

With an endurance model configured (``cfg.endurance``), every OSD carries a
rated P/E budget: epoch boundaries also step the
:class:`~edm.endurance.EnduranceTracker`, failing any OSD whose consumed
cycles reached its rating through the same re-placement and ``on_fault``
path (event kind ``"wearout"``), and each epoch's wear delta feeds the
per-OSD wear-rate EWMA behind CMT's predicted-wear-out destination term.
Unrated configs skip this path entirely and stay bit-identical to the
endurance-unaware engine.

There is no per-request Python loop anywhere; a "request" only ever exists
as a unit inside a counts vector.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from edm.config import SimConfig, rng_seed_sequence
from edm.endurance import EnduranceModel, EnduranceTracker
from edm.engine.metrics import MetricsAccumulator
from edm.engine.state import ClusterState, init_state
from edm.faults import FaultPlan, FaultRuntime, effective_load
from edm.obs.trace import NULL_TRACER, Tracer
from edm.policies import MigrationPolicy, get_policy
from edm.telemetry.recorder import EpochStats, Recorder
from edm.workloads import make_workload


def apply_migrations(state: ClusterState, moves: np.ndarray, cfg: SimConfig) -> int:
    """Apply policy-selected moves; returns how many were actually applied.

    ``moves`` is an int array of shape (k, 2): (chunk_id, dst_osd).  Duplicate
    chunk entries keep only the first; no-op and out-of-range moves are
    dropped, so a buggy policy can never lose or duplicate a chunk.
    """
    moves = np.asarray(moves, dtype=np.int64).reshape(-1, 2)
    if moves.size == 0:
        return 0
    _, first = np.unique(moves[:, 0], return_index=True)
    moves = moves[np.sort(first)]
    chunk, dst = moves[:, 0], moves[:, 1]
    ok = (
        (chunk >= 0)
        & (chunk < state.num_chunks)
        & (dst >= 0)
        & (dst < state.num_osds)
        & (state.chunk_owner[chunk] != dst)
    )
    chunk, dst = chunk[ok], dst[ok]
    if chunk.size == 0:
        return 0
    state.chunk_owner[chunk] = dst.astype(np.int32)
    # Migration rewrites the whole chunk on the destination SSD.
    np.add.at(
        state.osd_wear, dst, cfg.migration_write_cost * cfg.wear_per_write
    )
    state.chunk_last_migrated[chunk] = state.epoch
    state.migrations_total += int(chunk.size)
    return int(chunk.size)


def replace_dead_chunks(
    state: ClusterState, dead_osd: int, policy: MigrationPolicy, cfg: SimConfig
) -> int:
    """Re-place every chunk of a failed OSD; returns how many moved.

    Destinations come from the active policy's ``pick_destination`` scoring
    over the surviving OSDs (so CMT steers the re-placement burst toward
    low-wear drives while HDF/CDF/baseline spread purely by load), hottest
    chunks placed first against a projected effective-load vector.  The burst
    is forced -- it ignores the per-interval migration budget and the
    cooldown mask -- but is charged as ordinary migration wear through
    :func:`apply_migrations`.
    """
    chunks = np.flatnonzero(state.chunk_owner == dead_osd)
    if chunks.size == 0:
        return 0
    alive_ids = np.flatnonzero(state.osd_alive)
    if alive_ids.size == 0:
        raise RuntimeError(
            f"OSD {dead_osd} failed but no OSD survives to take its "
            f"{chunks.size} chunks"
        )
    cap = state.osd_capacity
    proj = effective_load(state.osd_load_ema, cap, state.osd_alive)
    order = chunks[np.argsort(-state.chunk_heat[chunks], kind="stable")]
    moves = []
    for chunk in order:
        dst = policy.pick_destination(alive_ids, proj, state, cfg)
        moves.append((int(chunk), dst))
        proj[dst] += state.chunk_heat[chunk] / cap[dst]
    return apply_migrations(state, np.asarray(moves, dtype=np.int64), cfg)


def simulate(
    cfg: SimConfig,
    recorders: Sequence[Recorder] = (),
    tracer: Tracer | None = None,
) -> dict:
    """Run one configuration to completion and return its metrics dict.

    ``recorders`` are observer hooks (see :mod:`edm.telemetry.recorder`)
    driven alongside the built-in :class:`MetricsAccumulator`; they see every
    epoch and migration round but never perturb the simulation itself, so a
    run's metrics are bit-identical with or without them.  Each recorder's
    ``finalize`` is invoked after the last epoch; its product is read off the
    recorder (e.g. ``TimeSeriesRecorder.series``), not from this return value.

    ``tracer`` (an :class:`edm.obs.Tracer`) times the run's phases -- workload
    generation, routing, heat/wear EMA updates, observer fan-out, migration
    selection -- as ``simulate.*`` spans; when enabled, the aggregated span
    summary is attached to the returned metrics under ``"timings"``.  The
    default is the shared :data:`~edm.obs.trace.NULL_TRACER`, whose spans are
    no-ops, so untraced runs stay on the bare hot path.  Timings never feed
    back into the simulation: metrics (minus the ``"timings"`` key) are
    bit-identical with or without tracing.
    """
    tr = tracer if tracer is not None else NULL_TRACER
    with tr.span("simulate.setup"):
        ss = rng_seed_sequence(cfg)
        wl_ss, _reserved = ss.spawn(2)
        workload = make_workload(cfg, np.random.default_rng(wl_ss))
        policy = get_policy(cfg.policy)
        state = init_state(cfg)
        plan = FaultPlan.parse(cfg.faults, num_osds=cfg.num_osds)
        faults = FaultRuntime(plan) if plan else None
        model = EnduranceModel.parse(cfg.endurance, num_osds=cfg.num_osds)
        endurance = EnduranceTracker(model, cfg) if model else None
        if endurance is not None:
            endurance.attach(state)
        acc = MetricsAccumulator()
        observers: tuple[Recorder, ...] = (acc, *recorders)
        for rec in observers:
            rec.on_run_start(cfg, state)
        stats = EpochStats()

    load = np.zeros(cfg.num_osds)
    for epoch in range(cfg.epochs):
        state.epoch = epoch
        if faults is not None:
            with tr.span("simulate.faults"):
                for event in faults.step(state, epoch):
                    replaced = 0
                    if event.kind == "fail":
                        replaced = replace_dead_chunks(state, event.osd, policy, cfg)
                    for rec in observers:
                        rec.on_fault(state, event, replaced)
        if endurance is not None:
            with tr.span("simulate.endurance"):
                # Wear-outs ride the fault machinery: same batch re-placement
                # through the active policy, same on_fault observer fan-out.
                for event in endurance.step(state, epoch):
                    replaced = replace_dead_chunks(state, event.osd, policy, cfg)
                    for rec in observers:
                        rec.on_fault(state, event, replaced)
        with tr.span("simulate.workload_gen"):
            counts, writes = workload.epoch_counts(epoch)
        with tr.span("simulate.routing"):
            countsf = counts.astype(np.float64)
            load = np.bincount(
                state.chunk_owner, weights=countsf, minlength=cfg.num_osds
            )
            wear_inc = np.bincount(
                state.chunk_owner,
                weights=writes.astype(np.float64),
                minlength=cfg.num_osds,
            )
        with tr.span("simulate.heat_wear_update"):
            state.osd_wear += wear_inc * cfg.wear_per_write
            state.chunk_heat *= 1.0 - cfg.heat_alpha
            state.chunk_heat += cfg.heat_alpha * countsf
            state.chunk_write_heat *= 1.0 - cfg.heat_alpha
            state.chunk_write_heat += cfg.heat_alpha * writes
            state.osd_load_ema *= 1.0 - cfg.load_alpha
            state.osd_load_ema += cfg.load_alpha * load
            if endurance is not None:
                # Fold this epoch's wear delta (routing writes plus any
                # migration wear applied since the last update) into the
                # per-OSD wear-rate EWMA before observers and policies look.
                endurance.update_rate(state)

        with tr.span("simulate.observers"):
            stats.epoch = epoch
            stats.requests = int(counts.sum())
            stats.writes = int(writes.sum())
            for rec in observers:
                rec.on_epoch(state, load, stats)

        if (epoch + 1) % cfg.migrate_interval == 0:
            with tr.span("simulate.migration"):
                moves = policy.select(state, cfg)
                applied = apply_migrations(state, moves, cfg)
                for rec in observers:
                    rec.on_migration(state, applied, stats)

    with tr.span("simulate.finalize"):
        state.validate()
        metrics = acc.finalize(state, load)
        for rec in recorders:
            rec.finalize(state, load)
    if tr.enabled:
        metrics["timings"] = tr.summary()
    return metrics
