"""Vectorized simulation core.

One epoch is a handful of O(num_chunks) array ops:

  1. draw per-chunk access/write counts (single multinomial + binomial)
  2. one fused kernel call (see :mod:`edm.engine.kernels`): routing
     bincounts, wear accrual, and the heat/load EMA updates, with per-run
     scratch buffers and a choice of bit-identical numpy / numba backends
     (``cfg.kernel``)
  3. every ``migrate_interval`` epochs, let the policy pick migrations and
     apply them as a batch index assignment

With a fault plan configured (``cfg.faults``), epoch boundaries additionally
step the :class:`~edm.faults.FaultRuntime` before routing: failures trigger
batch re-placement of the dead OSD's chunks through the active policy's
destination scoring, slow-disk and hiccup events scale per-OSD capacity, and
every fired event fans out to recorders via ``on_fault``.  Healthy configs
skip this path entirely.

With an endurance model configured (``cfg.endurance``), every OSD carries a
rated P/E budget: epoch boundaries also step the
:class:`~edm.endurance.EnduranceTracker`, failing any OSD whose consumed
cycles reached its rating through the same re-placement and ``on_fault``
path (event kind ``"wearout"``), and each epoch's wear delta feeds the
per-OSD wear-rate EWMA behind CMT's predicted-wear-out destination term.
Unrated configs skip this path entirely and stay bit-identical to the
endurance-unaware engine.

With a topology plan configured (``cfg.topology``), the cluster is elastic:
the :class:`~edm.topology.TopologyRuntime` steps first at each epoch
boundary (before faults and endurance, so both see the grown arrays).
``add`` events append cold drives of the event's device class -- zero wear,
zero load, per-band capacity / service rate / rated P/E -- and the kernel's
per-OSD scratch is resized once per event; ``drain`` events gracefully
evacuate the target's chunks through the active policy's destination
scoring (trigger ``"drain"`` in decision provenance) and then retire it,
with no lost queue work.  Every fired event fans out to recorders via
``on_topology``.  Static configs skip this path entirely and stay
bit-identical to the topology-unaware engine.

With a redundancy scheme configured (``cfg.redundancy``), chunks form
placement groups (replica or erasure-code stripes, see
:mod:`edm.redundancy`) whose members must live on pairwise-distinct OSDs:
initial placement is round-robin, every destination pick is
group-constrained, and a failed OSD's chunks are *reconstructed* -- reads
charged to surviving group members' service queues, the rebuild write
charged as migration wear -- instead of merely re-placed.  Plain configs
carry no group state and skip every constraint check.

With a service model configured (``cfg.service``), every OSD additionally
carries a service rate and a bounded queue: after each kernel call the
:class:`~edm.service.ServiceRuntime` steps the per-OSD queue recursion
against the epoch's routed arrivals, migrations charge work into the queues
(drained over a cooldown window), and the run's metrics gain a
p50/p99/p999 latency block.  Unserviced configs skip this path entirely and
stay bit-identical to the service-unaware engine.

There is no per-request Python loop anywhere; a "request" only ever exists
as a unit inside a counts vector (the service model's latency math is
vectorized over each epoch's accepted-request batch the same way).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from edm.config import SimConfig, rng_seed_sequence
from edm.endurance import EnduranceModel, EnduranceTracker
from edm.engine.kernels import make_kernel
from edm.engine.metrics import MetricsAccumulator
from edm.engine.state import ClusterState, init_state
from edm.faults import FaultPlan, FaultRuntime, effective_load
from edm.obs.decisions import Decision
from edm.obs.trace import NULL_TRACER, Tracer
from edm.policies import MigrationPolicy, get_policy
from edm.policies.base import group_constrained
from edm.redundancy import RedundancyRuntime, RedundancyScheme
from edm.service import ServiceModel, ServiceRuntime
from edm.telemetry.recorder import EpochStats, Recorder
from edm.topology import TopologyPlan, TopologyRuntime
from edm.workloads import make_workload


def apply_migrations(state: ClusterState, moves: np.ndarray, cfg: SimConfig) -> int:
    """Apply policy-selected moves; returns how many were actually applied.

    ``moves`` is an int array of shape (k, 2): (chunk_id, dst_osd).  Duplicate
    chunk entries keep only the first; no-op and out-of-range moves are
    dropped, so a buggy policy can never lose or duplicate a chunk.
    """
    moves = np.asarray(moves, dtype=np.int64).reshape(-1, 2)
    if moves.size == 0:
        return 0
    _, first = np.unique(moves[:, 0], return_index=True)
    moves = moves[np.sort(first)]
    chunk, dst = moves[:, 0], moves[:, 1]
    ok = (
        (chunk >= 0)
        & (chunk < state.num_chunks)
        & (dst >= 0)
        & (dst < state.num_osds)
        & (state.chunk_owner[chunk] != dst)
    )
    chunk, dst = chunk[ok], dst[ok]
    if chunk.size == 0:
        return 0
    if cfg.service:
        # Each move charges service work to both sides of the copy -- the
        # source streams the chunk out, the destination writes it -- into
        # the pending pool the ServiceRuntime drains over the cooldown
        # window.  Dead sources are exempt: a re-placement burst reads from
        # a corpse, which has no queue to occupy.  Must happen before the
        # owner reassignment below, which is what loses the source ids.
        src = state.chunk_owner[chunk].astype(np.int64)
        work = np.bincount(dst, minlength=state.num_osds).astype(np.float64)
        src_alive = src[state.osd_alive[src]]
        if src_alive.size:
            work += np.bincount(src_alive, minlength=state.num_osds)
        state.osd_mig_backlog += work * cfg.service_migration_cost
    state.chunk_owner[chunk] = dst.astype(np.int32)
    # Migration rewrites the whole chunk on the destination SSD.  Bincount
    # the per-destination move counts and accrue wear in one vectorized add:
    # measurably faster than np.add.at's per-element scatter when a fault
    # burst lands hundreds of chunks on a few survivors.
    per_move = cfg.migration_write_cost * cfg.wear_per_write
    state.osd_wear += np.bincount(dst, minlength=state.num_osds) * per_move
    state.chunk_last_migrated[chunk] = state.epoch
    state.migrations_total += int(chunk.size)
    return int(chunk.size)


# Row cap per batched-assignment round: bounds the score-matrix memory for
# enormous bursts (rows x num_osds float64) without changing results -- a
# capped round simply re-picks the same destination next round.
_MAX_BATCH_ROUND = 2048


def _supports_batch_destinations(policy: MigrationPolicy) -> bool:
    """True when the policy's batch scoring provably matches its scalar pick.

    The batched re-placement below replays ``pick_destination`` row-by-row
    through ``pick_destination_batch``; that is only sound when the class
    that defines the effective batch variant knows the effective scalar
    scoring -- i.e. it is the same class that defines ``pick_destination``,
    or a subclass of it (our built-ins pair them in one class).  A subclass
    overriding only the scalar method would otherwise silently replay an
    ancestor's batch scoring; it falls back to the exact sequential loop.
    """
    scalar_owner = batch_owner = None
    for klass in type(policy).__mro__:
        # The effective scalar scoring is whichever of pick_destination /
        # destination_terms sits deepest in the MRO: the base pick routes
        # through destination_terms, so overriding only the terms changes
        # the scalar scoring just as surely as overriding the pick itself.
        if scalar_owner is None and (
            "pick_destination" in vars(klass) or "destination_terms" in vars(klass)
        ):
            scalar_owner = klass
        if batch_owner is None and "pick_destination_batch" in vars(klass):
            batch_owner = klass
    if scalar_owner is None or batch_owner is None:
        return False
    return issubclass(batch_owner, scalar_owner)


def _assign_replacements_loop(
    order: np.ndarray,
    proj: np.ndarray,
    alive_ids: np.ndarray,
    policy: MigrationPolicy,
    state: ClusterState,
    cfg: SimConfig,
) -> np.ndarray:
    """Reference destination assignment: one ``pick_destination`` per chunk.

    The semantic ground truth the batched path must reproduce bit-for-bit
    (tests/test_kernels.py pins them against each other), and the fallback
    for policies whose scoring the batch path cannot prove equivalent.
    """
    cap = state.osd_capacity
    dsts = np.empty(order.size, dtype=np.int64)
    for k, chunk in enumerate(order):
        dst = policy.pick_destination(alive_ids, proj, state, cfg)
        dsts[k] = dst
        proj[dst] += state.chunk_heat[chunk] / cap[dst]
    return dsts


def _assign_replacements_batched(
    order: np.ndarray,
    proj: np.ndarray,
    alive_ids: np.ndarray,
    policy: MigrationPolicy,
    state: ClusterState,
    cfg: SimConfig,
) -> np.ndarray:
    """Vectorized greedy assignment, bit-identical to the sequential loop.

    The scalar greedy picks a destination per chunk, but the pick depends on
    the chunk only through the running projected-load vector -- and each
    assignment perturbs exactly one entry of it (the destination's own).  So
    the greedy runs in *rounds*: pick a destination ``b`` once, then compute
    -- in one shot -- how many of the next hottest chunks would keep picking
    ``b``.  The running values of ``proj[b]`` after each hypothetical
    assignment come from a left-to-right cumsum (the same addition order and
    rounding as the loop), and ``pick_destination_batch`` replays the
    policy's exact scoring arithmetic over all prefixes at once; the round
    closes at the first prefix whose argmin moves off ``b``.
    """
    cap = state.osd_capacity
    heats = state.chunk_heat[order]
    total = order.size
    dsts = np.empty(total, dtype=np.int64)
    pos = 0
    while pos < total:
        b = policy.pick_destination(alive_ids, proj, state, cfg)
        span = min(total - pos, _MAX_BATCH_ROUND)
        # running[i] = proj[b] after assigning i chunks, accumulated in the
        # sequential loop's exact order: cumsum folds left to right.
        running = np.cumsum(
            np.concatenate(([proj[b]], heats[pos : pos + span] / cap[b]))
        )
        if span == 1:
            taken = 1
        else:
            # Row i-1 is the proj vector the loop would score chunk pos+i
            # against, had chunks pos..pos+i-1 all landed on b.
            rows = np.tile(proj, (span - 1, 1))
            rows[:, b] = running[1:span]
            picks = policy.pick_destination_batch(alive_ids, rows, state, cfg)
            moved_off = picks != b
            taken = int(np.argmax(moved_off)) + 1 if moved_off.any() else span
        dsts[pos : pos + taken] = b
        proj[b] = running[taken]
        pos += taken
    return dsts


def _assign_replacements_explained(
    order: np.ndarray,
    proj: np.ndarray,
    alive_ids: np.ndarray,
    policy: MigrationPolicy,
    state: ClusterState,
    cfg: SimConfig,
    dead_osd: int,
    emit,
) -> np.ndarray:
    """Sequential assignment that also reports each pick's score terms.

    The explained re-placement path: picks through
    ``explain_destination`` (the argmin of the same folded terms the plain
    pick computes, so destinations are bit-identical to the loop -- and the
    loop is pinned bit-identical to the batched path) and emits one decision
    per re-placed chunk.
    """
    cap = state.osd_capacity
    dsts = np.empty(order.size, dtype=np.int64)
    for k, chunk in enumerate(order):
        dst, terms, scores = policy.explain_destination(alive_ids, proj, state, cfg)
        emit(int(chunk), int(dead_osd), dst, alive_ids, terms, scores)
        dsts[k] = dst
        proj[dst] += state.chunk_heat[chunk] / cap[dst]
    return dsts


def _assign_replacements_grouped(
    order: np.ndarray,
    proj: np.ndarray,
    alive_ids: np.ndarray,
    policy: MigrationPolicy,
    state: ClusterState,
    cfg: SimConfig,
    dead_osd: int,
    emit,
) -> np.ndarray:
    """Sequential assignment under the redundancy spread constraint.

    Each chunk's candidate set excludes OSDs already holding a member of its
    placement group, so the set varies per chunk and the prefix-replay trick
    of the batched path does not apply.  The burst can never create an
    intra-burst conflict: the spread invariant guarantees at most one chunk
    per group lives on ``dead_osd``, so no two chunks in ``order`` share a
    group.  With ``emit`` set, each pick is explained over its constrained
    candidate set.
    """
    cap = state.osd_capacity
    dsts = np.empty(order.size, dtype=np.int64)
    for k, chunk in enumerate(order):
        cand = group_constrained(alive_ids, state, int(chunk))
        if cand.size == 0:
            raise RuntimeError(
                f"chunk {chunk} of placement group "
                f"{int(state.chunk_group[chunk])} has no constraint-"
                f"satisfying destination among {alive_ids.size} surviving OSDs"
            )
        if emit is None:
            dst = policy.pick_destination(cand, proj, state, cfg)
        else:
            dst, terms, scores = policy.explain_destination(cand, proj, state, cfg)
            emit(int(chunk), int(dead_osd), dst, cand, terms, scores)
        dsts[k] = dst
        proj[dst] += state.chunk_heat[chunk] / cap[dst]
    return dsts


def replace_dead_chunks(
    state: ClusterState,
    dead_osd: int,
    policy: MigrationPolicy,
    cfg: SimConfig,
    emit=None,
    redundancy: RedundancyRuntime | None = None,
) -> int:
    """Re-place every chunk of a failed (or draining) OSD; returns how many moved.

    Destinations come from the active policy's ``pick_destination`` scoring
    over the surviving OSDs (so CMT steers the re-placement burst toward
    low-wear drives while HDF/CDF/baseline spread purely by load), hottest
    chunks placed first against a projected effective-load vector.  The burst
    is forced -- it ignores the per-interval migration budget and the
    cooldown mask -- but is charged as ordinary migration wear through
    :func:`apply_migrations`.

    Built-in policies run through the batched greedy assignment (vectorized
    rounds, bit-identical to the per-chunk loop); policies overriding
    ``pick_destination`` without a matching ``pick_destination_batch`` use
    the exact sequential reference path.  With ``emit`` set (a decision
    callback, see :mod:`edm.obs.decisions`), the burst runs the explained
    sequential path instead -- same destinations, plus one decision record
    per re-placed chunk.

    Redundant configs (``state.chunk_group`` set) take the group-constrained
    sequential path -- the candidate set varies per chunk, so the batched
    prefix replay does not apply -- and, when ``redundancy`` (the run's
    :class:`~edm.redundancy.RedundancyRuntime`) is given and ``dead_osd`` is
    actually dead, the burst is charged as *reconstruction*: surviving group
    members are read into the service queues on top of the ordinary
    migration-write wear.  A drain (``dead_osd`` still alive) stays a plain
    group-constrained evacuation.
    """
    chunks = np.flatnonzero(state.chunk_owner == dead_osd)
    if chunks.size == 0:
        return 0
    # Draining OSDs are migration sources only -- a drive being evacuated
    # (including ``dead_osd`` itself during a drain, still alive at this
    # point) never receives re-placed chunks.
    alive_ids = np.flatnonzero(state.osd_alive & ~state.osd_draining)
    if alive_ids.size == 0:
        raise RuntimeError(
            f"OSD {dead_osd} left the cluster but no OSD survives to take "
            f"its {chunks.size} chunks"
        )
    proj = effective_load(state.osd_load_ema, state.osd_capacity, state.osd_alive)
    order = chunks[np.argsort(-state.chunk_heat[chunks], kind="stable")]
    if state.chunk_group is not None:
        dsts = _assign_replacements_grouped(
            order, proj, alive_ids, policy, state, cfg, dead_osd, emit
        )
    elif emit is not None:
        dsts = _assign_replacements_explained(
            order, proj, alive_ids, policy, state, cfg, dead_osd, emit
        )
    else:
        assign = (
            _assign_replacements_batched
            if _supports_batch_destinations(policy)
            else _assign_replacements_loop
        )
        dsts = assign(order, proj, alive_ids, policy, state, cfg)
    if redundancy is not None and not state.osd_alive[dead_osd]:
        # Charge the read side of the rebuild before ownership moves (the
        # write side is ordinary migration wear via apply_migrations).
        redundancy.on_reconstruction(state, order)
    moves = np.column_stack((order, dsts))
    return apply_migrations(state, moves, cfg)


def simulate(
    cfg: SimConfig,
    recorders: Sequence[Recorder] = (),
    tracer: Tracer | None = None,
) -> dict:
    """Run one configuration to completion and return its metrics dict.

    ``recorders`` are observer hooks (see :mod:`edm.telemetry.recorder`)
    driven alongside the built-in :class:`MetricsAccumulator`; they see every
    epoch and migration round but never perturb the simulation itself, so a
    run's metrics are bit-identical with or without them.  Each recorder's
    ``finalize`` is invoked after the last epoch; its product is read off the
    recorder (e.g. ``TimeSeriesRecorder.series``), not from this return value.

    ``tracer`` (an :class:`edm.obs.Tracer`) times the run's phases -- workload
    generation, the fused epoch kernel (routing + heat/wear EMA updates),
    observer fan-out, migration selection -- as ``simulate.*`` spans; when enabled, the aggregated span
    summary is attached to the returned metrics under ``"timings"``.  The
    default is the shared :data:`~edm.obs.trace.NULL_TRACER`, whose spans are
    no-ops, so untraced runs stay on the bare hot path.  Timings never feed
    back into the simulation: metrics (minus the ``"timings"`` key) are
    bit-identical with or without tracing.
    """
    tr = tracer if tracer is not None else NULL_TRACER
    with tr.span("simulate.setup"):
        ss = rng_seed_sequence(cfg)
        wl_ss, _reserved = ss.spawn(2)
        workload = make_workload(cfg, np.random.default_rng(wl_ss))
        policy = get_policy(cfg.policy)
        state = init_state(cfg)
        plan = FaultPlan.parse(cfg.faults, num_osds=cfg.num_osds)
        faults = FaultRuntime(plan) if plan else None
        model = EnduranceModel.parse(cfg.endurance, num_osds=cfg.num_osds)
        endurance = EnduranceTracker(model, cfg) if model else None
        if endurance is not None:
            endurance.attach(state)
        svc_model = ServiceModel.parse(cfg.service, num_osds=cfg.num_osds)
        service = ServiceRuntime(svc_model, cfg) if svc_model else None
        if service is not None:
            service.attach(state)
        topo_plan = TopologyPlan.parse(cfg.topology, num_osds=cfg.num_osds)
        topology = (
            TopologyRuntime(topo_plan, service=svc_model, endurance=model)
            if topo_plan
            else None
        )
        scheme = RedundancyScheme.parse(cfg.redundancy, num_osds=cfg.num_osds)
        redundancy = RedundancyRuntime(scheme, cfg) if scheme else None
        kernel = make_kernel(cfg)
        acc = MetricsAccumulator(service=service, redundancy=redundancy)
        observers: tuple[Recorder, ...] = (acc, *recorders)
        # Decision provenance is opt-in: only recorders that *override*
        # on_decision flip selection/re-placement onto the explained path
        # (bit-identical picks, see edm.obs.decisions); without one, both
        # emitters stay None and every call site takes its historical branch.
        decision_observers = tuple(
            rec for rec in observers
            if type(rec).on_decision is not Recorder.on_decision
        )

        def _decision_emitter(trigger: str):
            if not decision_observers:
                return None

            def emit(chunk, src, dst, candidates, terms, scores):
                decision = Decision(
                    epoch=int(state.epoch),
                    trigger=trigger,
                    policy=cfg.policy,
                    chunk=int(chunk),
                    src=int(src),
                    dst=int(dst),
                    candidates=tuple(int(c) for c in candidates),
                    terms={k: tuple(float(x) for x in v) for k, v in terms.items()},
                    scores=tuple(float(s) for s in scores),
                )
                for rec in decision_observers:
                    rec.on_decision(state, decision)

            return emit

        emit_threshold = _decision_emitter("threshold")
        emit_fault = _decision_emitter("fault")
        emit_wearout = _decision_emitter("wearout")
        emit_drain = _decision_emitter("drain")
        for rec in observers:
            rec.on_run_start(cfg, state)
        stats = EpochStats()

    load = np.zeros(cfg.num_osds)
    for epoch in range(cfg.epochs):
        state.epoch = epoch
        if topology is not None:
            with tr.span("simulate.topology"):
                # Topology steps first so faults/endurance/service all see
                # the grown (or drained) cluster this epoch.
                for event in topology.step(state, epoch):
                    moved = 0
                    if event.kind == "add":
                        kernel.resize(state.num_osds)
                        if endurance is not None:
                            endurance.grow(state)
                    else:  # drain: evacuate gracefully, then retire
                        moved = replace_dead_chunks(
                            state, event.osd, policy, cfg, emit=emit_drain,
                            redundancy=redundancy,
                        )
                        topology.retire(state, event.osd)
                    for rec in observers:
                        rec.on_topology(state, event, moved)
        if faults is not None:
            with tr.span("simulate.faults"):
                for event in faults.step(state, epoch):
                    replaced = 0
                    if event.kind == "fail":
                        replaced = replace_dead_chunks(
                            state, event.osd, policy, cfg, emit=emit_fault,
                            redundancy=redundancy,
                        )
                    for rec in observers:
                        rec.on_fault(state, event, replaced)
        if endurance is not None:
            with tr.span("simulate.endurance"):
                # Wear-outs ride the fault machinery: same batch re-placement
                # through the active policy, same on_fault observer fan-out.
                for event in endurance.step(state, epoch):
                    replaced = replace_dead_chunks(
                        state, event.osd, policy, cfg, emit=emit_wearout,
                        redundancy=redundancy,
                    )
                    for rec in observers:
                        rec.on_fault(state, event, replaced)
        with tr.span("simulate.workload_gen"):
            counts, writes = workload.epoch_counts(epoch)
        with tr.span("simulate.kernel"):
            # Fused epoch math: routing bincounts, wear accrual, heat/load
            # EMAs -- one kernel call on preallocated scratch (numpy or
            # numba backend per cfg.kernel, bit-identical either way).
            load = kernel.epoch_update(state, counts, writes)
            if endurance is not None:
                # Fold this epoch's wear delta (routing writes plus any
                # migration wear applied since the last update) into the
                # per-OSD wear-rate EWMA before observers and policies look.
                endurance.update_rate(state)

        if service is not None:
            with tr.span("simulate.service"):
                # Advance every OSD's queue by one epoch of service against
                # this epoch's routed arrivals (the kernel's load vector is
                # exactly the per-OSD request bincount) and fold accepted
                # requests' latencies into the run histogram; fills the
                # stats latency/queue fields observers read below.
                service.step(state, load, stats)

        with tr.span("simulate.observers"):
            stats.epoch = epoch
            stats.requests = int(counts.sum())
            stats.writes = int(writes.sum())
            for rec in observers:
                rec.on_epoch(state, load, stats)

        if (epoch + 1) % cfg.migrate_interval == 0:
            with tr.span("simulate.migration"):
                if emit_threshold is None:
                    moves = policy.select(state, cfg)
                else:
                    moves = policy.select_explained(state, cfg, emit_threshold)
                applied = apply_migrations(state, moves, cfg)
                for rec in observers:
                    rec.on_migration(state, applied, stats)

    with tr.span("simulate.finalize"):
        state.validate()
        metrics = acc.finalize(state, load)
        for rec in recorders:
            rec.finalize(state, load)
    if tr.enabled:
        metrics["timings"] = tr.summary()
    return metrics
