"""Vectorized EDM simulation engine."""

from edm.engine.core import apply_migrations, simulate
from edm.engine.state import ClusterState, init_state
from edm.engine.metrics import MetricsAccumulator

__all__ = [
    "simulate",
    "apply_migrations",
    "ClusterState",
    "init_state",
    "MetricsAccumulator",
]
