"""EDM: endurance-aware data migration simulator for SSD storage clusters.

Reproduction of "EDM: An Endurance-Aware Data Migration Scheme for Load
Balancing in SSD Storage Clusters" (IPPS 2014), built as a performance-first
vectorized simulation engine.

Public API:
    SimConfig      -- one simulation configuration (workload x cluster x policy)
    simulate       -- run a single configuration, returns a metrics dict
    sweep          -- run a grid of configurations with caching + parallelism
    default_grid   -- the paper's 64-config evaluation grid
"""

from edm.config import SimConfig, config_hash
from edm.engine.core import simulate
from edm.sweep import sweep, default_grid

__version__ = "0.1.0"

__all__ = [
    "SimConfig",
    "config_hash",
    "simulate",
    "sweep",
    "default_grid",
    "__version__",
]
