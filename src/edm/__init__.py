"""EDM: endurance-aware data migration simulator for SSD storage clusters.

Reproduction of "EDM: An Endurance-Aware Data Migration Scheme for Load
Balancing in SSD Storage Clusters" (IPPS 2014), built as a performance-first
vectorized simulation engine.

Stable public API (everything in ``__all__``):
    SimConfig          -- one simulation configuration (workload x cluster x policy)
    simulate           -- run a configuration: ``simulate(cfg, recorders=())``
    sweep              -- run a grid with caching + parallelism (+ time-series export)
    SweepResult        -- a completed sweep; ``iter_results()`` is the documented
                          way to read full metrics (works eager or streamed),
                          ``records`` holds what the parent kept per config
    default_grid       -- the paper's 64-config evaluation grid
    EnduranceModel     -- per-OSD rated P/E budgets parsed from an ``--endurance`` spec
    ServiceModel       -- per-OSD service rates + queue bound parsed from a
                          ``--service`` spec (``rate:800;queue:64``)
    TopologyPlan       -- elastic-cluster reshaping schedule parsed from a
                          ``--topology`` spec (``add:4@128/cap:2;drain:0@192``)
    RedundancyScheme   -- m+k chunk-group placement scheme parsed from a
                          ``--redundancy`` spec (``rep:3`` / ``ec:4+2``)
    SpecError          -- what every spec grammar (faults / endurance /
                          service / topology) raises on a malformed or
                          invalid spec string
    Recorder           -- observer protocol for per-epoch engine hooks
    TimeSeriesRecorder -- per-epoch series capture with downsampling
    TimeSeries         -- captured series + .npz/JSON/CSV exporters
    resolve_policy     -- canonical policy name (resolves the ``edm`` alias)
    config_hash        -- content hash keying the result cache
    available_kernels  -- epoch-kernel backends importable right now
    resolve_kernel     -- which backend a ``cfg.kernel`` value lands on
    Tracer             -- span timer: ``simulate(cfg, tracer=Tracer())`` puts
                          phase timings in ``metrics["timings"]``
    RunLogWriter       -- structured JSONL run-log emitter (see edm.obs.runlog)
    read_run_log       -- parse + schema-validate a run log back into records
    append_history     -- append a bench report to BENCH_history.jsonl
    compare_reports    -- throughput regression gate between two bench reports
    DecisionRecorder   -- captures per-migration decision records (``--explain``)
    read_decision_log  -- parse + schema-validate a decision log
    query_decisions    -- filter decisions by chunk / osd / epoch / trigger / policy
    attribution_summary-- per-policy fraction of moves each score term decided
    write_span_events  -- dump a recording Tracer's span occurrences to JSONL
    export_chrome_trace-- convert a span-event JSONL to Perfetto/Chrome JSON
    MetricsRegistry    -- OpenMetrics text-exposition renderer
    registry_from_metrics -- map a run's metrics dict onto a MetricsRegistry
    MetricsSnapshotRecorder -- live ``.prom`` snapshots during a run
"""

from edm.config import SimConfig, config_hash
from edm.endurance import EnduranceModel
from edm.engine.core import simulate
from edm.engine.kernels import available_kernels, resolve_kernel
from edm.faults import FaultEvent, FaultPlan
from edm.obs import (
    DecisionRecorder,
    RunLogWriter,
    Tracer,
    append_history,
    attribution_summary,
    compare_reports,
    export_chrome_trace,
    query_decisions,
    read_decision_log,
    read_run_log,
    write_span_events,
)
from edm.policies import resolve_policy
from edm.redundancy import RedundancyScheme
from edm.service import ServiceModel
from edm.spec import SpecError
from edm.sweep import SweepResult, default_grid, sweep
from edm.telemetry import (
    MetricsRegistry,
    MetricsSnapshotRecorder,
    Recorder,
    TimeSeries,
    TimeSeriesRecorder,
    registry_from_metrics,
)
from edm.topology import TopologyPlan

__version__ = "0.10.0"

__all__ = [
    "DecisionRecorder",
    "EnduranceModel",
    "FaultEvent",
    "FaultPlan",
    "MetricsRegistry",
    "MetricsSnapshotRecorder",
    "ServiceModel",
    "SimConfig",
    "SpecError",
    "SweepResult",
    "Recorder",
    "RedundancyScheme",
    "RunLogWriter",
    "TimeSeries",
    "TimeSeriesRecorder",
    "TopologyPlan",
    "Tracer",
    "append_history",
    "attribution_summary",
    "available_kernels",
    "compare_reports",
    "config_hash",
    "default_grid",
    "export_chrome_trace",
    "query_decisions",
    "read_decision_log",
    "read_run_log",
    "registry_from_metrics",
    "resolve_kernel",
    "resolve_policy",
    "simulate",
    "sweep",
    "write_span_events",
    "__version__",
]
