"""EDM: endurance-aware data migration simulator for SSD storage clusters.

Reproduction of "EDM: An Endurance-Aware Data Migration Scheme for Load
Balancing in SSD Storage Clusters" (IPPS 2014), built as a performance-first
vectorized simulation engine.

Stable public API (everything in ``__all__``):
    SimConfig          -- one simulation configuration (workload x cluster x policy)
    simulate           -- run a configuration: ``simulate(cfg, recorders=())``
    sweep              -- run a grid with caching + parallelism (+ time-series export)
    SweepResult        -- a completed sweep (``results`` is always complete)
    default_grid       -- the paper's 64-config evaluation grid
    Recorder           -- observer protocol for per-epoch engine hooks
    TimeSeriesRecorder -- per-epoch series capture with downsampling
    TimeSeries         -- captured series + .npz/JSON/CSV exporters
    resolve_policy     -- canonical policy name (resolves the ``edm`` alias)
    config_hash        -- content hash keying the result cache
"""

from edm.config import SimConfig, config_hash
from edm.engine.core import simulate
from edm.policies import resolve_policy
from edm.sweep import SweepResult, default_grid, sweep
from edm.telemetry import Recorder, TimeSeries, TimeSeriesRecorder

__version__ = "0.2.0"

__all__ = [
    "SimConfig",
    "SweepResult",
    "Recorder",
    "TimeSeries",
    "TimeSeriesRecorder",
    "config_hash",
    "default_grid",
    "resolve_policy",
    "simulate",
    "sweep",
    "__version__",
]
