"""CDF: cold-data-first migration.

Moves the coldest active chunks first, so each move disturbs little ongoing
traffic -- at the cost of needing many more moves (higher migration cost)
to shed the same load.
"""

import numpy as np

from edm.policies.base import ThresholdPolicy


class CdfPolicy(ThresholdPolicy):
    name = "cdf"

    def chunk_order(self, chunk_ids, state):
        heat = state.chunk_heat[chunk_ids]
        # Stone-cold chunks shed no load; consider only chunks with traffic,
        # coldest first.
        active = chunk_ids[heat > 0]
        return active[np.argsort(state.chunk_heat[active])]
