"""PSWL: probability-sensitive wear leveling (cf. PS-WL).

Destination scoring treats each candidate's *consumed-life fraction* --
erase cycles already spent over the rated P/E budget -- as a wear-out
probability and penalizes it quadratically: a drive at 80% of its budget is
far more than twice as costly as one at 40%, so migration writes steer
superlinearly away from near-worn devices (where CMT's linear wear term
only nudges).  With an endurance model configured, an expected-remaining-
life term joins the score: the bounded wear-out risk ``1 / (1 + predicted
epochs to wear-out)``, penalizing drives whose *rate* of wear -- not just
accumulated wear -- puts them close to dying.

Unrated clusters have no budget to take fractions of, so the wear term
falls back to CMT-style alive-mean normalization (linear): PSWL still
wear-levels, it just loses the probability shaping that needs a rating.

Chunk order is hottest-first (like CMT/HDF): hot chunks carry the follow-on
write traffic whose placement wear leveling exists to steer.
"""

import numpy as np

from edm.endurance import wearout_risk
from edm.policies.base import NormalizedScorePolicy


class PswlPolicy(NormalizedScorePolicy):
    name = "pswl"

    def chunk_order(self, chunk_ids, state):
        return chunk_ids[np.argsort(-state.chunk_heat[chunk_ids])]

    def static_destination_terms(self, candidates, state, cfg):
        alive = state.osd_alive
        rated = state.osd_rated_life
        if alive.any() and np.isfinite(rated[alive]).any():
            # Consumed-life fraction in [0, 1] (above 1 only for a
            # last-survivor overdraft); an unrated candidate in a mixed
            # cluster divides by inf and scores 0 -- fresh by definition.
            p = state.osd_wear[candidates] / rated[candidates]
            wear_term = cfg.wear_weight * (p * p)
        else:
            wear = state.osd_wear[candidates]
            scale = state.osd_wear[alive].mean() if alive.any() else 0.0
            wear_norm = wear / scale if scale > 0 else wear
            wear_term = cfg.wear_weight * wear_norm
        terms = {"wear_prob": wear_term}
        if cfg.endurance:
            # Bounded in [0, 1]; no cluster-mean normalization -- the
            # absolute proximity to wear-out is the signal, and a mean over
            # mostly-healthy drives would dilute the one that matters.
            terms["life"] = cfg.endurance_weight * wearout_risk(state)[candidates]
        return terms
