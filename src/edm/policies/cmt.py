"""CMT: the paper's endurance-aware EDM migration scheme.

Like HDF it sheds the hottest eligible chunks from overloaded OSDs, but the
destination is chosen by a combined load + wear score instead of load alone:
an underloaded SSD with many erase cycles already on the clock is penalized,
so migration writes (and the follow-on write traffic of hot chunks) land on
the least-worn drives.  Drives within a small load band are therefore
ranked purely by remaining endurance, equalizing wear across the cluster
while still meeting the load-balance target.

With an endurance model configured (``cfg.endurance``), a third term joins
the score: the bounded wear-out risk ``1 / (1 + predicted epochs to
wear-out)``, so a drive that is *close to dying* -- high wear rate against
little remaining rated life -- is penalized even when its absolute wear
looks ordinary, and migrations steer away from near-death devices.  Unrated
configs never compute the term, keeping their scores bit-identical to the
endurance-unaware policy.
"""

import numpy as np

from edm.endurance import wearout_risk
from edm.policies.base import ThresholdPolicy


class CmtPolicy(ThresholdPolicy):
    name = "cmt"

    def chunk_order(self, chunk_ids, state):
        return chunk_ids[np.argsort(-state.chunk_heat[chunk_ids])]

    def destination_terms(self, candidates, proj_load, state, cfg):
        """CMT's blended score, decomposed: load + wear (+ wear-out risk).

        The base class folds these left to right into the destination score
        (the historical ``(load_norm + wear_term) + risk_term`` addition
        order), so the scalar pick, the explained pick, and the batch replay
        all score from this one definition.
        """
        load = proj_load[candidates]
        # Normalize load, wear, and wear-out risk by *cluster-wide* scales
        # (mean over alive OSDs), never by the candidate subset: a drive's
        # score -- and hence the trade-off between the terms -- must not
        # change with who else happens to be a candidate this round.
        alive = state.osd_alive
        mean_load = proj_load[alive].mean() if alive.any() else 0.0
        load_norm = load / mean_load if mean_load > 0 else load
        wear_term, risk_term = self._static_score_terms(candidates, state, cfg)
        terms = {"load": load_norm, "wear": wear_term}
        if risk_term is not None:
            terms["wearout_risk"] = risk_term
        return terms

    def pick_destination_batch(self, candidates, proj_rows, state, cfg):
        """Row-wise CMT scoring, bit-identical to the scalar pick.

        Only the load term varies across rows (wear and wear-out risk are
        frozen while a re-placement burst runs); each row normalizes by its
        own alive-mean, falling back to the raw load for rows whose mean is
        not positive -- the same branch the scalar path takes.  Every
        floating-point operation broadcasts the scalar path's exact
        sequence, so row ``i`` scores byte-equal to a scalar pick at that
        projected load.
        """
        alive = state.osd_alive
        load = proj_rows[:, candidates]
        if alive.any():
            mean_load = proj_rows[:, alive].mean(axis=1)[:, None]
        else:
            mean_load = np.zeros((len(proj_rows), 1))
        load_norm = load.copy()
        np.divide(load, mean_load, out=load_norm, where=mean_load > 0)
        wear_term, risk_term = self._static_score_terms(candidates, state, cfg)
        score = load_norm + wear_term
        if risk_term is not None:
            score = score + risk_term
        return candidates[np.argmin(score, axis=1)]

    def _static_score_terms(self, candidates, state, cfg):
        """Wear and wear-out-risk score terms: independent of projected load.

        Returns ``(wear_term, risk_term-or-None)`` separately -- the scalar
        score has always been ``(load_norm + wear_term) + risk_term``, and
        preserving that exact addition order is what keeps the scalar and
        batch paths (and the pinned golden hashes) bit-identical.
        """
        alive = state.osd_alive
        wear = state.osd_wear[candidates]
        wear_scale = state.osd_wear[alive].mean() if alive.any() else 0.0
        wear_norm = wear / wear_scale if wear_scale > 0 else wear
        wear_term = cfg.wear_weight * wear_norm
        risk_term = None
        if cfg.endurance:
            risk = wearout_risk(state)
            risk_scale = risk[alive].mean() if alive.any() else 0.0
            if risk_scale > 0:
                risk_term = cfg.endurance_weight * (risk[candidates] / risk_scale)
        return wear_term, risk_term
