"""CMT: the paper's endurance-aware EDM migration scheme.

Like HDF it sheds the hottest eligible chunks from overloaded OSDs, but the
destination is chosen by a combined load + wear score instead of load alone:
an underloaded SSD with many erase cycles already on the clock is penalized,
so migration writes (and the follow-on write traffic of hot chunks) land on
the least-worn drives.  Drives within a small load band are therefore
ranked purely by remaining endurance, equalizing wear across the cluster
while still meeting the load-balance target.

With an endurance model configured (``cfg.endurance``), a third term joins
the score: the bounded wear-out risk ``1 / (1 + predicted epochs to
wear-out)``, so a drive that is *close to dying* -- high wear rate against
little remaining rated life -- is penalized even when its absolute wear
looks ordinary, and migrations steer away from near-death devices.  Unrated
configs never compute the term, keeping their scores bit-identical to the
endurance-unaware policy.
"""

import numpy as np

from edm.endurance import wearout_risk
from edm.policies.base import ThresholdPolicy


class CmtPolicy(ThresholdPolicy):
    name = "cmt"

    def chunk_order(self, chunk_ids, state):
        return chunk_ids[np.argsort(-state.chunk_heat[chunk_ids])]

    def pick_destination(self, candidates, proj_load, state, cfg):
        load = proj_load[candidates]
        wear = state.osd_wear[candidates]
        # Normalize load, wear, and wear-out risk by *cluster-wide* scales
        # (mean over alive OSDs), never by the candidate subset: a drive's
        # score -- and hence the trade-off between the terms -- must not
        # change with who else happens to be a candidate this round.
        alive = state.osd_alive
        mean_load = proj_load[alive].mean() if alive.any() else 0.0
        load_norm = load / mean_load if mean_load > 0 else load
        wear_scale = state.osd_wear[alive].mean() if alive.any() else 0.0
        wear_norm = wear / wear_scale if wear_scale > 0 else wear
        score = load_norm + cfg.wear_weight * wear_norm
        if cfg.endurance:
            risk = wearout_risk(state)
            risk_scale = risk[alive].mean() if alive.any() else 0.0
            if risk_scale > 0:
                score = score + cfg.endurance_weight * (risk[candidates] / risk_scale)
        return int(candidates[np.argmin(score)])
