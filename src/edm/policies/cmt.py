"""CMT: the paper's endurance-aware EDM migration scheme.

Like HDF it sheds the hottest eligible chunks from overloaded OSDs, but the
destination is chosen by a combined load + wear score instead of load alone:
an underloaded SSD with many erase cycles already on the clock is penalized,
so migration writes (and the follow-on write traffic of hot chunks) land on
the least-worn drives.  Drives within a small load band are therefore
ranked purely by remaining endurance, equalizing wear across the cluster
while still meeting the load-balance target.
"""

import numpy as np

from edm.policies.base import ThresholdPolicy


class CmtPolicy(ThresholdPolicy):
    name = "cmt"

    def chunk_order(self, chunk_ids, state):
        return chunk_ids[np.argsort(-state.chunk_heat[chunk_ids])]

    def pick_destination(self, candidates, proj_load, state, cfg):
        load = proj_load[candidates]
        wear = state.osd_wear[candidates]
        mean_load = proj_load.mean()
        load_norm = load / mean_load if mean_load > 0 else load
        wear_scale = wear.mean()
        wear_norm = wear / wear_scale if wear_scale > 0 else wear
        score = load_norm + cfg.wear_weight * wear_norm
        return int(candidates[np.argmin(score)])
