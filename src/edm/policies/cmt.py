"""CMT: the paper's endurance-aware EDM migration scheme.

Like HDF it sheds the hottest eligible chunks from overloaded OSDs, but the
destination is chosen by a combined load + wear score instead of load alone:
an underloaded SSD with many erase cycles already on the clock is penalized,
so migration writes (and the follow-on write traffic of hot chunks) land on
the least-worn drives.  Drives within a small load band are therefore
ranked purely by remaining endurance, equalizing wear across the cluster
while still meeting the load-balance target.

With an endurance model configured (``cfg.endurance``), a third term joins
the score: the bounded wear-out risk ``1 / (1 + predicted epochs to
wear-out)``, so a drive that is *close to dying* -- high wear rate against
little remaining rated life -- is penalized even when its absolute wear
looks ordinary, and migrations steer away from near-death devices.  Unrated
configs never compute the term, keeping their scores bit-identical to the
endurance-unaware policy.
"""

import numpy as np

from edm.endurance import wearout_risk
from edm.policies.base import NormalizedScorePolicy


class CmtPolicy(NormalizedScorePolicy):
    name = "cmt"

    def chunk_order(self, chunk_ids, state):
        return chunk_ids[np.argsort(-state.chunk_heat[chunk_ids])]

    def static_destination_terms(self, candidates, state, cfg):
        """CMT's load-independent score terms: wear (+ wear-out risk).

        The base class folds the normalized load term first, then these in
        insertion order -- the historical ``(load_norm + wear_term) +
        risk_term`` addition sequence -- so the scalar pick, the explained
        pick, and the batch replay all score from this one definition and
        the pre-zoo golden hashes stay pinned.  Wear and wear-out risk are
        normalized by *cluster-wide* scales (mean over alive OSDs), never by
        the candidate subset: a drive's score -- and hence the trade-off
        between the terms -- must not change with who else happens to be a
        candidate this round.
        """
        alive = state.osd_alive
        wear = state.osd_wear[candidates]
        wear_scale = state.osd_wear[alive].mean() if alive.any() else 0.0
        wear_norm = wear / wear_scale if wear_scale > 0 else wear
        terms = {"wear": cfg.wear_weight * wear_norm}
        if cfg.endurance:
            risk = wearout_risk(state)
            risk_scale = risk[alive].mean() if alive.any() else 0.0
            if risk_scale > 0:
                terms["wearout_risk"] = cfg.endurance_weight * (
                    risk[candidates] / risk_scale
                )
        return terms
