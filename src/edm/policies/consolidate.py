"""Consolidate: Serifos-style workload packing with a saturation guard.

The spreading policies (CDF/HDF/CMT) send shed load to the *least* loaded
candidate; consolidation inverts that and packs compatible workloads onto
the *most* loaded candidate that still has headroom, concentrating traffic
on few OSDs so the rest stay cold (idle-able, wear-free, or ready to drain).
The saturation guard is what keeps packing from tipping into overload: a
candidate whose normalized load reaches ``1 + overload_tolerance`` -- the
same line that defines an overloaded migration *source* -- takes a large
constant penalty plus its overshoot, so saturated drives rank strictly
behind every unsaturated one (and among themselves by least overshoot)
without ever scoring infinite (scores flow into decision logs as JSON).

During interval selection the destination pool is already under-mean, so
the guard is dormant; it earns its keep in failure re-placement and drain
evacuation, where every alive OSD is a candidate and a naive "most loaded
wins" would dogpile the burst onto an already-hot survivor.

Chunk order is coldest-active-first (like CDF): consolidation moves the
low-intensity tail onto packed drives and leaves hot chunks where they are,
which is the Serifos trade -- many cheap moves over few disruptive ones.
"""

import numpy as np

from edm.policies.base import NormalizedScorePolicy

# Saturation penalty: large enough that a saturated candidate never outranks
# an unsaturated one (normalized packing scores live in [-O(1), 0]), finite
# so scores stay JSON-serializable in decision provenance.
_SATURATION_PENALTY = 1e6


class ConsolidatePolicy(NormalizedScorePolicy):
    name = "consolidate"

    def chunk_order(self, chunk_ids, state):
        heat = state.chunk_heat[chunk_ids]
        active = chunk_ids[heat > 0]
        return active[np.argsort(state.chunk_heat[active])]

    def load_terms(self, load_norm, state, cfg):
        saturation = 1.0 + cfg.overload_tolerance
        return {
            # Negated load: the fullest candidate scores lowest (wins).
            "packing": -load_norm,
            "saturation": np.where(
                load_norm >= saturation,
                (load_norm - saturation) + _SATURATION_PENALTY,
                0.0,
            ),
        }
