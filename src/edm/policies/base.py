"""Migration policy interface and shared selection helpers.

Policies only *select* moves; the engine applies them.  The hot path
(routing, wear, EMAs) never enters policy code, so a policy is free to use
small per-OSD loops -- the cluster has tens of OSDs, not thousands.

The shared skeleton: find OSDs whose smoothed load exceeds the cluster mean
by ``overload_tolerance``, walk their chunks in a policy-defined order, and
ship each to a policy-chosen underloaded destination until the source is
back within tolerance or the per-interval budget runs out.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from edm.config import SimConfig
from edm.engine.state import ClusterState

EMPTY_MOVES = np.empty((0, 2), dtype=np.int64)


class MigrationPolicy(ABC):
    name = "abstract"

    @abstractmethod
    def select(self, state: ClusterState, cfg: SimConfig) -> np.ndarray:
        """Return an int array (k, 2) of (chunk_id, dst_osd) moves."""


class ThresholdPolicy(MigrationPolicy):
    """Overload-threshold skeleton shared by CDF / HDF / CMT."""

    def chunk_order(self, chunk_ids: np.ndarray, state: ClusterState) -> np.ndarray:
        """Order candidate chunks on an overloaded OSD (first = first moved)."""
        raise NotImplementedError

    def pick_destination(
        self,
        candidates: np.ndarray,
        proj_load: np.ndarray,
        state: ClusterState,
        cfg: SimConfig,
    ) -> int:
        """Pick a destination among underloaded OSD ids (default: least load)."""
        return int(candidates[np.argmin(proj_load[candidates])])

    def select(self, state: ClusterState, cfg: SimConfig) -> np.ndarray:
        proj = state.osd_load_ema.copy()
        mean = proj.mean()
        if mean <= 0:
            return EMPTY_MOVES
        high = mean * (1.0 + cfg.overload_tolerance)
        overloaded = np.flatnonzero(proj > high)
        if overloaded.size == 0:
            return EMPTY_MOVES
        eligible = state.eligible_mask(cfg)

        budget = cfg.max_migrations_per_interval
        moves: list[tuple[int, int]] = []
        # Heaviest sources first.
        for src in overloaded[np.argsort(-proj[overloaded])]:
            if budget <= 0:
                break
            mine = np.flatnonzero((state.chunk_owner == src) & eligible)
            if mine.size == 0:
                continue
            for chunk in self.chunk_order(mine, state):
                if budget <= 0 or proj[src] <= high:
                    break
                under = np.flatnonzero(proj < mean)
                if under.size == 0:
                    break
                dst = self.pick_destination(under, proj, state, cfg)
                heat = state.chunk_heat[chunk]
                # Never move load onto an OSD that would end up hotter than
                # the source it came from.
                if proj[dst] + heat >= proj[src]:
                    continue
                moves.append((int(chunk), dst))
                proj[src] -= heat
                proj[dst] += heat
                budget -= 1
        if not moves:
            return EMPTY_MOVES
        return np.asarray(moves, dtype=np.int64)
