"""Migration policy interface and shared selection helpers.

Policies only *select* moves; the engine applies them.  The hot path
(routing, wear, EMAs) never enters policy code, so a policy is free to use
small per-OSD loops -- the cluster has tens of OSDs, not thousands.

The shared skeleton: find OSDs whose smoothed load exceeds the cluster mean
by ``overload_tolerance``, walk their chunks in a policy-defined order, and
ship each to a policy-chosen underloaded destination until the source is
back within tolerance or the per-interval budget runs out.

Degraded clusters: when ``state.degraded`` is set (any OSD dead or running
at off-nominal capacity), selection ranks OSDs by *effective* load --
``load / capacity``, infinite for dead OSDs -- and masks dead OSDs out of
both source and destination candidates.  A half-capacity disk therefore
reads as twice as loaded and sheds chunks; a dead disk can never be picked.
On a healthy cluster the degraded branch is never taken and every operation
is bit-identical to the fault-unaware engine.

Draining OSDs (topology scale-in, ``state.osd_draining``) are masked out of
destination candidates everywhere a policy picks one: a drive being
evacuated is a migration *source* only, never a landing spot.

Redundant placement (``state.chunk_group`` set, see :mod:`edm.redundancy`):
a chunk's destination candidates additionally exclude every OSD holding
another member of its placement group, so no group ever co-locates two
chunks on one OSD.  Plain configs carry ``chunk_group=None`` and skip the
filter entirely, keeping their selection bit-identical.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from edm.config import SimConfig
from edm.engine.state import ClusterState
from edm.faults import effective_load

EMPTY_MOVES = np.empty((0, 2), dtype=np.int64)


def group_constrained(
    candidates: np.ndarray, state: ClusterState, chunk: int
) -> np.ndarray:
    """Drop candidates already holding a member of ``chunk``'s placement group.

    No-op (the exact same array) when the config carries no redundancy
    scheme.  The chunk's own owner is among the excluded -- moving a chunk
    onto its current OSD is never useful -- and group membership is the
    consecutive-id layout of :func:`edm.engine.state.init_state`.
    """
    if state.chunk_group is None:
        return candidates
    w = state.group_width
    lo = (int(chunk) // w) * w
    owners = state.chunk_owner[lo : min(lo + w, state.num_chunks)]
    return candidates[~np.isin(candidates, owners)]


def sum_terms(terms: dict[str, np.ndarray]) -> np.ndarray:
    """Fold per-term score arrays into one total, strictly left to right.

    The fold order is the dict's insertion order, so a policy whose historical
    score was ``(a + b) + c`` reproduces that exact floating-point sequence by
    returning ``{"a": ..., "b": ..., "c": ...}`` -- which is what keeps the
    term decomposition and the destination pick bit-identical.
    """
    score = None
    for term in terms.values():
        score = term if score is None else score + term
    return score


class MigrationPolicy(ABC):
    name = "abstract"

    @abstractmethod
    def select(self, state: ClusterState, cfg: SimConfig) -> np.ndarray:
        """Return an int array (k, 2) of (chunk_id, dst_osd) moves."""

    def select_explained(self, state: ClusterState, cfg: SimConfig, emit) -> np.ndarray:
        """Like :meth:`select`, but report each destination pick via ``emit``.

        ``emit(chunk, src, dst, candidates, terms, scores)`` is called once
        per selected move with the per-term score decomposition (see
        :meth:`destination_terms`) over the candidate set.  The moves
        returned must be identical to a plain :meth:`select` call on the
        same state -- explanation observes the pick, never changes it.  The
        default covers policies without per-move scoring (baseline never
        picks a destination during selection) by just selecting.
        """
        return self.select(state, cfg)

    def destination_terms(
        self,
        candidates: np.ndarray,
        proj_load: np.ndarray,
        state: ClusterState,
        cfg: SimConfig,
    ) -> dict[str, np.ndarray]:
        """Per-term destination score decomposition over ``candidates``.

        Keys name the score terms, values are float arrays aligned with
        ``candidates``; lower total is better and the total is folded
        left-to-right over insertion order (see :func:`sum_terms`), so the
        decomposition *defines* the scoring: :meth:`pick_destination` is the
        argmin of the folded terms.  The default scores by projected load
        alone -- the least-loaded candidate wins.
        """
        return {"load": proj_load[candidates]}

    def pick_destination(
        self,
        candidates: np.ndarray,
        proj_load: np.ndarray,
        state: ClusterState,
        cfg: SimConfig,
    ) -> int:
        """Pick a destination among candidate OSD ids (default: least load).

        Shared by interval selection *and* failure re-placement: when an OSD
        dies, the engine routes its chunks through the active policy's
        destination scoring, so even the no-migration baseline has a
        well-defined answer here.  The score is the left-to-right fold of
        :meth:`destination_terms`, so the pick and its explanation can never
        disagree.
        """
        return int(candidates[np.argmin(sum_terms(
            self.destination_terms(candidates, proj_load, state, cfg)
        ))])

    def explain_destination(
        self,
        candidates: np.ndarray,
        proj_load: np.ndarray,
        state: ClusterState,
        cfg: SimConfig,
    ) -> tuple[int, dict[str, np.ndarray], np.ndarray]:
        """:meth:`pick_destination` plus its evidence.

        Returns ``(dst, terms, scores)``: the winning OSD id, the per-term
        decomposition over ``candidates``, and the folded total scores.  The
        winner is the argmin of ``scores`` computed with the exact arithmetic
        of :meth:`pick_destination`, so an explained pick is always the pick.
        """
        terms = self.destination_terms(candidates, proj_load, state, cfg)
        scores = sum_terms(terms)
        return int(candidates[np.argmin(scores)]), terms, scores

    def pick_destination_batch(
        self,
        candidates: np.ndarray,
        proj_rows: np.ndarray,
        state: ClusterState,
        cfg: SimConfig,
    ) -> np.ndarray:
        """Vectorized ``pick_destination`` over many projected-load vectors.

        ``proj_rows`` is a (rows, num_osds) matrix; the result's entry ``i``
        must equal ``pick_destination(candidates, proj_rows[i], ...)``
        **bit-for-bit** -- the engine's batched failure re-placement replays
        the scalar greedy through this method (see
        :func:`edm.engine.core.replace_dead_chunks`), so any subclass that
        overrides ``pick_destination`` must override this in lockstep or the
        engine falls back to the exact per-chunk loop.

        Default scoring is raw projected load, so a row-wise argmin over the
        candidate columns reproduces the scalar pick exactly (ties resolve
        to the first minimum in both shapes).
        """
        return candidates[np.argmin(proj_rows[:, candidates], axis=1)]


class ThresholdPolicy(MigrationPolicy):
    """Overload-threshold skeleton shared by CDF / HDF / CMT."""

    def chunk_order(self, chunk_ids: np.ndarray, state: ClusterState) -> np.ndarray:
        """Order candidate chunks on an overloaded OSD (first = first moved)."""
        raise NotImplementedError

    def select(self, state: ClusterState, cfg: SimConfig) -> np.ndarray:
        return self._select(state, cfg, emit=None)

    def select_explained(self, state: ClusterState, cfg: SimConfig, emit) -> np.ndarray:
        return self._select(state, cfg, emit=emit)

    def _select(self, state: ClusterState, cfg: SimConfig, emit) -> np.ndarray:
        alive = state.osd_alive
        cap = state.osd_capacity
        if state.degraded:
            if not alive.any():
                return EMPTY_MOVES
            proj = effective_load(state.osd_load_ema, cap, alive)
            mean = proj[alive].mean()
        else:
            proj = state.osd_load_ema.copy()
            mean = proj.mean()
        if mean <= 0:
            return EMPTY_MOVES
        high = mean * (1.0 + cfg.overload_tolerance)
        overloaded = np.flatnonzero((proj > high) & alive)
        if overloaded.size == 0:
            return EMPTY_MOVES
        eligible = state.eligible_mask(cfg)

        budget = cfg.max_migrations_per_interval
        moves: list[tuple[int, int]] = []
        # Destinations already claimed this round, per placement group:
        # chunk_owner only changes when the engine applies the moves, so two
        # same-group chunks selected in one round would otherwise not see
        # each other's landing spots.  (Redundant configs only.)
        claimed: dict[int, list[int]] | None = (
            {} if state.chunk_group is not None else None
        )
        # Heaviest sources first.
        for src in overloaded[np.argsort(-proj[overloaded])]:
            if budget <= 0:
                break
            mine = np.flatnonzero((state.chunk_owner == src) & eligible)
            if mine.size == 0:
                continue
            for chunk in self.chunk_order(mine, state):
                if budget <= 0 or proj[src] <= high:
                    break
                under = np.flatnonzero(
                    (proj < mean) & alive & ~state.osd_draining
                )
                if under.size == 0:
                    break
                under = group_constrained(under, state, chunk)
                if claimed is not None:
                    taken = claimed.get(int(state.chunk_group[chunk]))
                    if taken:
                        under = under[~np.isin(under, taken)]
                if under.size == 0:
                    # Every underloaded OSD already holds (or was just
                    # claimed for) a member of this chunk's placement
                    # group; the next chunk may differ.
                    continue
                if emit is None:
                    dst = self.pick_destination(under, proj, state, cfg)
                    terms = scores = None
                else:
                    dst, terms, scores = self.explain_destination(under, proj, state, cfg)
                heat = state.chunk_heat[chunk]
                # A chunk's load lands scaled by the destination's capacity
                # (cap == 1.0 everywhere on a healthy cluster, so these
                # divisions are exact no-ops there).  Never move load onto an
                # OSD that would end up hotter than the source it came from.
                heat_dst = heat / cap[dst]
                if proj[dst] + heat_dst >= proj[src]:
                    continue
                if emit is not None:
                    emit(int(chunk), int(src), dst, under, terms, scores)
                if claimed is not None:
                    claimed.setdefault(int(state.chunk_group[chunk]), []).append(dst)
                moves.append((int(chunk), dst))
                proj[src] -= heat / cap[src]
                proj[dst] += heat_dst
                budget -= 1
        if not moves:
            return EMPTY_MOVES
        return np.asarray(moves, dtype=np.int64)


class NormalizedScorePolicy(ThresholdPolicy):
    """Destination scoring over cluster-mean-normalized load, with hooks.

    The scoring shape CMT established, factored so the zoo shares one
    scalar/batch pairing: the projected load of each candidate is normalized
    by the mean over *alive* OSDs (cluster-wide, never the candidate subset,
    so a drive's score is independent of who else is a candidate), then

      * :meth:`load_terms` maps that normalized load to one or more score
        terms with shape-agnostic arithmetic (the same expression must work
        on a 1-D candidate vector and a 2-D rows x candidates matrix), and
      * :meth:`static_destination_terms` appends terms that do not depend on
        projected load at all (wear, wear-out risk) -- frozen across a
        re-placement burst, broadcast across batch rows.

    ``destination_terms`` folds load terms first, static terms after, in
    insertion order; ``pick_destination_batch`` replays the identical
    floating-point sequence row-wise, so every subclass gets a batch path
    provably bit-identical to its scalar pick (pinned by
    tests/test_policy_conformance.py across the whole registry).
    """

    def load_terms(
        self, load_norm: np.ndarray, state: ClusterState, cfg: SimConfig
    ) -> dict[str, np.ndarray]:
        """Score terms computed from the normalized projected load."""
        return {"load": load_norm}

    def static_destination_terms(
        self, candidates: np.ndarray, state: ClusterState, cfg: SimConfig
    ) -> dict[str, np.ndarray]:
        """Load-independent score terms, aligned with ``candidates``."""
        return {}

    def destination_terms(self, candidates, proj_load, state, cfg):
        load = proj_load[candidates]
        alive = state.osd_alive
        mean_load = proj_load[alive].mean() if alive.any() else 0.0
        load_norm = load / mean_load if mean_load > 0 else load
        terms = dict(self.load_terms(load_norm, state, cfg))
        terms.update(self.static_destination_terms(candidates, state, cfg))
        return terms

    def pick_destination_batch(self, candidates, proj_rows, state, cfg):
        """Row-wise scoring, bit-identical to the scalar pick.

        Each row normalizes by its own alive-mean, falling back to the raw
        load for rows whose mean is not positive -- the same branch the
        scalar path takes.  Load terms fold first, then static terms (1-D,
        broadcast across rows) are added in order: the exact addition
        sequence of ``sum_terms`` over :meth:`destination_terms`.
        """
        alive = state.osd_alive
        load = proj_rows[:, candidates]
        if alive.any():
            mean_load = proj_rows[:, alive].mean(axis=1)[:, None]
        else:
            mean_load = np.zeros((len(proj_rows), 1))
        load_norm = load.copy()
        np.divide(load, mean_load, out=load_norm, where=mean_load > 0)
        score = sum_terms(self.load_terms(load_norm, state, cfg))
        for term in self.static_destination_terms(candidates, state, cfg).values():
            score = score + term
        return candidates[np.argmin(score, axis=1)]
