"""baseline: never migrate.

Establishes the unmitigated load imbalance and natural wear profile every
other policy is judged against.
"""

from edm.policies.base import EMPTY_MOVES, MigrationPolicy


class BaselinePolicy(MigrationPolicy):
    name = "baseline"

    def select(self, state, cfg):
        return EMPTY_MOVES
