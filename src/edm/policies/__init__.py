"""Policy registry.

``cmt`` is the paper's EDM scheme (the name the historical cache keys use);
``edm`` is accepted as an alias.  ``resolve_policy`` is the one place alias
spellings become canonical names -- the CLI, ``SimConfig`` validation, and the
registry all route through the same ``POLICY_ALIASES`` table.
"""

from __future__ import annotations

from edm.config import POLICY_ALIASES
from edm.policies.base import MigrationPolicy, ThresholdPolicy, EMPTY_MOVES
from edm.policies.baseline import BaselinePolicy
from edm.policies.cdf import CdfPolicy
from edm.policies.hdf import HdfPolicy
from edm.policies.cmt import CmtPolicy

POLICIES: dict[str, type[MigrationPolicy]] = {
    cls.name: cls for cls in (BaselinePolicy, CdfPolicy, HdfPolicy, CmtPolicy)
}


def resolve_policy(name: str) -> str:
    """Canonical policy name for ``name``, resolving aliases (``edm`` -> ``cmt``)."""
    canonical = POLICY_ALIASES.get(name, name)
    if canonical not in POLICIES:
        raise ValueError(
            f"unknown policy {name!r}; have {sorted(POLICIES)} "
            f"plus aliases {sorted(POLICY_ALIASES)}"
        )
    return canonical


def get_policy(name: str) -> MigrationPolicy:
    return POLICIES[resolve_policy(name)]()


__all__ = [
    "resolve_policy",
    "MigrationPolicy",
    "ThresholdPolicy",
    "EMPTY_MOVES",
    "POLICIES",
    "get_policy",
    "BaselinePolicy",
    "CdfPolicy",
    "HdfPolicy",
    "CmtPolicy",
]
