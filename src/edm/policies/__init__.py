"""Policy registry.

``cmt`` is the paper's EDM scheme (the name the historical cache keys use);
``edm`` is accepted as an alias.
"""

from __future__ import annotations

from edm.policies.base import MigrationPolicy, ThresholdPolicy, EMPTY_MOVES
from edm.policies.baseline import BaselinePolicy
from edm.policies.cdf import CdfPolicy
from edm.policies.hdf import HdfPolicy
from edm.policies.cmt import CmtPolicy

POLICIES: dict[str, type[MigrationPolicy]] = {
    cls.name: cls for cls in (BaselinePolicy, CdfPolicy, HdfPolicy, CmtPolicy)
}
POLICIES["edm"] = CmtPolicy


def get_policy(name: str) -> MigrationPolicy:
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(f"unknown policy {name!r}; have {sorted(POLICIES)}") from None


__all__ = [
    "MigrationPolicy",
    "ThresholdPolicy",
    "EMPTY_MOVES",
    "POLICIES",
    "get_policy",
    "BaselinePolicy",
    "CdfPolicy",
    "HdfPolicy",
    "CmtPolicy",
]
