"""Policy registry.

``cmt`` is the paper's EDM scheme (the name the historical cache keys use);
``edm`` is accepted as an alias.  ``resolve_policy`` is the one place alias
spellings become canonical names -- the CLI, ``SimConfig`` validation, and the
registry all route through the same ``POLICY_ALIASES`` table.

The registry is keyed by each class's ``name`` and must match the canonical
name tuple in :data:`edm.config.POLICIES` exactly (asserted at import time;
the config layer cannot import this package, so the tuple is maintained by
hand there and cross-checked here).
"""

from __future__ import annotations

from edm.config import POLICIES as _CANONICAL_NAMES
from edm.config import POLICY_ALIASES
from edm.policies.base import (
    EMPTY_MOVES,
    MigrationPolicy,
    NormalizedScorePolicy,
    ThresholdPolicy,
)
from edm.policies.baseline import BaselinePolicy
from edm.policies.cdf import CdfPolicy
from edm.policies.consolidate import ConsolidatePolicy
from edm.policies.hdf import HdfPolicy
from edm.policies.cmt import CmtPolicy
from edm.policies.pswl import PswlPolicy

POLICIES: dict[str, type[MigrationPolicy]] = {
    cls.name: cls
    for cls in (
        BaselinePolicy,
        CdfPolicy,
        HdfPolicy,
        CmtPolicy,
        PswlPolicy,
        ConsolidatePolicy,
    )
}

if set(POLICIES) != set(_CANONICAL_NAMES):  # pragma: no cover - import guard
    raise RuntimeError(
        f"policy registry {sorted(POLICIES)} drifted from "
        f"edm.config.POLICIES {sorted(_CANONICAL_NAMES)}; update both in the "
        f"same commit"
    )


def resolve_policy(name: str) -> str:
    """Canonical policy name for ``name``, resolving aliases (``edm`` -> ``cmt``)."""
    canonical = POLICY_ALIASES.get(name, name)
    if canonical not in POLICIES:
        raise ValueError(
            f"unknown policy {name!r}; have {sorted(POLICIES)} "
            f"plus aliases {sorted(POLICY_ALIASES)}"
        )
    return canonical


def get_policy(name: str) -> MigrationPolicy:
    return POLICIES[resolve_policy(name)]()


__all__ = [
    "resolve_policy",
    "MigrationPolicy",
    "ThresholdPolicy",
    "NormalizedScorePolicy",
    "EMPTY_MOVES",
    "POLICIES",
    "get_policy",
    "BaselinePolicy",
    "CdfPolicy",
    "HdfPolicy",
    "CmtPolicy",
    "PswlPolicy",
    "ConsolidatePolicy",
]
