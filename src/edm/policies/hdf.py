"""HDF: hot-data-first migration.

Moves the hottest eligible chunks off overloaded OSDs to the least-loaded
OSD.  Rebalances in few moves but concentrates write traffic -- and hence
wear -- on whichever SSD happens to be coldest, ignoring endurance.
"""

import numpy as np

from edm.policies.base import ThresholdPolicy


class HdfPolicy(ThresholdPolicy):
    name = "hdf"

    def chunk_order(self, chunk_ids, state):
        return chunk_ids[np.argsort(-state.chunk_heat[chunk_ids])]
