"""Simulation configuration and content hashing.

A SimConfig fully determines a simulation run: identical configs produce
bit-identical metrics.  ``config_hash`` is the content key used by the
result cache -- any field change (or an engine format bump) invalidates
previously cached pickles.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

# Bump when the engine's semantics or the metrics format change, so stale
# cached results from older engines are never returned.
# 2: observer-hook engine API; policy aliases canonicalized before hashing.
# 3: fault injection (``faults`` field, alive/capacity state) and CMT
#    destination scoring normalized by cluster-wide scales.
# 4: endurance model (``endurance`` field, rated-lifetime / wear-rate state,
#    wear-out failures) and CMT's predicted-wear-out destination term.
# 5: request-level service model (``service`` field, queue/latency state,
#    tail-latency metrics block).  Metrics-format change only: unserviced
#    configs compute bit-identical values, re-keyed so old cache entries
#    without the latency block are never returned.
ENGINE_VERSION = 5

# Version of the *seed material* fed to rng_seed_sequence.  Deliberately
# decoupled from ENGINE_VERSION: bumping the cache format must not reseed
# every workload stream, or results silently change across engine releases.
# Frozen at 2 so fault-free configs draw the exact streams they always have;
# bump only to intentionally re-randomize every workload.
SEED_SCHEMA_VERSION = 2

# Fields excluded from the seed material.  The seed-material field set is
# frozen at what SEED_SCHEMA_VERSION=2 hashed: every field added to SimConfig
# since (fault scenarios, the endurance model and its knobs, the kernel
# backend) must be listed here, both because it must not perturb the frozen
# hash and because none of them describe the *traffic* -- a degraded or
# endurance-rated cluster replays exactly the healthy run's request stream,
# and every kernel backend consumes the exact same streams.  The service
# model and its knobs likewise only time the cluster's *response* to the
# traffic, never the traffic itself.
SEED_EXCLUDED_FIELDS = (
    "faults",
    "endurance",
    "wear_rate_alpha",
    "endurance_weight",
    "kernel",
    "service",
    "service_migration_cost",
    "service_cooldown_epochs",
    "topology",
    "redundancy",
)

# Fields excluded from the *result* content hash.  The kernel backend is an
# execution strategy, not a semantic knob: numpy and numba produce
# bit-identical metrics (pinned by tests/test_kernels.py), so a result
# computed under either backend must hit the same cache entry -- and adding
# the field must not invalidate every pre-existing cache.
HASH_EXCLUDED_FIELDS = ("kernel",)

# Kernel backend choices: "auto" resolves to numba when importable, numpy
# otherwise (see edm.engine.kernels.resolve_kernel); numba stays an optional
# extra (`pip install edm-sim[jit]`), never a hard dependency.
KERNELS = ("auto", "numpy", "numba")

WORKLOADS = ("deasna", "deasna2", "lair62", "lair62b")
# Canonical policy names.  Kept as a literal tuple (the config layer cannot
# import edm.policies -- policies import this module); the registry in
# edm.policies asserts at import time that its classes match this list, and
# tests/test_policies.py pins the two against each other.
POLICIES = ("baseline", "cdf", "hdf", "cmt", "pswl", "consolidate")

# Accepted spellings for canonical policy names.  Aliases are resolved before
# validation and hashing, so SimConfig(policy="edm") and policy="cmt" are the
# same config (and hit the same cache entry).
POLICY_ALIASES = {"edm": "cmt"}


@dataclass(frozen=True)
class SimConfig:
    """One simulation configuration.

    The first five fields mirror the cache-key filename
    ``<workload>-<N>osd-<policy>-s<skew>-r<seed>.pkl``; the rest are engine
    knobs with defaults sized so a full 64-config sweep stays well under a
    minute on one core.
    """

    workload: str = "deasna"
    num_osds: int = 16
    policy: str = "cmt"
    skew: float = 0.02
    seed: int = 12345

    # Engine sizing
    epochs: int = 256
    requests_per_epoch: int = 8192
    chunks_per_osd: int = 64

    # Heat / load tracking (exponential moving averages)
    heat_alpha: float = 0.3
    load_alpha: float = 0.5

    # Wear model: each write costs this many erase-count units; migrating a
    # chunk rewrites it wholesale on the destination SSD.
    wear_per_write: float = 1.0
    migration_write_cost: float = 64.0
    chunk_size_mb: float = 64.0

    # Migration policy knobs
    migrate_interval: int = 8
    overload_tolerance: float = 0.05
    max_migrations_per_interval: int = 8
    migration_cooldown_epochs: int = 16
    wear_weight: float = 1.0

    # Fault scenario: empty string = healthy cluster.  Parsed and
    # canonicalized by edm.faults.plan (e.g. "fail:3@100;slow:5@50x0.5"), so
    # equivalent spellings hash to the same cache entry.  The spec never
    # feeds the workload RNG: faulted and healthy runs see identical traffic.
    faults: str = ""

    # Endurance model: empty string = unlimited rated lifetime.  Parsed and
    # canonicalized by edm.endurance.spec (e.g. "pe:5000" or
    # "pe:3000@0-3,10000@4-7"); an OSD whose consumed cycles reach its rating
    # fails at the next epoch boundary.  Like ``faults``, the spec never
    # feeds the workload RNG.
    endurance: str = ""
    # EWMA smoothing for the per-OSD wear rate that drives epochs-to-wear-out
    # prediction, and the weight of that predicted-wear-out term in CMT's
    # destination score (0 disables the term).
    wear_rate_alpha: float = 0.3
    endurance_weight: float = 1.0

    # Service model: empty string = no request-level timing (requests stay
    # pure units of load).  Parsed and canonicalized by edm.service.spec
    # (e.g. "rate:800;queue:64" or "rate:800;rate:400@0-3"); enables per-OSD
    # bounded queues and p50/p99/p999 latency metrics.  Like ``faults`` and
    # ``endurance``, the spec never feeds the workload RNG.
    service: str = ""
    # Request-equivalents of service time one migrated chunk charges to each
    # of its source and destination queues, and the window over which that
    # pending work drains into the queues (1/cooldown per epoch).
    service_migration_cost: float = 64.0
    service_cooldown_epochs: int = 8

    # Topology plan: empty string = static cluster.  Parsed and canonicalized
    # by edm.topology.spec (e.g. "add:4@128/cap:2,rate:1600,pe:10000" or
    # "drain:2@64"); scale-out grows the cluster at epoch boundaries with
    # cold drives of the given device class, drain evacuates and retires an
    # OSD through the policy's destination scoring.  Like ``faults``, the
    # spec never feeds the workload RNG: the chunk set -- and therefore the
    # traffic -- is fixed at the initial cluster size, so an elastic run
    # replays exactly the static run's request stream.
    topology: str = ""

    # Redundancy scheme: empty string = independent chunks.  Parsed and
    # canonicalized by edm.redundancy.spec (``rep:3`` / ``ec:4+2``);
    # consecutive chunks form placement groups whose members must live on
    # pairwise-distinct OSDs (round-robin initial layout instead of the
    # contiguous default), and a failed OSD's chunks are *reconstructed* --
    # surviving group members read, a fresh copy written -- instead of
    # merely re-placed.  Like ``faults``, the spec never feeds the workload
    # RNG: traffic is drawn per chunk, so a redundant run replays exactly
    # the plain run's request stream against a different layout.
    redundancy: str = ""

    # Epoch-kernel backend: "numpy" (default fused NumPy kernel), "numba"
    # (optional JIT, requires the [jit] extra), or "auto" (numba if
    # importable).  Backends are bit-identical, so this field keys neither
    # the result cache nor the workload seed material.
    kernel: str = "auto"

    def __post_init__(self) -> None:
        if self.policy in POLICY_ALIASES:
            object.__setattr__(self, "policy", POLICY_ALIASES[self.policy])
        if self.workload not in WORKLOADS:
            raise ValueError(f"unknown workload {self.workload!r}, expected one of {WORKLOADS}")
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}, expected one of {POLICIES} "
                f"or an alias in {sorted(POLICY_ALIASES)}"
            )
        if self.num_osds < 2:
            raise ValueError("num_osds must be >= 2")
        if self.epochs < 1:
            raise ValueError(
                f"epochs must be >= 1, got {self.epochs}: a zero-epoch run has no "
                "load vector to finalize and never drives observer hooks"
            )
        if self.requests_per_epoch < 1 or self.chunks_per_osd < 1:
            raise ValueError("requests_per_epoch and chunks_per_osd must be >= 1")
        if not 0.0 < self.heat_alpha <= 1.0:
            raise ValueError(f"heat_alpha must be in (0, 1], got {self.heat_alpha}")
        if not 0.0 < self.load_alpha <= 1.0:
            raise ValueError(f"load_alpha must be in (0, 1], got {self.load_alpha}")
        if self.skew < 0:
            raise ValueError(f"skew must be >= 0, got {self.skew}")
        if self.migrate_interval < 1:
            raise ValueError(f"migrate_interval must be >= 1, got {self.migrate_interval}")
        if self.max_migrations_per_interval < 1:
            raise ValueError(
                "max_migrations_per_interval must be >= 1, "
                f"got {self.max_migrations_per_interval}"
            )
        if not 0.0 < self.wear_rate_alpha <= 1.0:
            raise ValueError(f"wear_rate_alpha must be in (0, 1], got {self.wear_rate_alpha}")
        if self.endurance_weight < 0:
            raise ValueError(f"endurance_weight must be >= 0, got {self.endurance_weight}")
        if self.kernel not in KERNELS:
            raise ValueError(f"unknown kernel {self.kernel!r}, expected one of {KERNELS}")
        if self.faults:
            from edm.faults import FaultPlan

            plan = FaultPlan.parse(self.faults, num_osds=self.num_osds)
            object.__setattr__(self, "faults", plan.spec)
        if self.endurance:
            from edm.endurance import EnduranceModel

            model = EnduranceModel.parse(self.endurance, num_osds=self.num_osds)
            object.__setattr__(self, "endurance", model.spec)
        if self.service_migration_cost < 0:
            raise ValueError(
                f"service_migration_cost must be >= 0, got {self.service_migration_cost}"
            )
        if self.service_cooldown_epochs < 1:
            raise ValueError(
                f"service_cooldown_epochs must be >= 1, got {self.service_cooldown_epochs}"
            )
        if self.service:
            from edm.service import ServiceModel

            svc = ServiceModel.parse(self.service, num_osds=self.num_osds)
            object.__setattr__(self, "service", svc.spec)
        if self.topology:
            from edm.spec import SpecError
            from edm.topology import TopologyPlan

            plan = TopologyPlan.parse(self.topology, num_osds=self.num_osds)
            object.__setattr__(self, "topology", plan.spec)
            if self.service:
                from edm.service import ServiceModel

                svc = ServiceModel.parse(self.service)
                if svc.default_rate is None:
                    for ev in plan.adds:
                        if ev.rate is None:
                            raise SpecError(
                                f"topology event {ev.render()!r} adds OSDs "
                                f"with no service rate, and service spec "
                                f"{self.service!r} has no default rate band; "
                                f"give the add a 'rate:' attribute or add a "
                                f"default rate"
                            )
        if self.redundancy:
            from edm.redundancy.spec import RedundancyScheme
            from edm.spec import SpecError

            scheme = RedundancyScheme.parse(self.redundancy, num_osds=self.num_osds)
            object.__setattr__(self, "redundancy", scheme.spec)
            width = scheme.group_width
            # A placement group needs `width` distinct live OSDs for its
            # whole lifetime; catch plans that provably shrink the cluster
            # below that at config time rather than mid-run.
            if self.faults:
                from edm.faults import FaultPlan

                plan = FaultPlan.parse(self.faults, num_osds=self.num_osds)
                survivors = self.num_osds - len(plan.failures)
                if survivors < width:
                    raise SpecError(
                        f"redundancy scheme {self.redundancy!r} needs "
                        f"{width} distinct OSDs per group, but fault plan "
                        f"{self.faults!r} leaves only {survivors} of "
                        f"{self.num_osds} alive"
                    )
            if self.topology:
                from edm.topology import TopologyPlan

                plan = TopologyPlan.parse(self.topology, num_osds=self.num_osds)
                final = plan.final_osds(self.num_osds)
                if final < width:
                    raise SpecError(
                        f"redundancy scheme {self.redundancy!r} needs "
                        f"{width} distinct OSDs per group, but topology plan "
                        f"{self.topology!r} drains the cluster down to {final}"
                    )

    @property
    def num_chunks(self) -> int:
        return self.num_osds * self.chunks_per_osd

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "SimConfig":
        return cls(**d)

    def cache_name(self) -> str:
        """Filename stem matching the historical .repro-cache key format.

        Fault scenarios append a short spec digest (``-f1a2b3c4``),
        endurance models another (``-e5d6e7f8``), service models a third
        (``-q9a8b7c6``), topology plans a fourth (``-t0d1e2f3``), and
        redundancy schemes a fifth (``-g4e5f6a7``, g for *group*) so the
        same base config under different scenarios never collides on
        filename; healthy, unrated, unserviced, static, plain configs keep
        the historical stem byte-for-byte.
        """
        stem = f"{self.workload}-{self.num_osds}osd-{self.policy}-s{self.skew:g}-r{self.seed}"
        if self.faults:
            stem += f"-f{hashlib.sha256(self.faults.encode()).hexdigest()[:8]}"
        if self.endurance:
            stem += f"-e{hashlib.sha256(self.endurance.encode()).hexdigest()[:8]}"
        if self.service:
            stem += f"-q{hashlib.sha256(self.service.encode()).hexdigest()[:8]}"
        if self.topology:
            stem += f"-t{hashlib.sha256(self.topology.encode()).hexdigest()[:8]}"
        if self.redundancy:
            stem += f"-g{hashlib.sha256(self.redundancy.encode()).hexdigest()[:8]}"
        return stem


def config_hash(cfg: SimConfig) -> str:
    """Stable content hash of a config plus the engine version.

    Excludes :data:`HASH_EXCLUDED_FIELDS` (the kernel backend): fields that
    cannot change results must not fragment or invalidate the cache.  An
    *empty* ``topology`` or ``redundancy`` is likewise dropped from the
    payload: a static, plain config computes bit-identical metrics with or
    without the field, so introducing it must not invalidate any
    pre-existing cache entry.

    ``service_metrics_rev`` re-keys only serviced configs: revision 2 fixed
    the degraded-mode queue-depth aggregates (dead OSDs no longer counted as
    permanent zeros) and gave the latency histogram a dedicated overflow
    bin, so serviced cache entries written by the old accounting are never
    returned; unserviced configs are untouched.
    """
    payload = {"engine_version": ENGINE_VERSION, **cfg.to_dict()}
    for field_name in HASH_EXCLUDED_FIELDS:
        payload.pop(field_name, None)
    if not payload.get("topology"):
        payload.pop("topology", None)
    if not payload.get("redundancy"):
        payload.pop("redundancy", None)
    if payload.get("service"):
        payload["service_metrics_rev"] = 2
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()


def seed_material_hash(cfg: SimConfig) -> str:
    """Stable hash of the fields that identify a config's workload streams.

    Unlike :func:`config_hash` (the cache key), this excludes every field in
    :data:`SEED_EXCLUDED_FIELDS` -- fault scenarios and endurance ratings
    degrade the *cluster*, never the traffic, so such runs replay exactly
    the healthy run's request stream -- and pins
    :data:`SEED_SCHEMA_VERSION` instead of :data:`ENGINE_VERSION`, so engine
    format bumps don't silently reseed every workload.
    """
    payload = {"engine_version": SEED_SCHEMA_VERSION, **cfg.to_dict()}
    for field_name in SEED_EXCLUDED_FIELDS:
        payload.pop(field_name, None)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()


def rng_seed_sequence(cfg: SimConfig):
    """Deterministic per-config seed material.

    Mixes the user seed with the config's seed-material hash so two configs
    sharing a seed (e.g. same seed, different policy) still draw distinct
    workload streams, while staying reproducible across processes and
    platforms.
    """
    import numpy as np

    digest = seed_material_hash(cfg)
    words = [int(digest[i : i + 8], 16) for i in range(0, 32, 8)]
    return np.random.SeedSequence([cfg.seed, *words])
