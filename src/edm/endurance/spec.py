"""Endurance specs: per-OSD rated P/E-cycle budgets.

An :class:`EnduranceModel` is parsed from a compact spec string (the
``endurance`` field of :class:`~edm.config.SimConfig`, or ``--endurance`` on
the CLI) and assigns every OSD a rated lifetime in erase-count units -- the
same units ``osd_wear`` accrues in -- so "wear" gains a notion of how close
each SSD is to dying.  There is no randomness here: ratings are a pure
function of the spec, so endurance-aware runs are exactly as reproducible as
endurance-free ones.

Spec grammar (bands joined with ``,``; no semicolons, so a
semicolon-separated CLI list can carry several scenarios)::

    spec    := "pe:" band ("," band)*
    band    := CYCLES ("@" OSD ("-" OSD)?)?     rating, optional OSD range

Examples::

    pe:5000                    every OSD rated at 5000 cycles
    pe:3000@0-3,10000@4-7      OSDs 0..3 rated 3000, OSDs 4..7 rated 10000
    pe:5000,300@2              default 5000 with one weak drive (OSD 2)

At most one band may omit the ``@`` range; it becomes the default rating for
every OSD not covered by a ranged band.  Without a default band the ranged
bands must cover the whole cluster.  The empty string (or ``"none"``) means
no endurance model: every OSD has an unlimited (infinite) rated lifetime.

Parsing canonicalizes the spec -- default band first, ranged bands sorted by
their first OSD, numbers normalized -- so two spellings of the same model
produce the same ``SimConfig`` content hash and hit the same cache entry.

This module is deliberately dependency-free apart from NumPy (no engine
imports) so the config layer can parse and validate specs without import
cycles.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

_BAND_RE = re.compile(r"^(\d+(?:\.\d+)?)(?:@(\d+)(?:-(\d+))?)?$")


@dataclass(frozen=True)
class EnduranceBand:
    """One rating band: ``cycles`` for OSDs ``lo..hi`` (inclusive).

    ``lo is None`` marks the default band covering every OSD not claimed by
    a ranged band.
    """

    cycles: float
    lo: int | None = None
    hi: int | None = None

    def render(self) -> str:
        """Canonical spec fragment for this band."""
        # Fixed-point, never scientific: 'pe:1000000' must round-trip (the
        # band grammar has no exponent form), so '%g' is not an option.
        cycles = format(self.cycles, ".6f").rstrip("0").rstrip(".")
        if self.lo is None:
            return cycles
        if self.lo == self.hi:
            return f"{cycles}@{self.lo}"
        return f"{cycles}@{self.lo}-{self.hi}"


def _parse_band(text: str) -> EnduranceBand:
    m = _BAND_RE.match(text)
    if not m:
        raise ValueError(
            f"bad endurance band {text!r}; expected 'CYCLES', 'CYCLES@OSD' "
            f"or 'CYCLES@LO-HI'"
        )
    cycles = float(m.group(1))
    if m.group(2) is None:
        return EnduranceBand(cycles=cycles)
    lo = int(m.group(2))
    hi = int(m.group(3)) if m.group(3) is not None else lo
    return EnduranceBand(cycles=cycles, lo=lo, hi=hi)


@dataclass(frozen=True)
class EnduranceModel:
    """A validated, canonically ordered set of rating bands."""

    bands: tuple[EnduranceBand, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.bands)

    @property
    def spec(self) -> str:
        """Canonical spec string (round-trips through :meth:`parse`)."""
        if not self.bands:
            return ""
        return "pe:" + ",".join(band.render() for band in self.bands)

    @property
    def default_cycles(self) -> float | None:
        for band in self.bands:
            if band.lo is None:
                return band.cycles
        return None

    @classmethod
    def parse(cls, spec: str, num_osds: int | None = None) -> "EnduranceModel":
        """Parse and validate a spec; ``num_osds`` enables coverage checks."""
        spec = (spec or "").strip()
        if not spec or spec == "none":
            return cls()
        if not spec.startswith("pe:"):
            raise ValueError(
                f"bad endurance spec {spec!r}; expected 'pe:CYCLES' or "
                f"'pe:CYCLES@LO-HI,...' ('none' = unlimited endurance)"
            )
        bands = [_parse_band(part.strip()) for part in spec[3:].split(",") if part.strip()]
        if not bands:
            raise ValueError(f"bad endurance spec {spec!r}: no rating bands")
        # Canonical order: the default band first, ranged bands by first OSD.
        bands.sort(key=lambda b: (-1, -1) if b.lo is None else (b.lo, b.hi))
        model = cls(bands=tuple(bands))
        model.validate(num_osds=num_osds)
        return model

    def validate(self, num_osds: int | None = None) -> None:
        defaults = [b for b in self.bands if b.lo is None]
        if len(defaults) > 1:
            raise ValueError(
                f"endurance spec {self.spec!r}: at most one default (range-free) "
                f"band is allowed"
            )
        claimed: set[int] = set()
        for band in self.bands:
            if band.cycles <= 0:
                raise ValueError(
                    f"endurance band {band.render()!r}: rated cycles must be > 0"
                )
            if band.lo is None:
                continue
            if band.lo > band.hi:
                raise ValueError(
                    f"endurance band {band.render()!r}: range is inverted"
                )
            if num_osds is not None and band.hi >= num_osds:
                raise ValueError(
                    f"endurance band {band.render()!r}: OSD {band.hi} out of range "
                    f"for a {num_osds}-OSD cluster"
                )
            overlap = claimed.intersection(range(band.lo, band.hi + 1))
            if overlap:
                raise ValueError(
                    f"endurance band {band.render()!r}: OSD {min(overlap)} is "
                    f"rated by more than one band"
                )
            claimed.update(range(band.lo, band.hi + 1))
        if num_osds is not None and self.bands and not defaults:
            uncovered = sorted(set(range(num_osds)) - claimed)
            if uncovered:
                raise ValueError(
                    f"endurance spec {self.spec!r}: OSDs {uncovered} have no "
                    f"rating; add a default band or cover the whole cluster"
                )

    def ratings(self, num_osds: int) -> np.ndarray:
        """Rated lifetime per OSD, in wear (erase-count) units.

        The empty model rates every OSD at ``inf`` -- the engine's "no
        endurance" representation, under which every lifetime expression
        (remaining life, predicted wear-out) stays finite-free and inert.
        """
        self.validate(num_osds=num_osds)
        if not self.bands:
            return np.full(num_osds, np.inf)
        default = self.default_cycles
        out = np.full(num_osds, default if default is not None else np.inf)
        for band in self.bands:
            if band.lo is not None:
                out[band.lo : band.hi + 1] = band.cycles
        return out
