"""Endurance specs: per-OSD rated P/E-cycle budgets.

An :class:`EnduranceModel` is parsed from a compact spec string (the
``endurance`` field of :class:`~edm.config.SimConfig`, or ``--endurance`` on
the CLI) and assigns every OSD a rated lifetime in erase-count units -- the
same units ``osd_wear`` accrues in -- so "wear" gains a notion of how close
each SSD is to dying.  There is no randomness here: ratings are a pure
function of the spec, so endurance-aware runs are exactly as reproducible as
endurance-free ones.

Spec grammar (bands joined with ``,``; no semicolons, so a
semicolon-separated CLI list can carry several scenarios)::

    spec    := "pe:" band ("," band)*
    band    := CYCLES ("@" OSD ("-" OSD)?)?     rating, optional OSD range

Examples::

    pe:5000                    every OSD rated at 5000 cycles
    pe:3000@0-3,10000@4-7      OSDs 0..3 rated 3000, OSDs 4..7 rated 10000
    pe:5000,300@2              default 5000 with one weak drive (OSD 2)

At most one band may omit the ``@`` range; it becomes the default rating for
every OSD not covered by a ranged band.  Without a default band the ranged
bands must cover the whole cluster.  The empty string (or ``"none"``) means
no endurance model: every OSD has an unlimited (infinite) rated lifetime.

Parsing canonicalizes the spec -- default band first, ranged bands sorted by
their first OSD, numbers normalized -- so two spellings of the same model
produce the same ``SimConfig`` content hash and hit the same cache entry.

Band tokenization, range parsing, number rendering, and band-set validation
come from the shared :mod:`edm.spec` toolkit (also behind the faults and
service grammars); canonical output is byte-identical to the pre-toolkit
parser, so hashes and cache keys are untouched.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from edm.spec import (
    ClauseRule,
    SpecError,
    SpecGrammar,
    format_fixed,
    render_range,
    span_fragment,
    validate_bands,
)


@dataclass(frozen=True)
class EnduranceBand:
    """One rating band: ``cycles`` for OSDs ``lo..hi`` (inclusive).

    ``lo is None`` marks the default band covering every OSD not claimed by
    a ranged band.
    """

    cycles: float
    lo: int | None = None
    hi: int | None = None

    def render(self) -> str:
        """Canonical spec fragment for this band."""
        return format_fixed(self.cycles) + render_range(self.lo, self.hi)


def _build_band(m: re.Match) -> EnduranceBand:
    span = span_fragment(m.group(2), m.group(3))
    if span is None:
        return EnduranceBand(cycles=float(m.group(1)))
    return EnduranceBand(cycles=float(m.group(1)), lo=span[0], hi=span[1])


_GRAMMAR = SpecGrammar(
    name="endurance",
    sep=",",
    clause_noun="endurance band",
    expected="'CYCLES', 'CYCLES@OSD' or 'CYCLES@LO-HI'",
    rules=(
        ClauseRule(
            name="band",
            regex=re.compile(r"^(\d+(?:\.\d+)?)(?:@(\d+)(?:-(\d+))?)?$"),
            build=_build_band,
        ),
    ),
)


@dataclass(frozen=True)
class EnduranceModel:
    """A validated, canonically ordered set of rating bands."""

    bands: tuple[EnduranceBand, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.bands)

    @property
    def spec(self) -> str:
        """Canonical spec string (round-trips through :meth:`parse`)."""
        if not self.bands:
            return ""
        return "pe:" + ",".join(band.render() for band in self.bands)

    @property
    def default_cycles(self) -> float | None:
        for band in self.bands:
            if band.lo is None:
                return band.cycles
        return None

    @classmethod
    def parse(cls, spec: str, num_osds: int | None = None) -> "EnduranceModel":
        """Parse and validate a spec; ``num_osds`` enables coverage checks."""
        spec = (spec or "").strip()
        if not spec or spec == "none":
            return cls()
        if not spec.startswith("pe:"):
            raise SpecError(
                f"bad endurance spec {spec!r}; expected 'pe:CYCLES' or "
                f"'pe:CYCLES@LO-HI,...' ('none' = unlimited endurance)"
            )
        bands = _GRAMMAR.parse(spec[3:])
        if not bands:
            raise SpecError(f"bad endurance spec {spec!r}: no rating bands")
        # Canonical order: the default band first, ranged bands by first OSD.
        bands.sort(key=lambda b: (-1, -1) if b.lo is None else (b.lo, b.hi))
        model = cls(bands=tuple(bands))
        model.validate(num_osds=num_osds)
        return model

    def validate(self, num_osds: int | None = None) -> None:
        validate_bands(
            self.bands,
            num_osds,
            spec=self.spec,
            spec_noun="endurance spec",
            band_noun="endurance band",
            value_noun="rated cycles",
            render=lambda b: b.render(),
            value=lambda b: b.cycles,
        )

    def ratings(self, num_osds: int) -> np.ndarray:
        """Rated lifetime per OSD, in wear (erase-count) units.

        The empty model rates every OSD at ``inf`` -- the engine's "no
        endurance" representation, under which every lifetime expression
        (remaining life, predicted wear-out) stays finite-free and inert.
        """
        self.validate(num_osds=num_osds)
        if not self.bands:
            return np.full(num_osds, np.inf)
        default = self.default_cycles
        out = np.full(num_osds, default if default is not None else np.inf)
        for band in self.bands:
            if band.lo is not None:
                out[band.lo : band.hi + 1] = band.cycles
        return out
