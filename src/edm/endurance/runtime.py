"""Endurance runtime: rated lifetimes, wear-rate EWMA, wear-out failures.

The engine calls :meth:`EnduranceTracker.step` once per epoch *before*
routing (right after any scheduled fault events): an OSD whose consumed
cycles have reached its rated budget fails at that epoch boundary, exactly
like a scheduled ``fail`` event -- the engine re-places its chunks through
the active policy and fans a synthesized ``wearout`` :class:`FaultEvent`
out to every recorder via the ``on_fault`` hook.

:meth:`EnduranceTracker.update_rate` folds each epoch's wear delta (routing
writes plus any migration wear applied since the previous update) into
``state.osd_wear_rate``, an EWMA smoothed by ``cfg.wear_rate_alpha``.  The
rate drives :meth:`~edm.engine.state.ClusterState.predicted_wearout_epochs`,
the epochs-to-wear-out estimate CMT's destination score steers by.

One deliberate safety valve: a wear-out never kills the last survivor.  If
every remaining alive OSD is past its rating at the same boundary, the one
with the most relative headroom keeps serving past its budget (real
clusters degrade, they don't evaporate); everything else fails normally.

This module only touches NumPy arrays on the state object (duck-typed, no
engine imports), keeping the endurance package import-cycle-free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from edm.endurance.spec import EnduranceModel
from edm.faults.plan import FaultEvent

if TYPE_CHECKING:
    from edm.config import SimConfig
    from edm.engine.state import ClusterState


def wearout_risk(state: "ClusterState") -> np.ndarray:
    """Per-OSD wear-out risk in ``[0, 1]``: ``1 / (1 + predicted epochs)``.

    0 for an OSD predicted to live forever (no rating, or no write traffic),
    approaching 1 as predicted epochs-to-wear-out falls to zero.  A bounded
    transform of the prediction, so CMT can normalize it by a cluster-wide
    mean exactly like its load and wear terms.
    """
    return 1.0 / (1.0 + state.predicted_wearout_epochs())


class EnduranceTracker:
    """Steps rated-lifetime bookkeeping into cluster state each epoch."""

    def __init__(self, model: EnduranceModel, cfg: "SimConfig"):
        self.model = model
        self._ratings = model.ratings(cfg.num_osds)
        self._alpha = cfg.wear_rate_alpha
        self._prev_wear: np.ndarray | None = None

    def attach(self, state: "ClusterState") -> None:
        """Install the rated budgets on freshly initialized state."""
        state.osd_rated_life = self._ratings.copy()
        self._prev_wear = state.osd_wear.copy()

    def grow(self, state: "ClusterState") -> None:
        """Widen the wear-delta baseline after a topology scale-out event.

        New drives enter with their current (zero) wear as the baseline, so
        the next :meth:`update_rate` sees a zero first delta rather than a
        spurious full-wear jump.  Ratings for added drives are installed by
        the topology runtime (per-band ``pe:`` attribute), not re-derived
        from the endurance model's initial-fleet layout.
        """
        if self._prev_wear is not None and self._prev_wear.size < state.num_osds:
            self._prev_wear = np.concatenate(
                [self._prev_wear, state.osd_wear[self._prev_wear.size :]]
            )

    def step(self, state: "ClusterState", epoch: int) -> list[FaultEvent]:
        """Fail every alive OSD at or past its rated budget; returns the events.

        Deterministic: candidates are found by a vectorized comparison and
        fail in OSD-id order.  The engine re-places each failed OSD's chunks
        immediately, so ``state.validate()`` holds after every event.
        """
        worn = state.osd_alive & (state.osd_wear >= state.osd_rated_life)
        if not worn.any():
            return []
        ids = np.flatnonzero(worn)
        if worn.sum() == state.osd_alive.sum():
            # Last-survivor guard: keep the OSD with the most relative
            # headroom serving past its rating rather than killing the
            # whole cluster (ties break to the lowest OSD id).
            overdraft = state.osd_wear[ids] / state.osd_rated_life[ids]
            ids = np.delete(ids, int(np.argmin(overdraft)))
        events = []
        for osd in ids:
            state.osd_alive[osd] = False
            state.osd_capacity[osd] = 0.0
            events.append(FaultEvent(kind="wearout", osd=int(osd), epoch=epoch))
        if events:
            state.degraded = True
        return events

    def update_rate(self, state: "ClusterState") -> None:
        """EWMA the wear accrued since the previous update into the state."""
        delta = state.osd_wear - self._prev_wear
        state.osd_wear_rate *= 1.0 - self._alpha
        state.osd_wear_rate += self._alpha * delta
        np.copyto(self._prev_wear, state.osd_wear)
