"""Endurance model: rated P/E budgets, lifetime tracking, wear-out failures.

* :mod:`edm.endurance.spec` -- :class:`EnduranceModel` / :class:`EnduranceBand`:
  parse and canonicalize ``--endurance`` spec strings (``pe:5000``,
  ``pe:3000@0-3,10000@4-7``; seed-free, fully deterministic).
* :mod:`edm.endurance.runtime` -- :class:`EnduranceTracker`: installs rated
  budgets on cluster state, maintains the per-OSD wear-rate EWMA, and fails
  OSDs whose consumed cycles reach their rating; :func:`wearout_risk` is the
  bounded epochs-to-wear-out transform CMT's destination score steers by.

The engine wires these together in :func:`edm.engine.core.simulate`: a
wear-out fires a synthesized ``wearout`` :class:`~edm.faults.FaultEvent`
through the same batch re-placement and ``on_fault`` observer path as a
scheduled failure, so the fault and endurance layers share one degraded-mode
machinery.
"""

from edm.endurance.runtime import EnduranceTracker, wearout_risk
from edm.endurance.spec import EnduranceBand, EnduranceModel

__all__ = [
    "EnduranceBand",
    "EnduranceModel",
    "EnduranceTracker",
    "wearout_risk",
]
