"""Shared spec-grammar toolkit for compact configuration strings.

Three SimConfig fields are driven by compact spec strings -- fault plans
(``fail:3@100;slow:5@50x0.5``), endurance models (``pe:3000@0-3,10000@4-7``),
and service models (``rate:800;rate:400@0-3;queue:64``).  They share the same
shape: a separator-joined list of clauses, each matched by a small regex,
``@EPOCH`` / ``@LO-HI`` ranges, canonical ordering and number rendering so
equivalent spellings hash identically, and error messages that name the
offending clause.  This module is that shared machinery; the per-field
grammars (:mod:`edm.faults.plan`, :mod:`edm.endurance.spec`,
:mod:`edm.service.spec`) declare their clauses on top of it instead of each
hand-rolling a parser.

Porting contract: the canonical strings this toolkit renders are
**byte-identical** to the ones the previous hand-rolled parsers produced
(pinned by tests/test_spec_grammar.py), so ``config_hash`` values, cache-key
suffixes, and every previously written cache entry survive the port.

Deliberately dependency-free (stdlib only, no engine imports) so the config
layer can parse and validate specs without import cycles.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable

__all__ = [
    "ClauseRule",
    "SpecError",
    "SpecGrammar",
    "format_fixed",
    "format_g",
    "render_range",
    "span_fragment",
    "validate_bands",
]

#: Regex fragment matching an optional ``@LO`` / ``@LO-HI`` range suffix.
#: Groups: (lo, hi); both None when the suffix is absent, hi None for ``@LO``.
RANGE_SUFFIX = r"(?:@(\d+)(?:-(\d+))?)?"

#: Regex fragment matching an unsigned decimal number (no exponent form --
#: canonical rendering must round-trip, see :func:`format_fixed`).
NUMBER = r"\d+(?:\.\d+)?"


class SpecError(ValueError):
    """A spec string failed to parse or validate.

    Subclasses ``ValueError`` so existing ``except ValueError`` /
    ``pytest.raises(ValueError)`` call sites keep working; messages always
    name the offending clause (or band) verbatim.
    """


def format_g(x: float) -> str:
    """Shortest-form number rendering (``%g``), for factors and ratios."""
    return f"{x:g}"


def format_fixed(x: float) -> str:
    """Fixed-point number rendering, never scientific.

    ``pe:1000000`` and ``rate:1000000`` must round-trip, and the clause
    grammars have no exponent form, so ``%g`` (which switches to ``1e+06``)
    is not an option.
    """
    return format(x, ".6f").rstrip("0").rstrip(".")


def span_fragment(lo: int | None, hi: int | None) -> tuple[int, int] | None:
    """Normalize matched range groups: ``@LO`` means ``@LO-LO``."""
    if lo is None:
        return None
    return (int(lo), int(hi) if hi is not None else int(lo))


def render_range(lo: int | None, hi: int | None) -> str:
    """Canonical range suffix: empty for a default, ``@LO`` or ``@LO-HI``."""
    if lo is None:
        return ""
    if lo == hi:
        return f"@{lo}"
    return f"@{lo}-{hi}"


@dataclass(frozen=True)
class ClauseRule:
    """One clause kind: a compiled regex plus a constructor for its matches."""

    name: str
    regex: re.Pattern
    build: Callable[[re.Match], Any]


class SpecGrammar:
    """Separator-joined clause grammar: tokenize, match, canonicalize.

    ``clause_noun`` names one clause in error messages ("fault event",
    "endurance band", "service clause"); ``expected`` describes the accepted
    clause shapes, quoted verbatim after "expected" in the parse error.
    """

    def __init__(
        self,
        name: str,
        rules: tuple[ClauseRule, ...],
        sep: str = ";",
        clause_noun: str = "clause",
        expected: str = "",
    ):
        self.name = name
        self.rules = rules
        self.sep = sep
        self.clause_noun = clause_noun
        self.expected = expected

    def split(self, spec: str | None) -> list[str]:
        """Tokenize a spec into stripped clause strings.

        The empty string, whitespace, and the word ``"none"`` all mean "no
        clauses" -- every grammar's spelling of the disabled feature.
        """
        spec = (spec or "").strip()
        if not spec or spec == "none":
            return []
        return [part.strip() for part in spec.split(self.sep) if part.strip()]

    def parse_clause(self, text: str) -> Any:
        """Match one clause against the rules; raises naming the clause."""
        for rule in self.rules:
            m = rule.regex.match(text)
            if m:
                return rule.build(m)
        raise SpecError(
            f"bad {self.clause_noun} {text!r}; expected {self.expected}"
        )

    def parse(self, spec: str | None) -> list[Any]:
        """Tokenize and match every clause (no cross-clause validation)."""
        return [self.parse_clause(part) for part in self.split(spec)]


def validate_bands(
    bands,
    num_osds: int | None,
    *,
    spec: str,
    spec_noun: str,
    band_noun: str,
    value_noun: str,
    render: Callable[[Any], str],
    value: Callable[[Any], float] = lambda b: b.value,
    missing_noun: str = "rating",
    claim_verb: str = "rated",
) -> None:
    """Shared validation for ``VALUE@LO-HI`` band sets with one default.

    Bands are objects exposing ``lo`` / ``hi`` (``lo is None`` marks the
    default band) plus a value accessor.  Checks: at most one default band,
    positive values, non-inverted in-range OSD spans, no overlap, and -- when
    ``num_osds`` is known and no default exists -- full cluster coverage.
    Error messages name the offending band via ``render``.
    """
    defaults = [b for b in bands if b.lo is None]
    if len(defaults) > 1:
        raise SpecError(
            f"{spec_noun} {spec!r}: at most one default (range-free) "
            f"band is allowed"
        )
    claimed: set[int] = set()
    for band in bands:
        if value(band) <= 0:
            raise SpecError(
                f"{band_noun} {render(band)!r}: {value_noun} must be > 0"
            )
        if band.lo is None:
            continue
        if band.lo > band.hi:
            raise SpecError(
                f"{band_noun} {render(band)!r}: range is inverted"
            )
        if num_osds is not None and band.hi >= num_osds:
            raise SpecError(
                f"{band_noun} {render(band)!r}: OSD {band.hi} out of range "
                f"for a {num_osds}-OSD cluster"
            )
        overlap = claimed.intersection(range(band.lo, band.hi + 1))
        if overlap:
            raise SpecError(
                f"{band_noun} {render(band)!r}: OSD {min(overlap)} is "
                f"{claim_verb} by more than one band"
            )
        claimed.update(range(band.lo, band.hi + 1))
    if num_osds is not None and bands and not defaults:
        uncovered = sorted(set(range(num_osds)) - claimed)
        if uncovered:
            raise SpecError(
                f"{spec_noun} {spec!r}: OSDs {uncovered} have no "
                f"{missing_noun}; add a default band or cover the whole cluster"
            )
