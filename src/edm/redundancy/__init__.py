"""Replicated / erasure-coded chunk-group placement and reconstruction.

:class:`RedundancyScheme` (:mod:`edm.redundancy.spec`) parses the
``--redundancy`` spec grammar (``rep:3`` / ``ec:4+2``) into a placement
constraint: consecutive chunks form groups whose members must live on
pairwise-distinct OSDs.  :class:`RedundancyRuntime`
(:mod:`edm.redundancy.runtime`) accounts the read-amplified reconstruction
traffic failures trigger under that constraint.
"""

from edm.redundancy.runtime import RedundancyRuntime, group_members
from edm.redundancy.spec import RedundancyScheme

__all__ = ["RedundancyRuntime", "RedundancyScheme", "group_members"]
