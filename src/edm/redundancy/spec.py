"""Redundancy schemes: replicated / erasure-coded chunk-group placement.

A :class:`RedundancyScheme` is parsed from a compact spec string (the
``redundancy`` field of :class:`~edm.config.SimConfig`, or ``--redundancy``
on the CLI) and groups consecutive chunks into *placement groups* whose
members must live on pairwise-distinct OSDs -- the classic replica /
erasure-code spread constraint.  There is no randomness here: the grouping
is a pure function of the spec, so redundant runs are exactly as
reproducible as plain ones.

Spec grammar (exactly one clause)::

    spec := "rep:" N        N-way replication (N >= 2 copies per group)
          | "ec:" M "+" K   erasure coding, M data + K parity chunks

Examples::

    rep:3     three-way replication: groups of 3 chunks, 3 distinct OSDs
    ec:4+2    Reed-Solomon-style 4+2: groups of 6 chunks, 6 distinct OSDs

The empty string (or ``"none"``) means no redundancy: chunks are placed
independently and a failed OSD's chunks are simply re-placed.

With a scheme configured, losing a chunk triggers *reconstruction*: the
engine reads surviving group members (1 read for replication, M reads for
``ec:M+K``) and writes a fresh copy -- read-amplified recovery traffic
charged through the service queues, with the write charged as ordinary
migration wear.  A group that loses more members than the scheme tolerates
is counted as data loss (the simulator still re-places the chunk so the
engine's ownership invariants hold).

Clause tokenization and error-message shape come from the shared
:mod:`edm.spec` toolkit (also behind the faults / endurance / service /
topology grammars); parsing canonicalizes the spec (``rep:03`` -> ``rep:3``)
so equivalent spellings produce the same ``SimConfig`` content hash.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from edm.spec import ClauseRule, SpecError, SpecGrammar

__all__ = ["RedundancyScheme"]


_GRAMMAR = SpecGrammar(
    name="redundancy",
    sep=";",
    clause_noun="redundancy scheme",
    expected="'rep:N' (N-way replication) or 'ec:M+K' (M data + K parity)",
    rules=(
        ClauseRule(
            name="rep",
            regex=re.compile(r"^rep:(\d+)$"),
            build=lambda m: ("rep", int(m.group(1)), 0),
        ),
        ClauseRule(
            name="ec",
            regex=re.compile(r"^ec:(\d+)\+(\d+)$"),
            build=lambda m: ("ec", int(m.group(1)), int(m.group(2))),
        ),
    ),
)


@dataclass(frozen=True)
class RedundancyScheme:
    """A validated redundancy scheme (the empty scheme = no redundancy).

    ``kind`` is ``"rep"`` / ``"ec"`` / ``""``; ``m`` is the copy count for
    replication or the data-chunk count for erasure coding; ``k`` is the
    parity-chunk count (0 for replication).
    """

    kind: str = ""
    m: int = 0
    k: int = 0

    def __bool__(self) -> bool:
        return bool(self.kind)

    @property
    def spec(self) -> str:
        """Canonical spec string (round-trips through :meth:`parse`)."""
        if not self.kind:
            return ""
        if self.kind == "rep":
            return f"rep:{self.m}"
        return f"ec:{self.m}+{self.k}"

    @property
    def group_width(self) -> int:
        """Chunks per placement group -- each on a distinct OSD."""
        if not self.kind:
            return 0
        return self.m if self.kind == "rep" else self.m + self.k

    @property
    def reads_per_loss(self) -> int:
        """Surviving-chunk reads needed to rebuild one lost chunk.

        Replication copies from any single survivor; ``ec:M+K`` decodes from
        any M survivors -- the read amplification erasure codes trade for
        their storage efficiency.
        """
        if not self.kind:
            return 0
        return 1 if self.kind == "rep" else self.m

    @property
    def tolerated_losses(self) -> int:
        """Group members that can be lost before data becomes unrecoverable."""
        if not self.kind:
            return 0
        return self.m - 1 if self.kind == "rep" else self.k

    @classmethod
    def parse(cls, spec: str, num_osds: int | None = None) -> "RedundancyScheme":
        """Parse and validate a spec; ``num_osds`` enables the width check."""
        clauses = _GRAMMAR.parse(spec)
        if not clauses:
            return cls()
        if len(clauses) > 1:
            raise SpecError(
                f"bad redundancy spec {spec!r}: exactly one scheme is "
                f"allowed, got {len(clauses)}"
            )
        kind, m, k = clauses[0]
        scheme = cls(kind=kind, m=m, k=k)
        scheme.validate(num_osds=num_osds)
        return scheme

    def validate(self, num_osds: int | None = None) -> None:
        if not self.kind:
            return
        if self.kind == "rep" and self.m < 2:
            raise SpecError(
                f"redundancy scheme {self.spec!r}: replication needs at "
                f"least 2 copies ('none' = no redundancy)"
            )
        if self.kind == "ec" and (self.m < 1 or self.k < 1):
            raise SpecError(
                f"redundancy scheme {self.spec!r}: erasure coding needs at "
                f"least 1 data and 1 parity chunk"
            )
        if num_osds is not None and self.group_width > num_osds:
            raise SpecError(
                f"redundancy scheme {self.spec!r} needs {self.group_width} "
                f"distinct OSDs per group, but the cluster has {num_osds}"
            )
