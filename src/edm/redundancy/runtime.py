"""Reconstruction-traffic accounting for redundant placement.

The placement side of redundancy is static state (``ClusterState.chunk_group``
/ ``group_width``, laid out by :func:`edm.engine.state.init_state`, enforced
by the policy layer and the engine's re-placement path).  This runtime owns
the *dynamic* side: when an OSD fails (scheduled fault or wear-out), each of
its chunks is rebuilt from surviving group members instead of merely
re-placed --

  * ``reads_per_loss`` surviving chunks are read (1 for replication, M for
    ``ec:M+K``), charged into the read sources' service queues when a
    service model is configured (reads occupy queues but, unlike the rebuild
    write, add no erase-count wear);
  * one fresh chunk is written at the destination the policy picked, charged
    as ordinary migration wear by :func:`edm.engine.core.apply_migrations`;
  * a group with fewer survivors than the scheme needs is counted as data
    loss (the chunk is still re-placed so ownership invariants hold).

Graceful drains never charge reconstruction: the draining OSD is alive, so
its chunks stream out as plain (group-constrained) migrations.

All counters surface through :meth:`metrics_block`, merged into the final
metrics dict only for redundant configs so plain runs stay bit-identical to
the redundancy-unaware engine.
"""

from __future__ import annotations

import numpy as np

from edm.config import SimConfig
from edm.engine.state import ClusterState
from edm.redundancy.spec import RedundancyScheme

__all__ = ["RedundancyRuntime", "group_members"]


def group_members(state: ClusterState, chunk: int) -> np.ndarray:
    """Chunk ids sharing ``chunk``'s placement group (including itself).

    Groups are consecutive id ranges of ``state.group_width`` chunks (the
    last group may be narrower when the chunk count is not a multiple).
    """
    w = state.group_width
    lo = (int(chunk) // w) * w
    return np.arange(lo, min(lo + w, state.num_chunks), dtype=np.int64)


class RedundancyRuntime:
    """Per-run reconstruction counters for one :class:`RedundancyScheme`."""

    def __init__(self, scheme: RedundancyScheme, cfg: SimConfig):
        self.scheme = scheme
        self.cfg = cfg
        self.reconstruction_chunks = 0
        self.reconstruction_reads = 0
        self.data_loss_chunks = 0

    def on_reconstruction(self, state: ClusterState, lost: np.ndarray) -> None:
        """Charge the rebuild of ``lost`` chunks (all on one just-dead OSD).

        For each lost chunk, the first ``reads_per_loss`` surviving group
        members in chunk-id order are read; their owners' queues absorb one
        migration-equivalent of work each (when a service model is
        configured).  Chunks whose groups lack enough survivors -- e.g.
        several same-epoch failures hitting one group -- count as data loss
        and charge whatever reads remain available.

        A trailing *partial* group (chunk count not a multiple of the group
        width) reconstructs as a narrower stripe: it reads however many
        members it actually has, capped at ``reads_per_loss``, rather than
        reporting a layout artifact as data loss.
        """
        cfg = self.cfg
        read_work = np.zeros(state.num_osds)
        for chunk in lost:
            members = group_members(state, int(chunk))
            peers = members[members != chunk]
            needed = min(self.scheme.reads_per_loss, int(peers.size))
            owners = state.chunk_owner[peers]
            srcs = owners[state.osd_alive[owners]][:needed]
            if srcs.size < needed:
                self.data_loss_chunks += 1
            self.reconstruction_reads += int(srcs.size)
            if srcs.size:
                read_work += np.bincount(srcs, minlength=state.num_osds)
        self.reconstruction_chunks += int(len(lost))
        if cfg.service and read_work.any():
            # Reads occupy the sources' queues exactly like the streaming
            # side of a migration copy; they drain over the same cooldown
            # window (see edm.service.runtime).
            state.osd_mig_backlog += read_work * cfg.service_migration_cost

    def metrics_block(self) -> dict:
        """Reconstruction metrics, merged into the final dict for redundant runs."""
        cfg = self.cfg
        return {
            "redundancy": cfg.redundancy,
            "redundancy_group_width": int(self.scheme.group_width),
            "reconstruction_chunks_total": int(self.reconstruction_chunks),
            "reconstruction_reads_total": int(self.reconstruction_reads),
            "reconstruction_read_mb": float(
                self.reconstruction_reads * cfg.chunk_size_mb
            ),
            "reconstruction_write_mb": float(
                self.reconstruction_chunks * cfg.chunk_size_mb
            ),
            "data_loss_chunks_total": int(self.data_loss_chunks),
        }
