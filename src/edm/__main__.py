import sys

from edm.cli import main

sys.exit(main())
