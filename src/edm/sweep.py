"""Parallel sweep runner.

Fans a workload x osd x policy x seed grid across a ProcessPoolExecutor.
Cache lookups happen in the parent before any worker is spawned, so a fully
warm sweep never pays pool startup; only misses are submitted.  Each config
carries its own seed and derives its RNG streams from its content hash
(see edm.config.rng_seed_sequence), so results are identical regardless of
worker count or scheduling order.

With ``timeseries_dir`` set, each worker additionally runs a
:class:`~edm.telemetry.TimeSeriesRecorder` and serializes its series to
``<timeseries_dir>/<cache_name>.npz`` *inside the worker*, so large grids
stream per-epoch series to disk instead of materializing them in the parent.
A config only counts as cached when both its metrics pickle and (when
requested) its ``.npz`` series exist.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from itertools import product
from pathlib import Path

from edm.cache import DEFAULT_CACHE_DIR, ResultCache
from edm.config import POLICIES, WORKLOADS, SimConfig
from edm.engine.core import simulate
from edm.telemetry import TimeSeriesRecorder


def default_grid(
    workloads=WORKLOADS,
    osds=(16, 20),
    policies=POLICIES,
    seeds=(12345, 54321),
    skew: float = 0.02,
    **overrides,
) -> list[SimConfig]:
    """The paper's evaluation grid: 4 workloads x {16,20} OSDs x 4 policies x 2 seeds."""
    return [
        SimConfig(workload=w, num_osds=n, policy=p, seed=s, skew=skew, **overrides)
        for w, n, p, s in product(workloads, osds, policies, seeds)
    ]


def series_path(timeseries_dir: str | os.PathLike, cfg: SimConfig) -> Path:
    """Where a config's time series lands: ``<dir>/<cache_name>.npz``."""
    return Path(timeseries_dir) / f"{cfg.cache_name()}.npz"


def _run_config(task: tuple[dict, str | None, int]) -> dict:
    """Worker entry point (module-level for picklability).

    Writes the ``.npz`` series from inside the worker when requested, so only
    the small metrics dict crosses the process boundary.
    """
    cfg_dict, ts_dir, record_every = task
    cfg = SimConfig.from_dict(cfg_dict)
    if ts_dir is None:
        return simulate(cfg)
    rec = TimeSeriesRecorder(record_every=record_every)
    metrics = simulate(cfg, recorders=(rec,))
    rec.series.save_npz(series_path(ts_dir, cfg))
    return metrics


@dataclass
class SweepResult:
    """Completed sweep: one metrics dict per input config, in input order."""

    results: list[dict]
    cache_hits: int
    cache_misses: int
    cache_invalidated: int
    simulated: int

    def __post_init__(self) -> None:
        bad = [i for i, r in enumerate(self.results) if not isinstance(r, dict)]
        if bad:
            raise TypeError(
                f"SweepResult.results must be complete metrics dicts; "
                f"non-dict entries at indices {bad[:8]}"
            )

    @property
    def total_requests(self) -> int:
        return sum(r["total_requests"] for r in self.results)


def sweep(
    configs: list[SimConfig],
    cache_dir=DEFAULT_CACHE_DIR,
    workers: int | None = None,
    force: bool = False,
    use_cache: bool = True,
    timeseries_dir: str | os.PathLike | None = None,
    record_every: int = 1,
) -> SweepResult:
    """Run every config, returning results in the order given.

    ``force=True`` re-simulates even on a cache hit (and refreshes the cache).
    ``workers`` <= 1 runs inline with no pool; the default is the CPU count.
    ``timeseries_dir`` additionally writes one ``.npz`` per config (sampled
    every ``record_every`` epochs), re-simulating configs whose series file
    is missing even when their metrics are cached.
    """
    cache = ResultCache(cache_dir) if use_cache else None
    ts_dir = Path(timeseries_dir) if timeseries_dir is not None else None
    if ts_dir is not None:
        ts_dir.mkdir(parents=True, exist_ok=True)
    slots: list[dict | None] = [None] * len(configs)
    pending: list[int] = []

    for i, cfg in enumerate(configs):
        have_series = ts_dir is None or series_path(ts_dir, cfg).exists()
        if cache is not None and not force and have_series:
            hit = cache.load(cfg)
            if hit is not None:
                slots[i] = hit
                continue
        pending.append(i)

    if workers is None:
        workers = os.cpu_count() or 1
    workers = max(1, min(workers, len(pending) or 1))

    if pending:
        ts_dir_arg = str(ts_dir) if ts_dir is not None else None
        tasks = [(configs[i].to_dict(), ts_dir_arg, record_every) for i in pending]
        if workers == 1:
            computed = [_run_config(t) for t in tasks]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                computed = list(pool.map(_run_config, tasks))
        for i, metrics in zip(pending, computed):
            slots[i] = metrics
            if cache is not None:
                cache.store(configs[i], metrics)

    return SweepResult(
        results=slots,  # type: ignore[arg-type]  # __post_init__ proves completeness
        cache_hits=cache.hits if cache else 0,
        cache_misses=cache.misses if cache else len(pending),
        cache_invalidated=cache.invalidated if cache else 0,
        simulated=len(pending),
    )
