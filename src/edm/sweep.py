"""Parallel sweep runner.

Fans a workload x osd x policy x seed grid across a ProcessPoolExecutor.
Cache lookups happen in the parent before any worker is spawned, so a fully
warm sweep never pays pool startup; only misses are submitted.  Each config
carries its own seed and derives its RNG streams from its content hash
(see edm.config.rng_seed_sequence), so results are identical regardless of
worker count or scheduling order.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from itertools import product

from edm.cache import DEFAULT_CACHE_DIR, ResultCache
from edm.config import POLICIES, WORKLOADS, SimConfig
from edm.engine.core import simulate


def default_grid(
    workloads=WORKLOADS,
    osds=(16, 20),
    policies=POLICIES,
    seeds=(12345, 54321),
    skew: float = 0.02,
    **overrides,
) -> list[SimConfig]:
    """The paper's evaluation grid: 4 workloads x {16,20} OSDs x 4 policies x 2 seeds."""
    return [
        SimConfig(workload=w, num_osds=n, policy=p, seed=s, skew=skew, **overrides)
        for w, n, p, s in product(workloads, osds, policies, seeds)
    ]


def _run_config(cfg_dict: dict) -> dict:
    """Worker entry point (module-level for picklability)."""
    return simulate(SimConfig.from_dict(cfg_dict))


@dataclass
class SweepResult:
    results: list[dict]
    cache_hits: int
    cache_misses: int
    cache_invalidated: int
    simulated: int

    @property
    def total_requests(self) -> int:
        return sum(r["total_requests"] for r in self.results)


def sweep(
    configs: list[SimConfig],
    cache_dir=DEFAULT_CACHE_DIR,
    workers: int | None = None,
    force: bool = False,
    use_cache: bool = True,
) -> SweepResult:
    """Run every config, returning results in the order given.

    ``force=True`` re-simulates even on a cache hit (and refreshes the cache).
    ``workers`` <= 1 runs inline with no pool; the default is the CPU count.
    """
    cache = ResultCache(cache_dir) if use_cache else None
    results: list[dict | None] = [None] * len(configs)
    pending: list[int] = []

    for i, cfg in enumerate(configs):
        if cache is not None and not force:
            hit = cache.load(cfg)
            if hit is not None:
                results[i] = hit
                continue
        pending.append(i)

    if workers is None:
        workers = os.cpu_count() or 1
    workers = max(1, min(workers, len(pending) or 1))

    if pending:
        if workers == 1:
            computed = [_run_config(configs[i].to_dict()) for i in pending]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                computed = list(
                    pool.map(_run_config, [configs[i].to_dict() for i in pending])
                )
        for i, metrics in zip(pending, computed):
            results[i] = metrics
            if cache is not None:
                cache.store(configs[i], metrics)

    return SweepResult(
        results=results,  # type: ignore[arg-type]
        cache_hits=cache.hits if cache else 0,
        cache_misses=cache.misses if cache else len(pending),
        cache_invalidated=cache.invalidated if cache else 0,
        simulated=len(pending),
    )
