"""Parallel sweep runner.

Fans a workload x osd x policy x seed grid across a ProcessPoolExecutor.
Cache lookups happen in the parent before any worker is spawned, so a fully
warm sweep never pays pool startup; only misses are submitted.  Each config
carries its own seed and derives its RNG streams from its content hash
(see edm.config.rng_seed_sequence), so results are identical regardless of
worker count or scheduling order.

Dispatch is ``submit``/``as_completed``: results are cached **as they land**,
so an interrupted sweep (a poisoned config, a dead worker, Ctrl-C between
results) keeps every completed config's work -- the next sweep resumes from
cache.  When any config fails, the remaining futures are still drained and
stored before the first error is re-raised.

With ``timeseries_dir`` set, each worker additionally runs a
:class:`~edm.telemetry.TimeSeriesRecorder` and serializes its series to
``<timeseries_dir>/<cache_name>.npz`` *inside the worker*, so large grids
stream per-epoch series to disk instead of materializing them in the parent.
A config only counts as cached when both its metrics pickle and (when
requested) its ``.npz`` series exist.

With ``run_log`` set, the same worker-side streaming applies to
observability: each worker appends ``run_start``/``run_end`` JSONL records
(run id, config hash, engine version, pid, wall time, span timings) to the
log, and the parent brackets them with ``sweep_start``/``sweep_end`` records
carrying cache counters and the parent-side stage spans (cache probe, pool
startup, result collection).  See :mod:`edm.obs.runlog` for the schema.

With ``stream=True``, result transport scales to 1000s-config grids: each
worker spills its full metrics dict straight into the ``.repro-cache``
layout (the same content-addressed pickles a normal sweep writes) and
returns only a slim summary record -- the handful of scalars the sweep
table, progress meter, and report need.  The parent never materializes the
full result set, so its peak memory is independent of grid size;
:meth:`SweepResult.iter_results` lazily re-loads full metrics from the
cache, one config at a time, in input order.  Worker-side spilling also
means an interrupted streaming sweep keeps every completed config's work.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from itertools import product
from pathlib import Path

import logging

from edm.cache import DEFAULT_CACHE_DIR, ResultCache
from edm.config import POLICIES, WORKLOADS, SimConfig, config_hash, ENGINE_VERSION
from edm.engine.core import simulate
from edm.obs import (
    NULL_TRACER,
    ProgressLine,
    RunLogWriter,
    Tracer,
    configure_logging,
    get_logger,
    new_id,
    write_span_events,
)
from edm.obs.log import ROOT_LOGGER_NAME
from edm.telemetry import Recorder, TimeSeriesRecorder

__all__ = ["SUMMARY_KEYS", "SweepResult", "default_grid", "series_path", "sweep"]

log = get_logger("sweep")

#: Scalar metrics carried by a streaming sweep's slim summary records --
#: exactly what the sweep table, progress meter, and report-by-cache need.
SUMMARY_KEYS = (
    "total_requests",
    "load_cov_mean",
    "wear_spread",
    "migrations_total",
)


def _summarize(cfg: SimConfig, metrics: dict) -> dict:
    """Slim summary record for one config (what crosses the pool in stream mode)."""
    summary = {k: metrics[k] for k in SUMMARY_KEYS}
    summary["config"] = cfg.cache_name()
    summary["config_hash"] = config_hash(cfg)
    summary["streamed"] = True
    return summary


def default_grid(
    workloads=WORKLOADS,
    osds=(16, 20),
    policies=POLICIES,
    seeds=(12345, 54321),
    skew: float = 0.02,
    faults=("",),
    endurance=("",),
    service=("",),
    topology=("",),
    redundancy=("",),
    **overrides,
) -> list[SimConfig]:
    """The default evaluation grid: 4 workloads x {16,20} OSDs x the policy zoo x 2 seeds.

    ``faults``, ``endurance``, ``service``, ``topology``, and ``redundancy``
    are extra grid axes of fault-scenario, endurance-model, service-model,
    topology-plan, and redundancy-scheme specs (see :mod:`edm.faults.plan` /
    :mod:`edm.endurance.spec` / :mod:`edm.service.spec` /
    :mod:`edm.topology.spec` / :mod:`edm.redundancy.spec`); the default
    single empty spec on each is the healthy, unrated, unserviced, static,
    redundancy-free cluster.  Restricting ``policies`` to the paper's four
    (as :mod:`edm.bench` does) recovers the paper's 64-config grid exactly.
    """
    return [
        SimConfig(
            workload=w, num_osds=n, policy=p, seed=s, skew=skew,
            faults=f, endurance=e, service=v, topology=t, redundancy=r,
            **overrides,
        )
        for w, n, p, s, f, e, v, t, r in product(
            workloads, osds, policies, seeds, faults, endurance, service,
            topology, redundancy,
        )
    ]


def series_path(timeseries_dir: str | os.PathLike, cfg: SimConfig) -> Path:
    """Where a config's time series lands: ``<dir>/<cache_name>.npz``."""
    return Path(timeseries_dir) / f"{cfg.cache_name()}.npz"


class _FaultLogRecorder(Recorder):
    """Streams each fired fault or topology event into the worker's run log."""

    def __init__(self, writer: RunLogWriter, run_id: str, config_name: str):
        self._writer = writer
        self._run_id = run_id
        self._config_name = config_name

    def on_fault(self, state, event, replaced: int) -> None:
        self._writer.emit(
            "fault",
            run_id=self._run_id,
            config=self._config_name,
            kind=event.kind,
            osd=int(event.osd),
            epoch=int(state.epoch),
            factor=float(event.factor),
            replaced=int(replaced),
        )

    def on_topology(self, state, event, moved: int) -> None:
        self._writer.emit(
            "topology",
            run_id=self._run_id,
            config=self._config_name,
            kind=event.kind,
            epoch=int(event.epoch),
            count=int(event.count),
            osd=int(event.osd),
            moved=int(moved),
            osds_total=int(state.num_osds),
        )


@dataclass(frozen=True)
class _Task:
    """One worker unit (picklable; crosses the process boundary)."""

    cfg_dict: dict
    ts_dir: str | None
    record_every: int
    run_log: str | None
    sweep_id: str
    stream_cache_dir: str | None = None  # set => spill metrics here, return summary
    trace_events: str | None = None  # set => append span-event JSONL here
    # Parent's effective ``edm`` log level, re-applied inside the worker so
    # -v/--log-level reaches worker diagnostics under *any* multiprocessing
    # start method (spawn inherits nothing; fork inherits a handler bound to
    # the parent's stderr object, which configure() rebinds).
    log_level: int = logging.WARNING


def _run_config(task: _Task) -> dict:
    """Worker entry point (module-level for picklability).

    Writes the ``.npz`` series and the run-log records from inside the
    worker, so only the small metrics dict crosses the process boundary.
    With a run log, the worker runs under a fresh tracer and moves the
    resulting ``"timings"`` summary out of the metrics dict into the
    ``run_end`` record -- cached metrics stay timing-free and therefore
    bit-identical across cold and warm sweeps.
    """
    configure_logging(task.log_level)
    cfg = SimConfig.from_dict(task.cfg_dict)
    log.debug("worker pid %d: simulating %s", os.getpid(), cfg.cache_name())
    ts_recorder = None
    recorders: tuple[Recorder, ...] = ()
    if task.ts_dir is not None:
        ts_recorder = TimeSeriesRecorder(record_every=task.record_every)
        recorders = (ts_recorder,)

    writer = run_id = None
    tracer = NULL_TRACER
    if task.run_log is not None or task.trace_events is not None:
        tracer = Tracer(record_events=task.trace_events is not None)
    if task.run_log is not None:
        writer = RunLogWriter(task.run_log, sweep_id=task.sweep_id)
        run_id = new_id()
        writer.emit(
            "run_start",
            run_id=run_id,
            config=cfg.cache_name(),
            config_hash=config_hash(cfg),
            engine_version=ENGINE_VERSION,
        )
        if cfg.faults or cfg.endurance or cfg.topology:
            # Tag every fired fault event (scheduled or wear-out) and
            # topology event (scale-out / drain) in the run log, streamed
            # from the worker as the simulation crosses each event's epoch.
            recorders = (*recorders, _FaultLogRecorder(writer, run_id, cfg.cache_name()))

    t0 = time.perf_counter()
    metrics = simulate(cfg, recorders=recorders, tracer=tracer)
    wall_s = time.perf_counter() - t0
    if ts_recorder is not None:
        ts_recorder.series.save_npz(series_path(task.ts_dir, cfg))

    # Any worker-side tracer strips its timings from the metrics before they
    # are cached or returned: cached metrics stay timing-free and therefore
    # bit-identical across traced, logged, and plain sweeps.
    timings = metrics.pop("timings", {}) if tracer.enabled else {}
    if task.trace_events is not None:
        write_span_events(tracer, task.trace_events, label=cfg.cache_name())
    if writer is not None:
        if cfg.service:
            # One service record per serviced run: the tail-latency numbers
            # an operator would alert on, queryable without re-loading the
            # metrics pickle.
            writer.emit(
                "service",
                run_id=run_id,
                config=cfg.cache_name(),
                lat_p50=float(metrics["service_lat_p50"]),
                lat_p99=float(metrics["service_lat_p99"]),
                lat_p999=float(metrics["service_lat_p999"]),
                requests=int(metrics["service_requests_total"]),
                dropped=int(metrics["service_dropped_total"]),
            )
        writer.emit(
            "run_end",
            run_id=run_id,
            config=cfg.cache_name(),
            config_hash=config_hash(cfg),
            engine_version=ENGINE_VERSION,
            wall_s=wall_s,
            total_requests=metrics["total_requests"],
            requests_per_sec=metrics["total_requests"] / wall_s if wall_s > 0 else 0.0,
            timings=timings,
        )
    if task.stream_cache_dir is not None:
        # Spill the full (timing-free) metrics into the shared cache from
        # inside the worker and send only a slim summary back to the parent.
        ResultCache(task.stream_cache_dir).store(cfg, metrics)
        return _summarize(cfg, metrics)
    return metrics


@dataclass
class SweepResult:
    """Completed sweep: one record per input config, in input order.

    :meth:`iter_results` is the one access path that always yields *full*
    metrics dicts, streamed or not -- new code should use it exclusively.
    ``records`` holds what actually crossed the pool: full metrics dicts in
    a normal sweep, slim summaries (:data:`SUMMARY_KEYS` plus identity
    fields) in a streaming sweep, where the full metrics live only in the
    result cache.  The legacy ``.results`` property still returns the full
    dicts for in-memory sweeps but *raises* on a streamed one -- silently
    handing summaries to code expecting full metrics caused exactly the
    kind of KeyError-at-a-distance this API exists to prevent.
    """

    records: list[dict]
    cache_hits: int
    cache_misses: int
    cache_invalidated: int
    simulated: int
    timings: dict | None = None  # parent-side sweep.* span summary (None untraced)
    streamed: bool = False
    configs: tuple[SimConfig, ...] = ()  # input grid (set when streamed)
    cache_dir: str | None = None  # where streamed full metrics live

    def __post_init__(self) -> None:
        bad = [i for i, r in enumerate(self.records) if not isinstance(r, dict)]
        if bad:
            raise TypeError(
                f"SweepResult.records must be complete metrics dicts; "
                f"non-dict entries at indices {bad[:8]}"
            )

    @property
    def results(self) -> list[dict]:
        """Full metrics dicts of an in-memory sweep (legacy accessor).

        Raises on a streamed sweep, whose records are slim summaries --
        use :meth:`iter_results`, which yields full metrics either way.
        """
        if self.streamed:
            raise RuntimeError(
                "SweepResult.results is unavailable on a streamed sweep: "
                "records hold slim summaries, not full metrics.  Use "
                "iter_results() to lazily load full metrics from the cache "
                "(or read .records for the summaries themselves)."
            )
        return self.records

    @property
    def total_requests(self) -> int:
        return sum(r["total_requests"] for r in self.records)

    def iter_results(self):
        """Yield one *full* metrics dict per input config, in input order.

        For a normal sweep this is just ``iter(results)``.  For a streaming
        sweep each metrics dict is loaded from the cache on demand and
        dropped before the next is read, so walking a huge grid keeps
        memory bounded to a single config's metrics.
        """
        if not self.streamed:
            yield from self.records
            return
        cache = ResultCache(self.cache_dir)
        for cfg in self.configs:
            metrics = cache.load(cfg)
            if metrics is None:
                raise RuntimeError(
                    f"streamed sweep result for {cfg.cache_name()} missing from "
                    f"cache {self.cache_dir} (evicted or engine version changed?)"
                )
            yield metrics


def sweep(
    configs: list[SimConfig],
    cache_dir=DEFAULT_CACHE_DIR,
    workers: int | None = None,
    force: bool = False,
    use_cache: bool = True,
    timeseries_dir: str | os.PathLike | None = None,
    record_every: int = 1,
    run_log: str | os.PathLike | None = None,
    progress: bool = False,
    tracer: Tracer | None = None,
    stream: bool = False,
    trace_events: str | os.PathLike | None = None,
) -> SweepResult:
    """Run every config, returning results in the order given.

    ``force=True`` re-simulates even on a cache hit (and refreshes the cache).
    ``workers`` <= 1 runs inline with no pool; the default is the CPU count.
    ``timeseries_dir`` additionally writes one ``.npz`` per config (sampled
    every ``record_every`` epochs), re-simulating configs whose series file
    is missing even when their metrics are cached.
    ``run_log`` appends JSONL observability records (see module docstring).
    ``progress=True`` renders a live done/total + ETA + req/s line on stderr.
    ``tracer`` times the parent-side stages as ``sweep.*`` spans; a tracer is
    created implicitly when ``run_log`` is set so the ``sweep_end`` record
    always carries stage timings.  The summary lands on ``SweepResult.timings``.
    ``stream=True`` keeps parent memory independent of grid size: workers
    spill full metrics into the cache and return slim summaries (see module
    docstring); requires ``use_cache``.
    ``trace_events`` appends every span *occurrence* -- parent sweep stages
    and worker simulate phases alike -- as JSONL to one file, convertible to
    a Chrome/Perfetto timeline with ``edm trace export`` (see
    :mod:`edm.obs.trace_export`).  Note cached configs never re-simulate, so
    a warm sweep's timeline shows only the parent stages.
    """
    if stream and not use_cache:
        raise ValueError("stream=True requires use_cache=True (results live in the cache)")
    if tracer is not None:
        tr = tracer
    elif trace_events is not None:
        tr = Tracer(record_events=True)
    elif run_log is not None:
        tr = Tracer()
    else:
        tr = NULL_TRACER
    sweep_id = new_id()
    writer = RunLogWriter(run_log, sweep_id=sweep_id) if run_log is not None else None
    t_start = time.perf_counter()

    cache = ResultCache(cache_dir) if use_cache else None
    ts_dir = Path(timeseries_dir) if timeseries_dir is not None else None
    if ts_dir is not None:
        ts_dir.mkdir(parents=True, exist_ok=True)
    slots: list[dict | None] = [None] * len(configs)
    pending: list[int] = []

    with tr.span("sweep.cache_probe"):
        for i, cfg in enumerate(configs):
            have_series = ts_dir is None or series_path(ts_dir, cfg).exists()
            if cache is not None and not force and have_series:
                hit = cache.load(cfg)
                if hit is not None:
                    # Stream mode keeps only the summary; the full metrics
                    # stay on disk and are dropped as soon as summarized.
                    slots[i] = _summarize(cfg, hit) if stream else hit
                    continue
            pending.append(i)

    if writer is not None:
        writer.emit("sweep_start", configs=len(configs), pending=len(pending))
    log.info(
        "sweep %s: %d configs, %d cached, %d to simulate",
        sweep_id, len(configs), len(configs) - len(pending), len(pending),
    )

    if workers is None:
        workers = os.cpu_count() or 1
    workers = max(1, min(workers, len(pending) or 1))

    meter = ProgressLine(total=len(pending), enabled=progress)
    first_error: BaseException | None = None

    def _land(i: int, metrics: dict) -> None:
        slots[i] = metrics
        if cache is not None and not stream:
            # In stream mode the worker already stored the full metrics;
            # what lands here is only the slim summary.
            cache.store(configs[i], metrics)
        meter.advance(metrics.get("total_requests", 0))

    if pending:
        ts_dir_arg = str(ts_dir) if ts_dir is not None else None
        run_log_arg = str(run_log) if run_log is not None else None
        stream_dir = str(cache_dir) if stream else None
        trace_arg = str(trace_events) if trace_events is not None else None
        level = logging.getLogger(ROOT_LOGGER_NAME).getEffectiveLevel()
        tasks = [
            _Task(
                configs[i].to_dict(), ts_dir_arg, record_every, run_log_arg,
                sweep_id, stream_dir, trace_arg, level,
            )
            for i in pending
        ]
        try:
            if workers == 1:
                for i, task in zip(pending, tasks):
                    _land(i, _run_config(task))
            else:
                with tr.span("sweep.pool_startup"):
                    pool = ProcessPoolExecutor(max_workers=workers)
                    futures = {
                        pool.submit(_run_config, task): i for task, i in zip(tasks, pending)
                    }
                with tr.span("sweep.collect"), pool:
                    for fut in as_completed(futures):
                        i = futures[fut]
                        try:
                            _land(i, fut.result())
                        except BaseException as e:  # re-raised after the drain
                            if first_error is None:
                                first_error = e
                            log.warning("config %s failed: %s", configs[i].cache_name(), e)
        finally:
            meter.close()
        if first_error is not None:
            raise first_error

    result = SweepResult(
        records=slots,  # type: ignore[arg-type]  # __post_init__ proves completeness
        cache_hits=cache.hits if cache else 0,
        cache_misses=cache.misses if cache else len(pending),
        cache_invalidated=cache.invalidated if cache else 0,
        simulated=len(pending),
        timings=tr.summary() if tr.enabled else None,
        streamed=stream,
        configs=tuple(configs) if stream else (),
        cache_dir=str(cache_dir) if stream else None,
    )
    if writer is not None:
        writer.emit(
            "sweep_end",
            wall_s=time.perf_counter() - t_start,
            cache_hits=result.cache_hits,
            cache_misses=result.cache_misses,
            cache_invalidated=result.cache_invalidated,
            simulated=result.simulated,
            timings=result.timings or {},
        )
    if trace_events is not None:
        write_span_events(tr, trace_events, label="sweep")
    return result
