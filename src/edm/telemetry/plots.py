"""Render the paper's evaluation figures from saved time series.

Three figure families, one file per (workload, cluster-size) group:

  * load-balance degree (load CoV) over time, one line per policy
  * final per-OSD cumulative wear, grouped bars per policy
  * migration cost per policy (MB moved), bars across workloads

matplotlib is an optional extra: ``have_matplotlib()`` probes for it without
importing, and the CLI skips plotting gracefully when it is absent.

Color is assigned by entity, never by position: each policy owns a fixed
categorical slot (CVD-validated palette, adjacent-pair safe), so filtering
policies out of a sweep never repaints the survivors.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import numpy as np

from edm.telemetry.timeseries import TimeSeries

# Fixed categorical slots (validated palette, light mode).  Order here is the
# slot order; a policy keeps its color no matter which subset is plotted.
POLICY_COLORS = {
    "baseline": "#2a78d6",  # blue
    "cdf": "#eb6834",       # orange
    "hdf": "#1baf7a",       # aqua
    "cmt": "#eda100",       # yellow
}
_EXTRA_SLOTS = ("#e87ba4", "#008300", "#4a3aa7", "#e34948")  # magenta, green, violet, red
POLICY_ORDER = tuple(POLICY_COLORS)

_GRID_COLOR = "#e3e2de"
_TEXT_SECONDARY = "#52514e"


def have_matplotlib() -> bool:
    return importlib.util.find_spec("matplotlib") is not None


def _pyplot():
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    return plt


def policy_color(policy: str) -> str:
    """Stable color for a policy; unknown policies draw from the spare slots."""
    if policy in POLICY_COLORS:
        return POLICY_COLORS[policy]
    return _EXTRA_SLOTS[sum(policy.encode()) % len(_EXTRA_SLOTS)]


def _policy_sort_key(policy: str):
    try:
        return (0, POLICY_ORDER.index(policy))
    except ValueError:
        return (1, policy)


def _style(ax) -> None:
    """Recessive axes: no top/right spines, light y-grid under the marks."""
    ax.spines["top"].set_visible(False)
    ax.spines["right"].set_visible(False)
    ax.grid(axis="y", color=_GRID_COLOR, linewidth=0.8)
    ax.set_axisbelow(True)
    ax.tick_params(colors=_TEXT_SECONDARY, labelsize=9)


def group_series(series_list: list[TimeSeries]) -> dict[tuple[str, int], list[TimeSeries]]:
    """Group by (workload, num_osds) -- the axes of one paper figure."""
    groups: dict[tuple[str, int], list[TimeSeries]] = {}
    for s in series_list:
        key = (str(s.meta["workload"]), int(s.meta["num_osds"]))
        groups.setdefault(key, []).append(s)
    return groups


def _by_policy(series_list: list[TimeSeries]) -> dict[str, list[TimeSeries]]:
    out: dict[str, list[TimeSeries]] = {}
    for s in series_list:
        out.setdefault(str(s.meta["policy"]), []).append(s)
    return dict(sorted(out.items(), key=lambda kv: _policy_sort_key(kv[0])))


def plot_load_cov(series_list: list[TimeSeries], out_path: Path, title: str) -> Path:
    """Load-balance degree over time: one line per policy (seeds overlaid)."""
    plt = _pyplot()
    fig, ax = plt.subplots(figsize=(6.4, 3.6))
    for policy, runs in _by_policy(series_list).items():
        color = policy_color(policy)
        for k, s in enumerate(runs):
            ax.plot(
                s.epoch,
                s.load_cov,
                color=color,
                linewidth=2,
                alpha=1.0 if k == 0 else 0.45,
                label=policy if k == 0 else None,
            )
    _style(ax)
    ax.set_xlabel("epoch", color=_TEXT_SECONDARY)
    ax.set_ylabel("load CoV (std/mean)", color=_TEXT_SECONDARY)
    ax.set_title(title, fontsize=11, loc="left")
    ax.legend(frameon=False, fontsize=9)
    fig.tight_layout()
    fig.savefig(out_path, dpi=150)
    plt.close(fig)
    return out_path


def plot_final_wear(series_list: list[TimeSeries], out_path: Path, title: str) -> Path:
    """Final cumulative per-OSD wear: grouped bars, one group per OSD."""
    plt = _pyplot()
    by_policy = _by_policy(series_list)
    num_osds = series_list[0].num_osds
    fig, ax = plt.subplots(figsize=(7.2, 3.6))
    x = np.arange(num_osds, dtype=np.float64)
    n_pol = max(len(by_policy), 1)
    width = 0.8 / n_pol
    for j, (policy, runs) in enumerate(by_policy.items()):
        final_wear = np.mean([s.wear[-1] for s in runs], axis=0)
        ax.bar(
            x + (j - (n_pol - 1) / 2) * width,
            final_wear,
            width=width * 0.9,  # thin 2px-style gap between adjacent bars
            color=policy_color(policy),
            label=policy,
        )
    _style(ax)
    ax.set_xticks(x)
    ax.set_xlabel("OSD", color=_TEXT_SECONDARY)
    ax.set_ylabel("cumulative wear (erase units)", color=_TEXT_SECONDARY)
    ax.set_title(title, fontsize=11, loc="left")
    ax.legend(frameon=False, fontsize=9)
    fig.tight_layout()
    fig.savefig(out_path, dpi=150)
    plt.close(fig)
    return out_path


def migration_cost_mb(series: TimeSeries) -> float:
    """Total data moved, reconstructed from the series itself."""
    return float(series.migrations.sum()) * float(series.meta.get("chunk_size_mb", 0.0))


def plot_migration_cost(series_list: list[TimeSeries], out_path: Path, title: str) -> Path:
    """Migration cost per policy, grouped by workload (seed-averaged)."""
    plt = _pyplot()
    workloads = sorted({str(s.meta["workload"]) for s in series_list})
    by_policy = _by_policy(series_list)
    fig, ax = plt.subplots(figsize=(6.4, 3.6))
    x = np.arange(len(workloads), dtype=np.float64)
    n_pol = max(len(by_policy), 1)
    width = 0.8 / n_pol
    for j, (policy, runs) in enumerate(by_policy.items()):
        heights = []
        for w in workloads:
            costs = [migration_cost_mb(s) for s in runs if s.meta["workload"] == w]
            heights.append(float(np.mean(costs)) if costs else 0.0)
        ax.bar(
            x + (j - (n_pol - 1) / 2) * width,
            heights,
            width=width * 0.9,
            color=policy_color(policy),
            label=policy,
        )
    _style(ax)
    ax.set_xticks(x)
    ax.set_xticklabels(workloads)
    ax.set_xlabel("workload", color=_TEXT_SECONDARY)
    ax.set_ylabel("migration cost (MB)", color=_TEXT_SECONDARY)
    ax.set_title(title, fontsize=11, loc="left")
    ax.legend(frameon=False, fontsize=9)
    fig.tight_layout()
    fig.savefig(out_path, dpi=150)
    plt.close(fig)
    return out_path


def render_figures(
    series_list: list[TimeSeries], out_dir: str | Path, fmt: str = "png"
) -> list[Path]:
    """Render every figure the loaded series support; returns written paths."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    groups = group_series(series_list)
    for (workload, num_osds), runs in sorted(groups.items()):
        stem = f"{workload}-{num_osds}osd"
        written.append(
            plot_load_cov(
                runs,
                out_dir / f"load_cov_{stem}.{fmt}",
                f"Load-balance degree over time — {stem}",
            )
        )
        written.append(
            plot_final_wear(
                runs,
                out_dir / f"wear_final_{stem}.{fmt}",
                f"Final per-OSD wear — {stem}",
            )
        )
    for num_osds in sorted({int(s.meta["num_osds"]) for s in series_list}):
        subset = [s for s in series_list if int(s.meta["num_osds"]) == num_osds]
        written.append(
            plot_migration_cost(
                subset,
                out_dir / f"migration_cost_{num_osds}osd.{fmt}",
                f"Migration cost per policy — {num_osds} OSDs",
            )
        )
    return written


def load_series_dir(ts_dir: str | Path) -> list[TimeSeries]:
    """Load every ``.npz`` series in a directory (sorted for determinism)."""
    return [TimeSeries.load_npz(p) for p in sorted(Path(ts_dir).glob("*.npz"))]
