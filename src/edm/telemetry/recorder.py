"""Observer hooks for the simulation engine.

``simulate(cfg, recorders=...)`` drives every recorder through the same
four-call lifecycle:

    on_run_start(cfg, state)        once, after state init, before epoch 0
    on_topology(state, event, moved)
                                    when a topology event fires (scale-out /
                                    drain), after the add's growth or the
                                    drain's evacuation + retire, before that
                                    epoch's fault step and routing
    on_fault(state, event, replaced)
                                    when a fault event fires (failure /
                                    slow-disk / hiccup), after any failure
                                    re-placement, before that epoch's routing
    on_decision(state, decision)    per destination pick, when *any* recorder
                                    overrides this hook (opt-in: overriding it
                                    is what switches the engine onto the
                                    explained selection path; see
                                    edm.obs.decisions)
    on_epoch(state, load, stats)    every epoch, after routing/wear/EMA updates
                                    and *before* that epoch's migration round
    on_migration(state, applied, stats)
                                    after each migration interval fires
    finalize(state, final_load)     once, after the last epoch

The engine's scalar metrics dict is produced by a recorder too
(:class:`edm.engine.metrics.MetricsAccumulator`), so telemetry, fault
injection, and future observers all plug in through one surface without
touching the hot path.

Hot-path contract: ``load`` and ``state`` arrays are the engine's live
buffers, not copies.  A recorder must copy anything it wants to keep
(``TimeSeriesRecorder`` writes into preallocated buffers for this reason)
and must never mutate them.  ``stats`` is a single :class:`EpochStats`
instance reused across epochs -- read it during the call, don't store it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    import numpy as np

    from edm.config import SimConfig
    from edm.engine.state import ClusterState
    from edm.faults import FaultEvent
    from edm.obs.decisions import Decision
    from edm.topology import TopologyEvent


@dataclass
class EpochStats:
    """Mutable per-epoch scalars, updated in place by the engine each epoch."""

    epoch: int = 0
    requests: int = 0  # total requests routed this epoch
    writes: int = 0    # write requests among them
    # Service-model scalars, filled by ServiceRuntime.step when a service
    # spec is configured; all 0.0 otherwise (requests have no duration).
    lat_mean: float = 0.0          # mean finite latency of this epoch's accepted requests
    queue_depth_mean: float = 0.0  # mean per-OSD queue depth after service
    queue_depth_cov: float = 0.0   # CoV of queue depth across OSDs


class Recorder:
    """No-op base class defining the observer protocol.

    Subclass and override only the hooks you need; the engine calls every
    hook on every recorder, so the defaults must stay cheap no-ops.
    """

    def on_run_start(self, cfg: "SimConfig", state: "ClusterState") -> None:
        """Called once before the first epoch; allocate buffers here."""

    def on_topology(self, state: "ClusterState", event: "TopologyEvent", moved: int) -> None:
        """Called when a topology event fires; ``moved`` counts chunks
        evacuated off a drained OSD (0 for scale-out events).  For adds the
        state has already grown -- the newest ``event.count`` ids are the
        cold drives; for drains the target is already retired."""

    def on_fault(self, state: "ClusterState", event: "FaultEvent", replaced: int) -> None:
        """Called when a fault event fires; ``replaced`` counts chunks
        re-placed off a failed OSD (0 for slow-disk / hiccup events)."""

    def on_decision(self, state: "ClusterState", decision: "Decision") -> None:
        """Called per destination pick with its score decomposition.

        Opt-in: the engine detects recorders that *override* this hook and
        only then routes selection and re-placement through the explained
        (bit-identical) path; runs without such a recorder never pay for
        decision capture.  See :mod:`edm.obs.decisions`.
        """

    def on_epoch(self, state: "ClusterState", load: "np.ndarray", stats: EpochStats) -> None:
        """Called every epoch with that epoch's per-OSD load vector."""

    def on_migration(self, state: "ClusterState", applied: int, stats: EpochStats) -> None:
        """Called after a migration interval applies ``applied`` moves."""

    def finalize(self, state: "ClusterState", final_load: "np.ndarray") -> Any:
        """Called once after the last epoch; return this recorder's product."""
        return None
