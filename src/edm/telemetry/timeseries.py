"""Per-epoch time-series capture and serialization.

``TimeSeriesRecorder`` accumulates the paper's longitudinal evaluation
curves -- per-OSD load, load CoV, peak ratio, cumulative per-OSD wear, wear
CoV, migrations per interval, the alive-masked remaining rated lifetime
(min/mean; ``+inf`` without an endurance model), and the per-epoch service
scalars (queue depth mean/CoV, mean latency; all 0.0 without a service
model) -- into preallocated NumPy buffers, sampling
every ``record_every`` epochs.  ``finalize`` always captures the end-of-run
state (after the last migration round), so the final row matches the scalar
metrics dict exactly and ``migrations.sum()`` equals ``migrations_total``.

The product is a :class:`TimeSeries`: immutable arrays plus a JSON-able
``meta`` dict carrying the config identity (``cache_name``/``config_hash``),
with ``.npz`` (compact, lossless), JSON, and CSV exporters.
"""

from __future__ import annotations

import csv
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from edm.config import SimConfig, config_hash
from edm.telemetry.recorder import EpochStats, Recorder
from edm.topology.spec import TopologyPlan

if TYPE_CHECKING:
    from edm.engine.state import ClusterState

# Bump when the TimeSeries array set or meta layout changes.
# 2: added per-sample ``alive`` (surviving-OSD count) and ``replacements``
#    (failure re-placement moves since the previous sample).
# 3: added the lifetime columns ``remaining_life_min`` / ``remaining_life_mean``
#    (alive-masked remaining rated life; ``+inf`` without an endurance model).
# 4: added the service columns ``queue_depth_mean`` / ``queue_depth_cov`` /
#    ``service_lat_mean`` (all 0.0 without a service model).
# 5: added ``osds_total`` (cluster size at each sample, elastic under a
#    topology plan) and the ``topology`` meta key; per-OSD columns are sized
#    to the plan's maximum cluster width, zero-filled before a drive joins.
SERIES_FORMAT_VERSION = 5

_ARRAY_FIELDS = (
    "epoch",
    "load",
    "load_cov",
    "load_peak_ratio",
    "wear",
    "wear_cov",
    "migrations",
    "alive",
    "replacements",
    "remaining_life_min",
    "remaining_life_mean",
    "queue_depth_mean",
    "queue_depth_cov",
    "service_lat_mean",
    "osds_total",
)

# Fields the current reader tolerates missing from older files, with the
# fill value an engine of that vintage would have recorded.  A v2 ``.npz``
# (no lifetime columns -- by definition written by an engine without an
# endurance model) or a v3 one (no service columns -- written by an engine
# whose requests had no duration) therefore loads and round-trips instead
# of raising.
_V2_COMPAT_FILLS = {
    "remaining_life_min": np.inf,
    "remaining_life_mean": np.inf,
}
_V3_COMPAT_FILLS = {
    "queue_depth_mean": 0.0,
    "queue_depth_cov": 0.0,
    "service_lat_mean": 0.0,
}
_COMPAT_FILLS = {**_V2_COMPAT_FILLS, **_V3_COMPAT_FILLS}
# v4 files lack ``osds_total``; its backfill is per-file (meta["num_osds"],
# exact for any pre-v5 engine -- topologies were static), not a constant,
# so it is handled separately from _COMPAT_FILLS in load_npz.
_V4_COMPAT_FIELDS = ("osds_total",)


@dataclass(frozen=True)
class TimeSeries:
    """Sampled per-epoch series for one simulation run.

    ``T`` samples over ``N`` OSDs; ``wear`` is cumulative, ``migrations`` counts
    moves applied in the window ending at each sample (the last window extends
    to the end of the run).
    """

    meta: dict
    epoch: np.ndarray            # int64 [T], sampled epoch indices, increasing
    load: np.ndarray             # float64 [T, N], per-OSD load at each sample
    load_cov: np.ndarray         # float64 [T], std/mean of load
    load_peak_ratio: np.ndarray  # float64 [T], max/mean of load
    wear: np.ndarray             # float64 [T, N], cumulative erase-count units
    wear_cov: np.ndarray         # float64 [T], std/mean of wear
    migrations: np.ndarray       # int64 [T], moves applied since previous sample
    alive: np.ndarray            # int64 [T], surviving-OSD count at each sample
    replacements: np.ndarray     # int64 [T], failure re-placements since previous sample
    remaining_life_min: np.ndarray   # float64 [T], min remaining rated life over alive OSDs
    remaining_life_mean: np.ndarray  # float64 [T], mean remaining rated life over alive OSDs
    queue_depth_mean: np.ndarray     # float64 [T], mean per-OSD queue depth (0 without service)
    queue_depth_cov: np.ndarray      # float64 [T], CoV of queue depth across OSDs
    service_lat_mean: np.ndarray     # float64 [T], mean finite request latency per epoch
    osds_total: np.ndarray           # int64 [T], cluster size (incl. dead) at each sample

    @property
    def num_samples(self) -> int:
        return int(self.epoch.shape[0])

    @property
    def num_osds(self) -> int:
        return int(self.load.shape[1])

    def save_npz(self, path: str | os.PathLike) -> Path:
        """Write a compressed ``.npz`` atomically (temp file, then rename)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                np.savez_compressed(
                    f,
                    meta=np.asarray(json.dumps(self.meta, sort_keys=True)),
                    **{k: getattr(self, k) for k in _ARRAY_FIELDS},
                )
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise
        return path

    @classmethod
    def load_npz(cls, path: str | os.PathLike) -> "TimeSeries":
        """Load a ``.npz`` series; v2/v3 files (older column sets) still load.

        Missing v3 lifetime columns are backfilled with the values a
        pre-endurance engine would have recorded (``+inf`` remaining life)
        and missing v4 service columns with a pre-service engine's (0.0 --
        requests had no duration), so an older file round-trips through
        load -> save -> load.  A missing v5 ``osds_total`` column backfills
        from ``meta["num_osds"]`` -- exact, since pre-v5 engines only ran
        static topologies.  Files missing any *core* column are still
        rejected.
        """
        with np.load(path, allow_pickle=False) as npz:
            meta = json.loads(str(npz["meta"][()]))
            missing = [
                k for k in _ARRAY_FIELDS
                if k not in npz.files
                and k not in _COMPAT_FILLS
                and k not in _V4_COMPAT_FIELDS
            ]
            if missing:
                raise ValueError(
                    f"{path}: series written by format "
                    f"v{meta.get('format_version')} is missing {missing}; "
                    f"re-run `edm sweep --timeseries` to regenerate "
                    f"(current format v{SERIES_FORMAT_VERSION})"
                )
            arrays = {k: npz[k] for k in _ARRAY_FIELDS if k in npz.files}
            samples = int(arrays["epoch"].shape[0])
            for k, fill in _COMPAT_FILLS.items():
                if k not in arrays:
                    arrays[k] = np.full(samples, fill)
            if "osds_total" not in arrays:
                arrays["osds_total"] = np.full(
                    samples, int(meta.get("num_osds", 0)), dtype=np.int64
                )
        return cls(meta=meta, **arrays)

    def to_json_dict(self) -> dict:
        """Plain-Python dict (meta + nested lists) for JSON serialization."""
        out: dict[str, Any] = {"meta": dict(self.meta)}
        for k in _ARRAY_FIELDS:
            out[k] = getattr(self, k).tolist()
        return out

    def save_json(self, path: str | os.PathLike) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json_dict()) + "\n")
        return path

    def save_csv(self, path: str | os.PathLike) -> Path:
        """One row per sample: scalar columns, then per-OSD load/wear columns."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        n = self.num_osds
        header = (
            ["epoch", "load_cov", "load_peak_ratio", "wear_cov", "migrations",
             "alive", "replacements", "remaining_life_min", "remaining_life_mean",
             "queue_depth_mean", "queue_depth_cov", "service_lat_mean",
             "osds_total"]
            + [f"load_osd{i}" for i in range(n)]
            + [f"wear_osd{i}" for i in range(n)]
        )
        with open(path, "w", newline="") as f:
            w = csv.writer(f)
            w.writerow(header)
            for t in range(self.num_samples):
                w.writerow(
                    [
                        int(self.epoch[t]),
                        float(self.load_cov[t]),
                        float(self.load_peak_ratio[t]),
                        float(self.wear_cov[t]),
                        int(self.migrations[t]),
                        int(self.alive[t]),
                        int(self.replacements[t]),
                        float(self.remaining_life_min[t]),
                        float(self.remaining_life_mean[t]),
                        float(self.queue_depth_mean[t]),
                        float(self.queue_depth_cov[t]),
                        float(self.service_lat_mean[t]),
                        int(self.osds_total[t]),
                    ]
                    + [float(v) for v in self.load[t]]
                    + [float(v) for v in self.wear[t]]
                )
        return path


class TimeSeriesRecorder(Recorder):
    """Vectorized per-epoch series capture with downsampling.

    Samples epochs ``0, record_every, 2*record_every, ...`` plus the end-of-run
    state.  Buffers are preallocated at ``on_run_start`` (which also makes one
    instance reusable across runs), so the per-epoch cost on sampled epochs is
    a handful of slice assignments and on skipped epochs a single modulo.
    """

    def __init__(self, record_every: int = 1):
        if record_every < 1:
            raise ValueError(f"record_every must be >= 1, got {record_every}")
        self.record_every = record_every
        self.series: TimeSeries | None = None
        self._cfg: SimConfig | None = None

    def on_run_start(self, cfg: SimConfig, state: "ClusterState") -> None:
        self._cfg = cfg
        self.series = None
        # One slot per sampled epoch plus one for the end-of-run snapshot.
        cap = (cfg.epochs + self.record_every - 1) // self.record_every + 1
        # Per-OSD buffers are sized to the topology plan's maximum cluster
        # width up front (== num_osds for static configs), so scale-out
        # never reallocates mid-run; columns of not-yet-added drives stay 0.
        n = TopologyPlan.parse(cfg.topology, num_osds=cfg.num_osds).max_osds(
            cfg.num_osds
        )
        self._epoch = np.zeros(cap, dtype=np.int64)
        self._load = np.zeros((cap, n))
        self._load_cov = np.zeros(cap)
        self._peak = np.zeros(cap)
        self._wear = np.zeros((cap, n))
        self._wear_cov = np.zeros(cap)
        self._migrations = np.zeros(cap, dtype=np.int64)
        self._alive = np.zeros(cap, dtype=np.int64)
        self._replacements = np.zeros(cap, dtype=np.int64)
        self._life_min = np.zeros(cap)
        self._life_mean = np.zeros(cap)
        self._qd_mean = np.zeros(cap)
        self._qd_cov = np.zeros(cap)
        self._lat_mean = np.zeros(cap)
        self._osds_total = np.zeros(cap, dtype=np.int64)
        self._i = 0
        self._window = 0       # moves applied since the last recorded sample
        self._repl_window = 0  # failure re-placements since the last sample
        # Latest per-epoch service scalars, tracked every epoch (not just
        # sampled ones) so the end-of-run row finalize() appends carries the
        # final epoch's values even when sampling skipped it.
        self._svc_last = (0.0, 0.0, 0.0)

    def on_epoch(self, state: "ClusterState", load: np.ndarray, stats: EpochStats) -> None:
        self._svc_last = (stats.queue_depth_mean, stats.queue_depth_cov, stats.lat_mean)
        if stats.epoch % self.record_every:
            return
        self._record(stats.epoch, load, state)

    def on_migration(self, state: "ClusterState", applied: int, stats: EpochStats) -> None:
        self._window += applied

    def on_fault(self, state: "ClusterState", event, replaced: int) -> None:
        self._repl_window += replaced

    def finalize(self, state: "ClusterState", final_load: np.ndarray) -> TimeSeries:
        cfg = self._cfg
        if cfg is None:
            raise RuntimeError("finalize() before on_run_start(); pass the recorder to simulate()")
        last = cfg.epochs - 1
        if self._i and self._epoch[self._i - 1] == last:
            # The last sample already landed on the final epoch, but migrations
            # (and their wear) from that epoch's interval fired *after* it was
            # recorded -- fold them in so the final row is truly end-of-run.
            i = self._i - 1
            self._migrations[i] += self._window
            self._window = 0
            self._replacements[i] += self._repl_window
            self._repl_window = 0
            self._wear[i, : state.osd_wear.size] = state.osd_wear
            wm = state.osd_wear.mean()
            self._wear_cov[i] = float(state.osd_wear.std() / wm) if wm > 0 else 0.0
            self._record_lifetime(i, state)
        else:
            self._record(last, final_load, state)
        i = self._i
        self.series = TimeSeries(
            meta={
                "format_version": SERIES_FORMAT_VERSION,
                "name": cfg.cache_name(),
                "config_hash": config_hash(cfg),
                "workload": cfg.workload,
                "policy": cfg.policy,
                "num_osds": cfg.num_osds,
                "skew": cfg.skew,
                "seed": cfg.seed,
                "epochs": cfg.epochs,
                "record_every": self.record_every,
                "chunk_size_mb": cfg.chunk_size_mb,
                "faults": cfg.faults,
                "endurance": cfg.endurance,
                "service": cfg.service,
                "topology": cfg.topology,
            },
            epoch=self._epoch[:i].copy(),
            load=self._load[:i].copy(),
            load_cov=self._load_cov[:i].copy(),
            load_peak_ratio=self._peak[:i].copy(),
            wear=self._wear[:i].copy(),
            wear_cov=self._wear_cov[:i].copy(),
            migrations=self._migrations[:i].copy(),
            alive=self._alive[:i].copy(),
            replacements=self._replacements[:i].copy(),
            remaining_life_min=self._life_min[:i].copy(),
            remaining_life_mean=self._life_mean[:i].copy(),
            queue_depth_mean=self._qd_mean[:i].copy(),
            queue_depth_cov=self._qd_cov[:i].copy(),
            service_lat_mean=self._lat_mean[:i].copy(),
            osds_total=self._osds_total[:i].copy(),
        )
        return self.series

    def _record_lifetime(self, i: int, state: "ClusterState") -> None:
        rem = state.remaining_life()[state.osd_alive]
        self._life_min[i] = rem.min() if rem.size else 0.0
        self._life_mean[i] = rem.mean() if rem.size else 0.0

    def _record(self, epoch: int, load: np.ndarray, state: "ClusterState") -> None:
        wear = state.osd_wear
        i = self._i
        self._epoch[i] = epoch
        # Partial-width assignment: under an elastic topology the live
        # arrays are narrower than the plan-width buffers until the last
        # scale-out fires (a full-width assignment when sizes match).
        self._load[i, : load.size] = load
        mean = load.mean()
        if mean > 0:
            self._load_cov[i] = load.std() / mean
            self._peak[i] = load.max() / mean
        self._wear[i, : wear.size] = wear
        wm = wear.mean()
        if wm > 0:
            self._wear_cov[i] = wear.std() / wm
        self._migrations[i] = self._window
        self._window = 0
        self._alive[i] = int(state.osd_alive.sum())
        self._replacements[i] = self._repl_window
        self._repl_window = 0
        self._record_lifetime(i, state)
        self._qd_mean[i], self._qd_cov[i], self._lat_mean[i] = self._svc_last
        self._osds_total[i] = state.num_osds
        self._i = i + 1
