"""OpenMetrics text exposition for run metrics.

Renders a run's scalar metrics dict (what :func:`edm.engine.core.simulate`
returns) -- and, via :class:`MetricsSnapshotRecorder`, live per-epoch
gauges while a run is in flight -- in the OpenMetrics text format
(https://prometheus.io/docs/specs/om/open_metrics_spec/): ``# TYPE`` /
``# HELP`` headers per family, counter samples suffixed ``_total``,
``NaN`` / ``+Inf`` literals, escaped label values, ``# EOF`` terminator.
Anything that scrapes Prometheus exposition ingests the output unchanged,
so a simulated cluster's load/wear/endurance numbers drop straight into
existing dashboards: ``edm run --metrics-out metrics.prom``.

This is a snapshot *exporter*, not an HTTP endpoint -- the simulator is a
batch process, so the file (atomically replaced per write) plays the role
of the scrape target, node-exporter-textfile style.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from pathlib import Path

from edm.telemetry.recorder import Recorder

#: Metric family types this exporter emits.
TYPES = ("gauge", "counter", "info")


def _escape(value: str) -> str:
    """Escape a label value or help string per the exposition format."""
    return value.replace("\\", "\\\\").replace("\"", "\\\"").replace("\n", "\\n")


def format_value(value) -> str:
    """One sample value as OpenMetrics text (NaN / +Inf / -Inf literals)."""
    v = float(value)
    if math.isnan(v):
        return "NaN"
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if v.is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


@dataclass
class MetricFamily:
    """One metric family: a name, a type, help text, and its samples."""

    name: str
    type: str
    help: str
    samples: list[tuple[dict, float]] = field(default_factory=list)


class MetricsRegistry:
    """An ordered set of metric families rendered as OpenMetrics text.

    ``gauge`` / ``counter`` / ``info`` declare (or fetch) a family;
    :meth:`sample` appends one labeled value; :meth:`render` emits the whole
    exposition.  Families render in declaration order, samples in insertion
    order -- deterministic output for golden-style tests.
    """

    def __init__(self, prefix: str = "edm"):
        self.prefix = prefix
        self._families: dict[str, MetricFamily] = {}

    def _declare(self, name: str, type_: str, help_: str) -> MetricFamily:
        full = f"{self.prefix}_{name}" if self.prefix else name
        fam = self._families.get(full)
        if fam is None:
            fam = MetricFamily(full, type_, help_)
            self._families[full] = fam
        elif fam.type != type_:
            raise ValueError(
                f"metric family {full!r} already declared as {fam.type}, not {type_}"
            )
        return fam

    def gauge(self, name: str, help_: str) -> str:
        self._declare(name, "gauge", help_)
        return name

    def counter(self, name: str, help_: str) -> str:
        self._declare(name, "counter", help_)
        return name

    def info(self, name: str, help_: str) -> str:
        self._declare(name, "info", help_)
        return name

    def sample(self, name: str, value, labels: dict | None = None) -> None:
        """Append one sample to an already-declared family."""
        full = f"{self.prefix}_{name}" if self.prefix else name
        fam = self._families.get(full)
        if fam is None:
            raise KeyError(f"metric family {full!r} not declared")
        fam.samples.append((dict(labels or {}), float(value)))

    def set(self, name: str, value, labels: dict | None = None) -> None:
        """Replace the sample with the same labels (live-gauge update)."""
        full = f"{self.prefix}_{name}" if self.prefix else name
        fam = self._families.get(full)
        if fam is None:
            raise KeyError(f"metric family {full!r} not declared")
        key = dict(labels or {})
        for i, (lbl, _) in enumerate(fam.samples):
            if lbl == key:
                fam.samples[i] = (key, float(value))
                return
        fam.samples.append((key, float(value)))

    def render(self) -> str:
        """The full OpenMetrics exposition, ``# EOF``-terminated."""
        lines: list[str] = []
        for fam in self._families.values():
            lines.append(f"# TYPE {fam.name} {fam.type}")
            if fam.help:
                lines.append(f"# HELP {fam.name} {_escape(fam.help)}")
            suffix = {"counter": "_total", "info": "_info"}.get(fam.type, "")
            for labels, value in fam.samples:
                label_str = ""
                if labels:
                    inner = ",".join(
                        f'{k}="{_escape(str(v))}"' for k, v in labels.items()
                    )
                    label_str = "{" + inner + "}"
                lines.append(f"{fam.name}{suffix}{label_str} {format_value(value)}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    def write(self, path: str | os.PathLike) -> None:
        """Atomically replace ``path`` with the rendered exposition."""
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        tmp = out.with_name(out.name + ".tmp")
        tmp.write_text(self.render(), encoding="utf-8")
        os.replace(tmp, out)


#: metrics-dict key -> (family name, type, help).  Keys absent from a run's
#: metrics (fault/endurance/service blocks are conditional) are skipped.
_SCALAR_FAMILIES = {
    "epochs": ("epochs", "counter", "Epochs simulated."),
    "total_requests": ("requests", "counter", "Requests routed over the run."),
    "total_writes": ("writes", "counter", "Write requests among them."),
    "load_cov_mean": (
        "load_cov_mean", "gauge",
        "Per-epoch load coefficient of variation, averaged over epochs.",
    ),
    "load_peak_ratio_mean": (
        "load_peak_ratio_mean", "gauge", "Mean per-epoch max/mean load ratio.",
    ),
    "load_cov_final": ("load_cov_final", "gauge", "Load CoV of the final epoch."),
    "wear_mean": ("wear_mean", "gauge", "Mean erase count across SSDs."),
    "wear_max": ("wear_max", "gauge", "Max erase count across SSDs."),
    "wear_min": ("wear_min", "gauge", "Min erase count across SSDs."),
    "wear_spread": ("wear_spread", "gauge", "Max - min erase count across SSDs."),
    "wear_cov": ("wear_cov", "gauge", "Erase-count CoV across SSDs."),
    "migrations_total": ("migrations", "counter", "Chunks migrated over the run."),
    "migration_cost_mb": (
        "migration_cost_megabytes", "gauge", "Data moved by migration, MB.",
    ),
    # Degraded-mode block (faulted configs only).
    "fault_failures": ("fault_failures", "counter", "OSD failure events fired."),
    "fault_slow_events": ("fault_slow_events", "counter", "Slow-disk events fired."),
    "fault_hiccups": ("fault_hiccups", "counter", "Hiccup events fired."),
    "replacement_moves_total": (
        "replacement_moves", "counter", "Chunks re-placed off failed OSDs.",
    ),
    "fault_recovery_epochs": (
        "fault_recovery_epochs", "gauge",
        "Epochs until survivor load CoV recovered (-1: never).",
    ),
    "load_cov_alive_mean": (
        "load_cov_alive_mean", "gauge", "Load CoV over surviving OSDs, mean.",
    ),
    "osds_alive_final": ("osds_alive", "gauge", "OSDs alive at end of run."),
    # Endurance block (rated configs only).
    "remaining_life_min": (
        "remaining_life_min", "gauge", "Min remaining rated P/E cycles, alive OSDs.",
    ),
    "remaining_life_mean": (
        "remaining_life_mean", "gauge", "Mean remaining rated P/E cycles, alive OSDs.",
    ),
    "remaining_life_cov": (
        "remaining_life_cov", "gauge", "Remaining-life CoV across alive OSDs.",
    ),
    "predicted_first_wearout_epoch": (
        "predicted_first_wearout_epoch", "gauge",
        "Predicted epoch of the next wear-out (-1: none in sight).",
    ),
    "wearouts_total": ("wearouts", "counter", "OSDs worn out during the run."),
    "wearout_replacements_total": (
        "wearout_replacements", "counter", "Chunks re-placed off worn-out OSDs.",
    ),
    "first_wearout_epoch": (
        "first_wearout_epoch", "gauge", "Epoch of the first wear-out (-1: none).",
    ),
    # Service block (serviced configs only).
    "service_lat_p50": ("service_lat_p50_seconds", "gauge", "Request latency p50."),
    "service_lat_p99": ("service_lat_p99_seconds", "gauge", "Request latency p99."),
    "service_lat_p999": ("service_lat_p999_seconds", "gauge", "Request latency p99.9."),
    "service_requests_total": (
        "service_requests", "counter", "Requests offered to the service model.",
    ),
    "service_dropped_total": (
        "service_dropped", "counter", "Requests dropped by bounded queues.",
    ),
    # Redundancy block (redundant configs only).
    "reconstruction_chunks_total": (
        "reconstruction_chunks", "counter", "Chunks rebuilt from group survivors.",
    ),
    "reconstruction_reads_total": (
        "reconstruction_reads", "counter", "Surviving-chunk reads for rebuilds.",
    ),
    "reconstruction_read_mb": (
        "reconstruction_read_megabytes", "gauge", "Data read for rebuilds, MB.",
    ),
    "reconstruction_write_mb": (
        "reconstruction_write_megabytes", "gauge", "Data rewritten by rebuilds, MB.",
    ),
    "data_loss_chunks_total": (
        "data_loss_chunks", "counter",
        "Chunks whose group lacked enough survivors to rebuild.",
    ),
}

_INFO_LABELS = ("workload", "policy", "num_osds", "seed", "skew")


def registry_from_metrics(metrics: dict, prefix: str = "edm") -> MetricsRegistry:
    """Build a registry exposing one run's metrics dict.

    Run identity (workload, policy, size, seed) becomes the ``edm_run`` info
    metric's labels; scalars map through a curated family table (conditional
    fault/endurance/service blocks appear only when the run produced them);
    ``per_osd_wear`` becomes the ``edm_osd_wear{osd="i"}`` gauge vector.
    """
    reg = MetricsRegistry(prefix=prefix)
    reg.info("run", "Identity of the run this snapshot describes.")
    reg.sample(
        "run", 1,
        {k: metrics[k] for k in _INFO_LABELS if k in metrics},
    )
    for key, (name, type_, help_) in _SCALAR_FAMILIES.items():
        if key not in metrics:
            continue
        reg._declare(name, type_, help_)
        reg.sample(name, metrics[key])
    if "per_osd_wear" in metrics:
        reg.gauge("osd_wear", "Erase count per OSD at end of run.")
        for i, wear in enumerate(metrics["per_osd_wear"]):
            reg.sample("osd_wear", wear, {"osd": i})
    return reg


class MetricsSnapshotRecorder(Recorder):
    """Live per-epoch gauges, written as OpenMetrics snapshots during a run.

    Attach to ``simulate(cfg, recorders=...)`` to keep ``path`` updated
    (atomic replace) every ``every`` epochs with in-flight gauges -- current
    epoch, this epoch's load CoV, cumulative requests and migrations, alive
    OSDs, wear max/mean.  After the run, :meth:`write_final` replaces the
    live snapshot with the full end-of-run exposition
    (:func:`registry_from_metrics`) -- what ``edm run --metrics-out`` leaves
    behind.  Purely observational: reads the engine's live buffers, copies
    scalars, never mutates.
    """

    def __init__(self, path: str | os.PathLike, every: int = 16, prefix: str = "edm"):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.path = Path(path)
        self.every = every
        self.prefix = prefix
        self.registry = MetricsRegistry(prefix=prefix)
        self.snapshots = 0
        reg = self.registry
        reg.gauge("epoch", "Epoch most recently completed.")
        reg.gauge("load_cov", "Load CoV of the most recent epoch.")
        reg.counter("requests", "Requests routed so far.")
        reg.counter("migrations", "Chunks migrated so far.")
        reg.gauge("osds_alive", "OSDs currently alive.")
        reg.gauge("wear_max", "Max erase count so far.")
        reg.gauge("wear_mean", "Mean erase count so far.")

    def on_run_start(self, cfg, state) -> None:
        self._requests = 0

    def on_epoch(self, state, load, stats) -> None:
        self._requests += stats.requests
        reg = self.registry
        mean = float(load.mean())
        reg.set("epoch", int(state.epoch))
        reg.set("load_cov", float(load.std() / mean) if mean > 0 else 0.0)
        reg.set("requests", self._requests)
        reg.set("migrations", int(state.migrations_total))
        reg.set("osds_alive", int(state.osd_alive.sum()))
        reg.set("wear_max", float(state.osd_wear.max()))
        reg.set("wear_mean", float(state.osd_wear.mean()))
        if (state.epoch + 1) % self.every == 0:
            self.registry.write(self.path)
            self.snapshots += 1

    def finalize(self, state, final_load) -> None:
        self.registry.write(self.path)
        self.snapshots += 1
        return None

    def write_final(self, metrics: dict) -> None:
        """Replace the snapshot with the end-of-run exposition for ``metrics``."""
        registry_from_metrics(metrics, prefix=self.prefix).write(self.path)
