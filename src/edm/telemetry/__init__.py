"""Telemetry: observer hooks, per-epoch time series, exporters, and figures.

The engine accepts any number of :class:`Recorder` observers; the built-in
:class:`TimeSeriesRecorder` captures the paper's longitudinal curves into a
:class:`TimeSeries` with ``.npz``/JSON/CSV exporters, and
:mod:`edm.telemetry.plots` renders the figures (optional matplotlib).
"""

from edm.telemetry.openmetrics import (
    MetricsRegistry,
    MetricsSnapshotRecorder,
    registry_from_metrics,
)
from edm.telemetry.recorder import EpochStats, Recorder
from edm.telemetry.timeseries import SERIES_FORMAT_VERSION, TimeSeries, TimeSeriesRecorder

__all__ = [
    "EpochStats",
    "MetricsRegistry",
    "MetricsSnapshotRecorder",
    "Recorder",
    "SERIES_FORMAT_VERSION",
    "TimeSeries",
    "TimeSeriesRecorder",
    "registry_from_metrics",
]
