"""Topology plans: deterministic, seed-free schedules of cluster reshaping.

A :class:`TopologyPlan` is parsed from a compact spec string (the
``topology`` field of :class:`~edm.config.SimConfig`, or ``--topology`` on
the CLI) and fully determines *when* and *how* the cluster changes shape --
there is no randomness in the topology layer, so an elastic run is exactly
as reproducible as a static one.

Spec grammar (events joined with ``;``; attributes within an ``add`` join
with ``,``, so a ``|``-separated CLI list can carry several plans)::

    spec    := event (";" event)*
    event   := add | drain
    add     := "add:" COUNT "@" EPOCH ("/" attrs)?      scale-out: COUNT new OSDs
    attrs   := attr ("," attr)*                         device class of the new band
    attr    := "cap:" FACTOR | "rate:" RATE | "pe:" CYCLES
    drain   := "drain:" OSD "@" EPOCH                   graceful scale-in of one OSD

Examples::

    add:4@128                       4 cold drives join at epoch 128
    add:4@128/cap:2,rate:1600,pe:10000
                                    a heterogeneous band: double capacity,
                                    1600 req/epoch, rated 10000 cycles
    drain:2@64                      OSD 2 evacuates and retires at epoch 64
    add:2@32/cap:2;drain:0@96       scale out, then scale in, one plan

Unspecified attributes inherit the cluster's defaults: capacity 1.0, the
service model's default rate (no queueing without one), the endurance
model's default rating (unrated without one).  The empty string (or
``"none"``) is the static cluster.  Parsing canonicalizes the spec --
events sorted by (epoch, kind, count-or-osd) with ``add`` before ``drain``
at the same epoch, attributes in ``cap,rate,pe`` order, numbers normalized
-- so two spellings of the same plan produce the same ``SimConfig`` content
hash and hit the same cache entry.

Built on the shared :mod:`edm.spec` toolkit (the same machinery behind the
faults, endurance, and service grammars).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from edm.spec import ClauseRule, SpecError, SpecGrammar, format_fixed, format_g

TOPOLOGY_KINDS = ("add", "drain")

#: Attribute keys an ``add`` event accepts, in canonical rendering order.
ADD_ATTRS = ("cap", "rate", "pe")


@dataclass(frozen=True)
class TopologyEvent:
    """One scheduled reshaping event.

    ``count`` is the number of OSDs joining (``add`` only); ``osd`` the id
    leaving (``drain`` only).  ``cap`` / ``rate`` / ``pe`` describe the
    device class of an added band -- ``rate`` and ``pe`` stay ``None`` when
    the plan defers to the service / endurance model defaults.
    """

    kind: str
    epoch: int
    count: int = 0
    osd: int = -1
    cap: float = 1.0
    rate: float | None = None
    pe: float | None = None

    def render(self) -> str:
        """Canonical spec fragment for this event."""
        if self.kind == "drain":
            return f"drain:{self.osd}@{self.epoch}"
        attrs = []
        if self.cap != 1.0:
            attrs.append(f"cap:{format_g(self.cap)}")
        if self.rate is not None:
            attrs.append(f"rate:{format_fixed(self.rate)}")
        if self.pe is not None:
            attrs.append(f"pe:{format_fixed(self.pe)}")
        suffix = "/" + ",".join(attrs) if attrs else ""
        return f"add:{self.count}@{self.epoch}{suffix}"


_ATTR_RE = re.compile(r"^(cap|rate|pe):(\d+(?:\.\d+)?)$")


def _build_add(m: re.Match) -> TopologyEvent:
    count, epoch = int(m.group(1)), int(m.group(2))
    clause = m.group(0)
    attrs: dict[str, float] = {}
    if m.group(3) is not None:
        for part in m.group(3).split(","):
            part = part.strip()
            am = _ATTR_RE.match(part)
            if not am:
                raise SpecError(
                    f"topology event {clause!r}: bad attribute {part!r}; "
                    f"expected 'cap:FACTOR', 'rate:RATE' or 'pe:CYCLES'"
                )
            key, val = am.group(1), float(am.group(2))
            if key in attrs:
                raise SpecError(
                    f"topology event {clause!r}: attribute {key!r} given twice"
                )
            if val <= 0:
                raise SpecError(
                    f"topology event {clause!r}: {key} must be > 0"
                )
            attrs[key] = val
    return TopologyEvent(
        kind="add",
        epoch=epoch,
        count=count,
        cap=attrs.get("cap", 1.0),
        rate=attrs.get("rate"),
        pe=attrs.get("pe"),
    )


_GRAMMAR = SpecGrammar(
    name="topology",
    clause_noun="topology event",
    expected=(
        "'add:COUNT@EPOCH', 'add:COUNT@EPOCH/cap:F,rate:R,pe:C' "
        "or 'drain:OSD@EPOCH'"
    ),
    rules=(
        ClauseRule(
            name="add",
            regex=re.compile(r"^add:(\d+)@(\d+)(?:/([^/]*))?$"),
            build=_build_add,
        ),
        ClauseRule(
            name="drain",
            regex=re.compile(r"^drain:(\d+)@(\d+)$"),
            build=lambda m: TopologyEvent(
                kind="drain", osd=int(m.group(1)), epoch=int(m.group(2))
            ),
        ),
    ),
)


@dataclass(frozen=True)
class TopologyPlan:
    """A validated, canonically ordered schedule of reshaping events."""

    events: tuple[TopologyEvent, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def spec(self) -> str:
        """Canonical spec string (round-trips through :meth:`parse`)."""
        return ";".join(ev.render() for ev in self.events)

    @property
    def adds(self) -> tuple[TopologyEvent, ...]:
        return tuple(ev for ev in self.events if ev.kind == "add")

    @property
    def drains(self) -> tuple[TopologyEvent, ...]:
        return tuple(ev for ev in self.events if ev.kind == "drain")

    def max_osds(self, initial: int) -> int:
        """Largest OSD-array width the plan ever reaches (drains don't shrink
        arrays -- a retired OSD keeps its slot, dead)."""
        return initial + sum(ev.count for ev in self.adds)

    def final_osds(self, initial: int) -> int:
        """Live OSD count once the whole plan has fired."""
        return self.max_osds(initial) - len(self.drains)

    @classmethod
    def parse(cls, spec: str, num_osds: int | None = None) -> "TopologyPlan":
        """Parse and validate a spec; ``num_osds`` enables id/survivor checks."""
        events = _GRAMMAR.parse(spec)
        # "add" sorts before "drain", so growth lands before any same-epoch
        # scale-in -- a drain may target a band added that very epoch.
        events.sort(
            key=lambda ev: (ev.epoch, ev.kind, ev.count if ev.kind == "add" else ev.osd)
        )
        plan = cls(events=tuple(events))
        plan.validate(num_osds=num_osds)
        return plan

    def validate(self, num_osds: int | None = None) -> None:
        drained: set[int] = set()
        running = num_osds
        for ev in self.events:
            if ev.kind == "add":
                if ev.count < 1:
                    raise SpecError(
                        f"topology event {ev.render()!r}: count must be >= 1"
                    )
                if running is not None:
                    running += ev.count
                continue
            if ev.osd in drained:
                raise SpecError(
                    f"OSD {ev.osd} scheduled to drain more than once"
                )
            drained.add(ev.osd)
            if running is not None:
                # The id must exist by the drain's epoch: initial OSDs plus
                # every band added at or before it (events are epoch-sorted,
                # so ``running`` counts exactly those).
                if ev.osd >= num_osds + sum(
                    a.count for a in self.adds if a.epoch <= ev.epoch
                ):
                    raise SpecError(
                        f"topology event {ev.render()!r}: OSD {ev.osd} does "
                        f"not exist at epoch {ev.epoch} (cluster has grown "
                        f"to {running} OSDs by then)"
                    )
                running -= 1
                if running < 2:
                    raise SpecError(
                        f"topology event {ev.render()!r}: plan drains the "
                        f"cluster below 2 OSDs; at least 2 must remain"
                    )
