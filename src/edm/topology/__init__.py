"""Elastic topology: runtime scale-out / scale-in and mixed device classes.

* :mod:`edm.topology.spec` -- :class:`TopologyPlan` / :class:`TopologyEvent`:
  parse and canonicalize ``--topology`` spec strings (seed-free, fully
  deterministic), e.g. ``add:4@128/cap:2,rate:1600,pe:10000;drain:0@192``.
* :mod:`edm.topology.runtime` -- :class:`TopologyRuntime`: grows the per-OSD
  state arrays for ``add`` events and marks ``drain`` targets
  migration-source-only; the engine evacuates a draining OSD's chunks
  through the active policy's destination scoring before retiring it.

The engine wires these together in :func:`edm.engine.core.simulate`: the
topology step runs first at each epoch boundary, added drives join cold
(zero wear and load, so policies see them as prime destinations -- the
paper's wear-vs-load tension at its sharpest), and every fired event fans
out to recorders via the ``on_topology`` observer hook.
"""

from edm.topology.runtime import TopologyRuntime
from edm.topology.spec import ADD_ATTRS, TOPOLOGY_KINDS, TopologyEvent, TopologyPlan

__all__ = [
    "ADD_ATTRS",
    "TOPOLOGY_KINDS",
    "TopologyEvent",
    "TopologyPlan",
    "TopologyRuntime",
]
