"""Topology runtime: applies a :class:`~edm.topology.spec.TopologyPlan` to
live cluster state.

The engine calls :meth:`TopologyRuntime.step` once per epoch *before* the
fault and endurance steps; the runtime grows every per-OSD array for ``add``
events (new drives join cold: zero wear, zero load, empty queues) and marks
``drain`` targets migration-source-only via ``osd_draining``.  The engine
then evacuates a draining OSD's chunks through the active policy's
destination scoring -- the same batch re-placement machinery a failure uses,
but *graceful*: the drive is still alive while its chunks stream off, and
:meth:`retire` only afterwards flips it dead, with no lost queue work.

Device classes: an added band's capacity, service rate, and rated P/E come
from the event's attributes, falling back to the cluster's defaults --
capacity 1.0, the service model's default rate (``inf`` without a service
model: backlog retires instantly), the endurance model's default rating
(``inf`` without one: unrated).

This module only touches NumPy arrays on the state object (duck-typed, no
engine imports), keeping the topology package import-cycle-free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from edm.topology.spec import TopologyEvent, TopologyPlan

if TYPE_CHECKING:
    from edm.engine.state import ClusterState


class TopologyRuntime:
    """Steps a plan's events into cluster state at epoch boundaries."""

    def __init__(self, plan: TopologyPlan, service=None, endurance=None):
        # ``service`` / ``endurance`` are the run's parsed models (or None /
        # falsy): they supply the default rate and rating for added bands
        # that don't pin their own.
        self.plan = plan
        self._by_epoch: dict[int, list[TopologyEvent]] = {}
        for ev in plan.events:
            self._by_epoch.setdefault(ev.epoch, []).append(ev)
        self._default_rate = (
            service.default_rate if service else None
        )
        self._default_pe = (
            endurance.default_cycles if endurance else None
        )

    def step(self, state: "ClusterState", epoch: int) -> list[TopologyEvent]:
        """Apply events scheduled for ``epoch``; returns the events that fired.

        ``add`` events grow the state in place; ``drain`` events only mark
        the target (``osd_draining``) -- the engine evacuates its chunks and
        calls :meth:`retire`, so recorders observe the evacuation's move
        count alongside the event.
        """
        fired = self._by_epoch.get(epoch, [])
        for ev in fired:
            if ev.kind == "add":
                self._grow(state, ev)
            else:
                state.osd_draining[ev.osd] = True
        return list(fired)

    def _grow(self, state: "ClusterState", ev: TopologyEvent) -> None:
        """Append ``ev.count`` cold drives of the event's device class."""
        k = ev.count
        rate = ev.rate if ev.rate is not None else self._default_rate
        pe = ev.pe if ev.pe is not None else self._default_pe
        state.osd_wear = np.concatenate([state.osd_wear, np.zeros(k)])
        state.osd_load_ema = np.concatenate([state.osd_load_ema, np.zeros(k)])
        state.osd_alive = np.concatenate([state.osd_alive, np.ones(k, dtype=bool)])
        state.osd_capacity = np.concatenate([state.osd_capacity, np.full(k, ev.cap)])
        state.osd_rated_life = np.concatenate(
            [state.osd_rated_life, np.full(k, pe if pe is not None else np.inf)]
        )
        state.osd_wear_rate = np.concatenate([state.osd_wear_rate, np.zeros(k)])
        state.osd_service_rate = np.concatenate(
            [
                state.osd_service_rate,
                np.full(k, rate if rate is not None else np.inf),
            ]
        )
        state.osd_queue_depth = np.concatenate([state.osd_queue_depth, np.zeros(k)])
        state.osd_mig_backlog = np.concatenate([state.osd_mig_backlog, np.zeros(k)])
        state.osd_draining = np.concatenate(
            [state.osd_draining, np.zeros(k, dtype=bool)]
        )
        state.num_osds += k
        if ev.cap != 1.0:
            # Off-nominal capacity flips selection onto the effective-load
            # path, exactly like a slow-disk fault would.
            state.degraded = True

    def retire(self, state: "ClusterState", osd: int) -> None:
        """Finish a drain: the evacuated OSD leaves the cluster for good.

        Graceful by construction -- the engine evacuated its chunks while it
        was alive, and its queues are empty of meaning (nothing routes to a
        chunk-less OSD), so unlike a failure nothing counts as lost work.
        """
        state.osd_alive[osd] = False
        state.osd_capacity[osd] = 0.0
        state.osd_queue_depth[osd] = 0.0
        state.osd_mig_backlog[osd] = 0.0
        state.degraded = True
